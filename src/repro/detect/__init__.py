"""Failure detection (Section 4).

The detection stack, from cheapest to most powerful:

1. device-reported read errors (latent sector errors);
2. in-page tests: magic, checksum, header and indirection-vector
   plausibility, embedded page id (:meth:`repro.page.Page.verify`,
   :meth:`repro.page.SlottedPage.check_plausible`);
3. the PageLSN cross-check against the page recovery index — the only
   field a B-tree's fence-key invariants cannot verify (Section 4.2);
4. cross-page B-tree invariants verified on every root-to-leaf pass
   (:mod:`repro.btree.verify`);
5. scrubbing: proactive re-reading and verification of cold pages
   (:mod:`repro.detect.scrubber`), as in the field studies the paper
   cites.
"""

from repro.detect.checks import CheckOutcome, run_in_page_checks
from repro.detect.scrubber import ScrubReport, Scrubber

__all__ = [
    "run_in_page_checks",
    "CheckOutcome",
    "Scrubber",
    "ScrubReport",
]
