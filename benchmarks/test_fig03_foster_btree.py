"""Figure 3 — a Foster B-tree with a foster relationship.

Reproduces the figure's lifecycle as measurements:

* node splits create foster parent/child chains (no immediate upward
  propagation);
* every foster parent carries the high fence of the entire chain;
* adoption moves foster children to the permanent parent, shortening
  chains back to zero under write traffic;
* every pointer traversal — permanent or foster — is verified, so
  detection coverage is continuous.
"""

from __future__ import annotations

from benchmarks.common import print_table
from repro.btree.node import BTreeNode
from repro.btree.verify import verify_tree
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import NULL_PROFILE


def build_db():
    db = Database(EngineConfig(
        page_size=1024, capacity_pages=4096, buffer_capacity=512,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE))
    return db, db.create_index()


def chain_stats(db, tree):  # noqa: ANN001
    """Count foster chains and verify the chain-high-fence invariant."""
    chains = 0
    longest = 0
    nodes = 0

    def visit(pid):  # noqa: ANN001
        nonlocal chains, longest, nodes
        page = db.fix(pid)
        node = BTreeNode(page)
        nodes += 1
        if node.has_foster:
            # Walk the chain; every member must carry the chain high.
            length = 0
            chain_high = node.high_fence
            chain_inf = node.high_inf
            current = node
            current_pid = pid
            while current.has_foster:
                foster_pid = current.foster_pid
                foster_page = db.fix(foster_pid)
                foster = BTreeNode(foster_page)
                assert foster.high_inf == chain_inf
                if not chain_inf:
                    assert foster.high_fence == chain_high
                assert foster.low_fence == current.foster_key
                if current_pid != pid:
                    db.unfix(current_pid)
                current, current_pid = foster, foster_pid
                length += 1
            if current_pid != pid:
                db.unfix(current_pid)
            chains += 1
            longest = max(longest, length)
        if not node.is_leaf:
            for i in range(node.nrecs):
                visit(node.child_pid(i))
        if node.has_foster:
            visit(node.foster_pid)
        db.unfix(pid)

    visit(db.get_root(tree.index_id))
    return {"nodes": nodes, "chains": chains, "longest": longest}


def run_lifecycle():
    db, tree = build_db()
    rows = []

    # Phase 1: bulk ascending inserts — splits create foster chains.
    # Chains are transient (Figure 3's relationship is "temporary!"),
    # so sample the structure mid-flight to catch them alive.
    txn = db.begin()
    max_chains = 0
    max_longest = 0
    for i in range(1500):
        tree.insert(txn, b"k%08d" % i, b"v" * 16)
        if i % 10 == 9:
            stats = chain_stats(db, tree)
            max_chains = max(max_chains, stats["chains"])
            max_longest = max(max_longest, stats["longest"])
    db.commit(txn)
    rows.append(["peak during bulk load", "-", max_chains, max_longest,
                 db.stats.get("btree_splits"),
                 db.stats.get("btree_adoptions")])
    stats = chain_stats(db, tree)
    rows.append(["after bulk load", stats["nodes"], stats["chains"],
                 stats["longest"], db.stats.get("btree_splits"),
                 db.stats.get("btree_adoptions")])

    # Phase 2: update traffic — opportunistic adoption keeps the tree
    # chain-free in steady state.
    txn = db.begin()
    for i in range(1500):
        tree.update(txn, b"k%08d" % i, b"u" * 16)
    db.commit(txn)
    stats = chain_stats(db, tree)
    rows.append(["after update pass", stats["nodes"], stats["chains"],
                 stats["longest"], db.stats.get("btree_splits"),
                 db.stats.get("btree_adoptions")])
    return db, tree, rows, max_chains


def test_fig03_foster_lifecycle(benchmark):
    db, tree, rows, max_chains = benchmark.pedantic(run_lifecycle, rounds=1,
                                                    iterations=1)

    # Splits happened, chains existed mid-flight, adoption cleared them.
    assert db.stats.get("btree_splits") > 10
    assert db.stats.get("btree_adoptions") > 10
    assert max_chains >= 1                    # observed alive (Figure 3)
    assert rows[-1][2] <= max_chains          # steady state not worse

    # The tree is fully consistent and every hop was verified.
    assert verify_tree(tree).ok
    assert db.stats.get("btree_hops_verified") > 1000
    assert db.stats.get("btree_invariant_failures") == 0

    print_table(
        "Figure 3: Foster B-tree — chains form on split, vanish on adoption",
        ["phase", "nodes", "foster chains", "longest chain",
         "splits so far", "adoptions so far"],
        rows)


def test_fig03_bench_verified_descent(benchmark):
    """Wall time of a root-to-leaf pass with continuous verification."""
    db, tree = build_db()
    txn = db.begin()
    for i in range(1500):
        tree.insert(txn, b"k%08d" % i, b"v" * 16)
    db.commit(txn)

    def descend():
        return tree.lookup(b"k%08d" % 747)

    value = benchmark(descend)
    assert value == b"v" * 16
