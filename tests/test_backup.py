"""Unit tests: backup sources (Section 5.2.1) and the backup policy."""

import pytest

from repro.core.backup import (
    BackupPolicy,
    BackupStore,
    fetch_backup_image,
)
from repro.errors import RecoveryError, StorageError
from repro.page.page import Page, PageType
from repro.page.slotted import SlottedPage
from repro.sim.clock import SimClock
from repro.sim.iomodel import ARCHIVE_PROFILE, HDD_PROFILE, NULL_PROFILE
from repro.sim.stats import Stats
from repro.txn.manager import TransactionManager
from repro.wal.log_manager import LogManager
from repro.wal.log_reader import LogReader
from repro.wal.ops import OpInitSlotted
from repro.wal.records import (
    BackupRef,
    LogRecord,
    LogRecordKind,
    compress_image,
)

PAGE_SIZE = 1024


def make_store(profile=NULL_PROFILE, clock=None):
    clock = clock or SimClock()
    return BackupStore(clock, profile, Stats(), PAGE_SIZE), clock


def sealed_page(page_id: int, lsn: int = 0) -> Page:
    page = Page.format(PAGE_SIZE, page_id, PageType.HEAP)
    SlottedPage(page).initialize()
    if lsn:
        page.page_lsn = lsn
    page.seal()
    return page


class TestBackupPolicy:
    def test_update_count_trigger(self):
        policy = BackupPolicy(every_n_updates=100)
        assert not policy.due(update_count=99, age_seconds=1e9)
        assert policy.due(update_count=100, age_seconds=0)

    def test_age_trigger(self):
        policy = BackupPolicy(max_age_seconds=3600)
        assert not policy.due(update_count=10**6, age_seconds=3599)
        assert policy.due(update_count=0, age_seconds=3600)

    def test_either_trigger(self):
        policy = BackupPolicy(every_n_updates=10, max_age_seconds=60)
        assert policy.due(update_count=10, age_seconds=0)
        assert policy.due(update_count=0, age_seconds=60)

    def test_disabled_never_due(self):
        policy = BackupPolicy.disabled()
        assert not policy.due(update_count=10**9, age_seconds=1e12)


class TestPageCopies:
    def test_store_and_fetch(self):
        store, _clock = make_store()
        page = sealed_page(7, lsn=42)
        location = store.store_page_copy(bytes(page.data), 42)
        image, lsn = store.fetch_page_copy(location)
        assert image == bytes(page.data)
        assert lsn == 42

    def test_new_copy_never_overwrites_old(self):
        """Both copies exist until the old one is explicitly freed."""
        store, _clock = make_store()
        first = store.store_page_copy(bytes(sealed_page(7, 10).data), 10)
        second = store.store_page_copy(bytes(sealed_page(7, 20).data), 20)
        assert first != second
        assert store.live_page_copies == 2
        store.free_page_copy(first)
        assert store.live_page_copies == 1
        store.fetch_page_copy(second)
        with pytest.raises(RecoveryError):
            store.fetch_page_copy(first)

    def test_free_if_page_copy_ignores_other_kinds(self):
        store, _clock = make_store()
        location = store.store_page_copy(bytes(sealed_page(7).data), 0)
        store.free_if_page_copy(BackupRef.log_image(123))
        store.free_if_page_copy(None)
        assert store.live_page_copies == 1
        store.free_if_page_copy(BackupRef.page_copy(location))
        assert store.live_page_copies == 0


class TestFullBackups:
    def test_store_and_fetch_single_page(self):
        store, _clock = make_store()
        pages = {i: bytes(sealed_page(i, lsn=i * 10 or 1).data) for i in range(5)}
        lsns = {i: i * 10 or 1 for i in range(5)}
        backup_id = store.store_full_backup(pages, lsns)
        image, lsn = store.fetch_from_full_backup(backup_id, 3)
        assert image == pages[3]
        assert lsn == 30

    def test_missing_page_raises(self):
        store, _clock = make_store()
        backup_id = store.store_full_backup({}, {})
        with pytest.raises(RecoveryError):
            store.fetch_from_full_backup(backup_id, 9)
        with pytest.raises(RecoveryError):
            store.restore_full_backup(backup_id + 1)

    def test_restore_returns_all(self):
        store, _clock = make_store()
        pages = {i: bytes(sealed_page(i).data) for i in range(4)}
        backup_id = store.store_full_backup(pages, {i: 0 for i in range(4)})
        assert store.restore_full_backup(backup_id) == pages

    def test_archive_media_penalizes_single_page_fetch(self):
        """Section 5.2.1: a sequentially compressed archive backup 'is
        less than ideal' for single-page recovery."""
        disk_store, disk_clock = make_store(HDD_PROFILE)
        tape_store, tape_clock = make_store(ARCHIVE_PROFILE)
        pages = {0: bytes(sealed_page(0).data)}
        for store in (disk_store, tape_store):
            store.store_full_backup(pages, {0: 0})
        t0 = disk_clock.now
        disk_store.fetch_from_full_backup(1, 0)
        disk_cost = disk_clock.now - t0
        t0 = tape_clock.now
        tape_store.fetch_from_full_backup(1, 0)
        tape_cost = tape_clock.now - t0
        assert tape_cost > 100 * disk_cost


class TestFetchBackupImage:
    def make_log_rig(self):
        clock = SimClock()
        stats = Stats()
        log = LogManager(clock, NULL_PROFILE, stats)
        reader = LogReader(log, clock, NULL_PROFILE, stats)
        return log, reader

    def test_fetch_page_copy_ref(self):
        store, _clock = make_store()
        _log, reader = self.make_log_rig()
        page = sealed_page(7, lsn=33)
        location = store.store_page_copy(bytes(page.data), 33)
        fetched, lsn = fetch_backup_image(
            BackupRef.page_copy(location), 7, PAGE_SIZE, store, reader)
        assert fetched.page_id == 7
        assert lsn == 33

    def test_fetch_log_image_ref(self):
        store, _clock = make_store()
        log, reader = self.make_log_rig()
        page = sealed_page(7, lsn=55)
        lsn = log.append(LogRecord(LogRecordKind.FULL_PAGE_IMAGE, page_id=7,
                                   page_lsn=55,
                                   image=compress_image(page.data)))
        fetched, as_of = fetch_backup_image(
            BackupRef.log_image(lsn), 7, PAGE_SIZE, store, reader)
        assert as_of == 55
        assert fetched.page_lsn == 55

    def test_fetch_format_record_ref(self):
        """A formatting record substitutes for a backup (Section 5.2.1)."""
        store, _clock = make_store()
        log, reader = self.make_log_rig()
        stats = Stats()
        tm = TransactionManager(log, stats)
        txn = tm.begin(system=True)
        page = Page.format(PAGE_SIZE, 9)
        format_lsn = tm.log_format(txn, page, 0, OpInitSlotted(PageType.HEAP))
        tm.commit(txn)
        fetched, as_of = fetch_backup_image(
            BackupRef.format_record(format_lsn), 9, PAGE_SIZE, store, reader)
        assert as_of == format_lsn
        assert fetched.page_type == PageType.HEAP
        assert fetched.page_id == 9
        SlottedPage(fetched).check_plausible()

    def test_wrong_record_kind_rejected(self):
        store, _clock = make_store()
        log, reader = self.make_log_rig()
        lsn = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=1))
        with pytest.raises(RecoveryError):
            fetch_backup_image(BackupRef.log_image(lsn), 7, PAGE_SIZE,
                               store, reader)
        with pytest.raises(RecoveryError):
            fetch_backup_image(BackupRef.format_record(lsn), 7, PAGE_SIZE,
                               store, reader)

    def test_no_backup_rejected(self):
        store, _clock = make_store()
        _log, reader = self.make_log_rig()
        with pytest.raises(RecoveryError):
            fetch_backup_image(BackupRef.none(), 7, PAGE_SIZE, store, reader)


class TestCopyWriteFailureInvariant:
    """The never-overwrite invariant under a fault-injected backup-
    media write failure: an old page copy is freed only after its
    replacement is durable, so a failed replacement write must leave
    the old copy (and everything that references it) intact."""

    def test_failed_copy_write_preserves_old_copy(self):
        store, _clock = make_store()
        old = store.store_page_copy(bytes(sealed_page(7, 10).data), 10)
        store.inject_copy_write_failures(1)
        with pytest.raises(StorageError):
            store.store_page_copy(bytes(sealed_page(7, 20).data), 20)
        # The old copy survives, fetchable, and nothing was freed.
        assert store.live_page_copies == 1
        image, lsn = store.fetch_page_copy(old)
        assert lsn == 10
        assert store.stats.get("page_copies_freed") == 0
        # The next attempt (fault cleared) succeeds at a fresh location.
        new = store.store_page_copy(bytes(sealed_page(7, 20).data), 20)
        assert new != old
        assert store.live_page_copies == 2

    def test_engine_keeps_old_backup_ref_on_failed_copy(self):
        """take_page_copy dies mid-copy: the PRI must still point at
        the old copy and single-page recovery must still succeed."""
        from repro.engine.database import Database
        from tests.conftest import fast_config, key_of, value_of

        db = Database(fast_config(
            backup_policy=BackupPolicy(every_n_updates=8)))
        tree = db.create_index()
        txn = db.begin()
        for i in range(120):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()  # policy takes initial page copies
        page, _node = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        old_ref = db.pri.lookup(victim).backup_ref
        copies_before = db.backup_store.live_page_copies

        db.backup_store.inject_copy_write_failures(1)
        with pytest.raises(StorageError):
            db.checkpointer.take_page_copy(db.pool.fix(victim))
        db.pool.unfix(victim)

        # Old copy retained, PRI unchanged, nothing freed.
        assert db.pri.lookup(victim).backup_ref == old_ref
        assert db.backup_store.live_page_copies == copies_before
        # Recovery from the old copy still works.
        db.flush_everything()
        db.evict_everything()
        db.device.inject_read_error(victim)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("single_page_recoveries") == 1

    def test_write_back_survives_backup_media_failure(self):
        """A policy-triggered copy failing mid-flush must not fail the
        data-page write it rides on (Figure 11 keeps going)."""
        from repro.engine.database import Database
        from tests.conftest import fast_config, key_of, value_of

        db = Database(fast_config(
            backup_policy=BackupPolicy(every_n_updates=4)))
        tree = db.create_index()
        txn = db.begin()
        for i in range(60):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.backup_store.inject_copy_write_failures(100)
        db.flush_everything()  # every due copy fails; flush proceeds
        assert db.stats.get("page_copy_policy_failures") > 0
        db.evict_everything()
        for i in range(0, 60, 7):
            assert tree.lookup(key_of(i)) == value_of(i, 0)


class TestMaxAgeBackupPolicy:
    """Engine-level coverage for BackupPolicy.max_age_seconds: a page
    whose copy is older than the bound gets a fresh one at write-back,
    regardless of how few updates it took."""

    def make_db(self, max_age: float):
        from repro.engine.database import Database
        from tests.conftest import fast_config, key_of, value_of

        db = Database(fast_config(
            backup_policy=BackupPolicy(max_age_seconds=max_age)))
        tree = db.create_index()
        txn = db.begin()
        for i in range(80):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        return db, tree, key_of, value_of

    def test_young_pages_take_no_copies(self):
        db, tree, key_of, value_of = self.make_db(max_age=3600.0)
        assert db.stats.get("policy_page_copies") == 0
        txn = db.begin()
        db.update(tree, key_of(0), value_of(0, 1), txn=txn)
        db.commit(txn)
        db.flush_everything()
        # One update, age ~0: not due.
        assert db.stats.get("policy_page_copies") == 0

    def test_aged_page_gets_fresh_copy_on_write_back(self):
        db, tree, key_of, value_of = self.make_db(max_age=100.0)
        db.clock.advance(101.0)
        txn = db.begin()
        db.update(tree, key_of(0), value_of(0, 1), txn=txn)
        db.commit(txn)
        db.flush_everything()
        assert db.stats.get("policy_page_copies") >= 1
        # The fresh copy becomes the page's backup source.
        page, _node = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        from repro.wal.records import BackupRefKind

        assert (db.pri.lookup(victim).backup_ref.kind
                == BackupRefKind.PAGE_COPY)

    def test_age_and_update_triggers_compose(self):
        from repro.engine.database import Database
        from tests.conftest import fast_config, key_of, value_of

        db = Database(fast_config(backup_policy=BackupPolicy(
            every_n_updates=5, max_age_seconds=1000.0)))
        tree = db.create_index()
        txn = db.begin()
        for i in range(40):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        by_updates = db.stats.get("policy_page_copies")
        assert by_updates >= 1  # dense inserts hit the update trigger
        db.clock.advance(1001.0)
        txn = db.begin()
        db.update(tree, key_of(20), value_of(20, 1), txn=txn)
        db.commit(txn)
        db.flush_everything()
        assert db.stats.get("policy_page_copies") > by_updates
