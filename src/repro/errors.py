"""Failure taxonomy for the reproduction.

The paper's central claim is that database failures fall into *four*
classes, not three.  This module encodes that taxonomy as an exception
hierarchy plus a :class:`FailureClass` enum, so that every other module
can raise, classify, and escalate failures uniformly.

Escalation (paper, Figure 1): a single-page failure that cannot be
handled locally is escalated to a media failure; a media failure on a
node's only device is escalated to a system failure.
"""

from __future__ import annotations

import enum


class FailureClass(enum.Enum):
    """The four failure classes of the paper (Section 3)."""

    TRANSACTION = "transaction"
    MEDIA = "media"
    SYSTEM = "system"
    SINGLE_PAGE = "single-page"


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration of a component.

    Also a :class:`ValueError`: configuration mistakes are usage
    errors, and callers that predate the typed taxonomy catch
    ``ValueError`` — both idioms keep working.
    """


class TransactionError(ReproError):
    """Base class for transaction-level failures."""

    failure_class = FailureClass.TRANSACTION


class TransactionAborted(TransactionError):
    """A single transaction failed and was (or must be) rolled back."""

    def __init__(self, txn_id: int, reason: str = "") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class DeadlockError(TransactionAborted):
    """Transaction chosen as deadlock victim."""


class StorageError(ReproError):
    """Base class for storage-level errors."""


class PageFailureKind(enum.Enum):
    """Why a page read was rejected (detection layer, Section 4.2).

    Each kind corresponds to one layer of the detection stack:

    * ``DEVICE_READ_ERROR`` -- the device itself reported the read failed
      (a "latent sector error" in the terminology of Bairavasundaram et
      al.).
    * ``CHECKSUM_MISMATCH`` -- in-page parity/checksum test failed
      (bit rot, torn write).
    * ``BAD_MAGIC`` / ``HEADER_IMPLAUSIBLE`` -- in-page plausibility
      analysis of byte offsets and lengths failed.
    * ``WRONG_PAGE_ID`` -- the page is internally consistent but belongs
      elsewhere (misdirected write).
    * ``STALE_LSN`` -- the PageLSN is older than the page recovery index
      says it must be (lost write); this is the cross-check the paper
      credits to Gary Smith.
    * ``BTREE_INVARIANT`` -- fence keys do not match the parent's
      separator keys (cross-page verification, Section 4.2).
    """

    DEVICE_READ_ERROR = "device-read-error"
    CHECKSUM_MISMATCH = "checksum-mismatch"
    BAD_MAGIC = "bad-magic"
    HEADER_IMPLAUSIBLE = "header-implausible"
    WRONG_PAGE_ID = "wrong-page-id"
    STALE_LSN = "stale-lsn"
    BTREE_INVARIANT = "btree-invariant"


class SinglePageFailure(StorageError):
    """A page could not be read correctly and plausibly (Section 3.2).

    This is the paper's fourth failure class.  It is raised by the
    detection layer and normally *handled* by single-page recovery;
    callers of the engine only ever observe it if recovery itself is
    disabled or impossible.
    """

    failure_class = FailureClass.SINGLE_PAGE

    def __init__(self, page_id: int, kind: PageFailureKind, detail: str = "") -> None:
        message = f"single-page failure on page {page_id}: {kind.value}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.page_id = page_id
        self.kind = kind
        self.detail = detail


class MediaFailure(StorageError):
    """An entire storage device failed or must be treated as failed."""

    failure_class = FailureClass.MEDIA

    def __init__(self, device_name: str, reason: str = "") -> None:
        super().__init__(f"media failure on device '{device_name}': {reason}")
        self.device_name = device_name
        self.reason = reason


class SystemFailure(ReproError):
    """The whole node/DBMS failed and requires restart recovery."""

    failure_class = FailureClass.SYSTEM

    def __init__(self, reason: str = "") -> None:
        super().__init__(f"system failure: {reason}")
        self.reason = reason


class RecoveryError(ReproError):
    """A recovery procedure itself could not complete."""


class BackupRetired(RecoveryError):
    """A :class:`repro.wal.records.BackupRef` was dereferenced after the
    backup it points to was retired (full backup) or freed (page copy).

    Retirement is gated, but a reference *captured before* the gate ran
    — an in-flight repair, a stale recovery-index entry on a promoted
    standby — can still dangle; dereferencing it must fail crisply so
    the caller can fall back or escalate, never with a raw ``KeyError``.
    """


class ReplicationError(ReproError):
    """Log-shipping replication failed (standby, shipper, or failover)."""


class ReplicationLagError(ReplicationError):
    """A ``replicated_durable`` commit could not obtain its ship-ack.

    The commit is *locally* durable — its record was forced before the
    ack was attempted — but the standby does not have it (link severed,
    standby crashed, or no standby attached), so the replication
    guarantee the caller asked for does not hold.
    """


class ClientError(ReproError):
    """Misuse of the public :class:`repro.client.Client` facade."""


class ClientClosedError(ClientError):
    """An operation was attempted on a closed client (or a
    transaction handle that outlived its ``with`` block)."""


class ShardError(ReproError):
    """A sharded deployment could not route or execute a request."""


class ShardUnavailableError(ShardError):
    """The shard owning the requested key cannot be reached (crashed
    worker process, severed link).  Single-shard requests fail with
    this; a cross-shard transaction that hits it during prepare is
    aborted on every reachable participant (presumed abort).
    """

    def __init__(self, shard: int, reason: str = "") -> None:
        super().__init__(f"shard {shard} unavailable: {reason}")
        self.shard = shard
        self.reason = reason


class TwoPhaseCommitError(ShardError):
    """A cross-shard transaction could not reach a decision."""


class WrongShardError(ShardError):
    """A key-addressed command reached a shard that does not own the
    key's hash slot (the command raced a slot cutover).  The router
    re-resolves the owner from its routing table and retries; a direct
    worker caller should refresh its view of the assignment.

    Constructable from a bare message so it survives the RPC error
    marshalling (:func:`repro.shard.rpc.unmarshal_error`).
    """

    def __init__(self, message: str = "",
                 shard: int | None = None,
                 slot: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard
        self.slot = slot


class LogError(ReproError):
    """Corrupt or inconsistent recovery log."""


class BufferPoolError(ReproError):
    """Buffer-pool protocol violation (e.g. evicting a pinned page)."""


class BTreeError(ReproError):
    """B-tree structural error that is not a page failure."""


class KeyNotFound(BTreeError):
    """Lookup or delete of a key that is not present."""

    def __init__(self, key: bytes) -> None:
        super().__init__(f"key not found: {key!r}")
        self.key = key


class DuplicateKey(BTreeError):
    """Insert of a key that is already present."""

    def __init__(self, key: bytes) -> None:
        super().__init__(f"duplicate key: {key!r}")
        self.key = key
