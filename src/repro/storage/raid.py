"""A RAID-5 array simulation for the introduction's anecdote.

The paper opens with a real-world incident: "a disk started returning
corrupted data for some sectors without actually failing the reads, so
the controller didn't know anything was wrong and happily reported the
raid5 array OK.  It has therefore been doing parity updates based on
misread info so by now pulling the disk won't help a bit since it'll
just recreate the info that was misread."

:class:`Raid5Array` reproduces that dynamic faithfully:

* data is striped across N devices with rotating parity;
* normal reads touch only the data disk for the stripe unit (no parity
  verification), so silent corruption passes through;
* small writes use read-modify-write parity updates — and the
  read-modify-write *reads the possibly-corrupt old data*, poisoning
  the parity so that subsequent reconstruction regenerates the corrupt
  image, exactly as in the anecdote;
* :meth:`reconstruct` rebuilds a unit from the surviving disks + parity
  (useful only while the parity is still clean).
"""

from __future__ import annotations

from repro.storage.device import DeviceReadError, StorageDevice


def _xor(blocks: list[bytes]) -> bytes:
    out = bytearray(len(blocks[0]))
    for block in blocks:
        for i, byte in enumerate(block):
            out[i] ^= byte
    return bytes(out)


class Raid5Array:
    """Left-symmetric RAID-5 over ``len(devices)`` member devices.

    Logical pages are distributed round-robin over the data units of
    successive stripes.  With ``n`` devices, each stripe holds ``n - 1``
    data units and 1 parity unit; the parity device for stripe ``s`` is
    ``n - 1 - (s % n)``.
    """

    def __init__(self, devices: list[StorageDevice]) -> None:
        if len(devices) < 3:
            raise ValueError("RAID-5 needs at least 3 devices")
        sizes = {d.page_size for d in devices}
        if len(sizes) != 1:
            raise ValueError("all members must share a page size")
        caps = {d.capacity_pages for d in devices}
        if len(caps) != 1:
            raise ValueError("all members must share a capacity")
        self.devices = devices
        self.n = len(devices)
        self.page_size = devices[0].page_size
        self.capacity_pages = devices[0].capacity_pages * (self.n - 1)
        self.name = "raid5(" + ",".join(d.name for d in devices) + ")"

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _locate(self, page_id: int) -> tuple[int, int, int]:
        """Map a logical page to (stripe, member device index, unit row)."""
        if not 0 <= page_id < self.capacity_pages:
            raise ValueError(f"page id {page_id} out of range")
        stripe, offset = divmod(page_id, self.n - 1)
        parity_dev = self.parity_device(stripe)
        # Data units occupy the non-parity devices in order.
        data_devs = [d for d in range(self.n) if d != parity_dev]
        dev = data_devs[offset]
        row = stripe % self.devices[0].capacity_pages
        return stripe, dev, row

    def parity_device(self, stripe: int) -> int:
        return self.n - 1 - (stripe % self.n)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> bytearray:
        """Normal read: single disk, no parity check (Section 2)."""
        _stripe, dev, row = self._locate(page_id)
        return self.devices[dev].read(row)

    def write(self, page_id: int, data: bytes | bytearray) -> None:
        """Small write with read-modify-write parity update.

        new_parity = old_parity XOR old_data XOR new_data.  If the old
        data read returns silently corrupted bytes, the corruption is
        folded into the parity — the poisoning mechanism of the
        anecdote.
        """
        stripe, dev, row = self._locate(page_id)
        parity_dev = self.parity_device(stripe)
        try:
            old_data = bytes(self.devices[dev].read(row))
        except DeviceReadError:
            old_data = b"\x00" * self.page_size
        try:
            old_parity = bytes(self.devices[parity_dev].read(row))
        except DeviceReadError:
            old_parity = b"\x00" * self.page_size
        new_parity = _xor([old_parity, old_data, bytes(data)])
        self.devices[dev].write(row, data)
        self.devices[parity_dev].write(row, new_parity)

    def reconstruct(self, page_id: int) -> bytes:
        """Rebuild a unit from all *other* members (degraded read).

        Returns whatever the parity arithmetic yields — if the parity
        was poisoned by earlier read-modify-write cycles over corrupt
        data, this faithfully "recreates the info that was misread".
        """
        stripe, dev, row = self._locate(page_id)
        blocks = []
        for i, member in enumerate(self.devices):
            if i == dev:
                continue
            blocks.append(bytes(member.read(row)))
        return _xor(blocks)

    def scrub_stripe(self, stripe: int) -> bool:
        """Verify parity of one stripe; True if consistent."""
        row = stripe % self.devices[0].capacity_pages
        blocks = [bytes(member.read(row)) for member in self.devices]
        return _xor(blocks) == b"\x00" * self.page_size
