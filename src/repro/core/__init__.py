"""The paper's contribution: single-page failure handling.

* :mod:`repro.core.recovery_index` — the page recovery index (PRI),
  the new data structure of Section 5.2.2 (Figure 7);
* :mod:`repro.core.backup` — the backup-image sources of Section 5.2.1
  and the page-backup policy of Section 6;
* :mod:`repro.core.single_page` — the recovery procedure of
  Section 5.2.3 (Figure 10);
* :mod:`repro.core.recovery_manager` — the page-retrieval logic of
  Figure 8, including escalation to media/system failure (Figure 1)
  when single-page recovery is unsupported or impossible;
* :mod:`repro.core.failure_classes` — the four-class taxonomy and the
  escalation/blast-radius model used by the experiments.
"""

from repro.core.backup import BackupPolicy, BackupStore
from repro.core.failure_classes import FailureEvent, FailureOutcome
from repro.core.recovery_index import (
    PageRecoveryIndex,
    PartitionedRecoveryIndex,
    PriEntry,
)
from repro.core.recovery_manager import RecoveryManager
from repro.core.single_page import RecoveryResult, SinglePageRecovery

__all__ = [
    "PageRecoveryIndex",
    "PartitionedRecoveryIndex",
    "PriEntry",
    "BackupStore",
    "BackupPolicy",
    "SinglePageRecovery",
    "RecoveryResult",
    "RecoveryManager",
    "FailureEvent",
    "FailureOutcome",
]
