"""Extension — the hot standby as a repair source, and what acks cost.

Two probes for the PR-7 replication layer:

* **repair source**: the same corrupt-leaf repair served from a warm
  replica versus from the backup + per-page chain.  The replica hands
  back an already-rolled-forward image, so the repair applies zero log
  records and touches zero backup pages; the chain path pays a backup
  fetch plus one log-record replay per intervening update.
* **ack modes**: simulated per-commit cost of ``local_durable`` versus
  ``replicated_durable`` on the HDD profile.  The replicated ack rides
  the same log force and adds one round-trip to the standby, so it
  costs strictly more — but by a bounded constant, not a multiple of
  the transaction size.
"""

from __future__ import annotations

from benchmarks.common import key_of, print_table, value_of
from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import HDD_PROFILE, NULL_PROFILE

UPDATE_WAVES = 4


def _loaded(with_standby: bool) -> tuple[Database, object]:
    """300 committed keys, per-page backups off so the chain path has
    real replay work to do; a full backup anchors the fallback."""
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=2048, buffer_capacity=128,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE,
        backup_policy=BackupPolicy.disabled()))
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.take_full_backup()
    if with_standby:
        db.attach_standby(mode="tail")
    for wave in range(1, UPDATE_WAVES + 1):
        txn = db.begin()
        for i in range(300):
            tree.update(txn, key_of(i), value_of(i, wave))
        db.commit(txn)
    return db, tree


def _repair_leaf(db: Database, tree) -> dict:
    page, _node = tree._descend(key_of(0), for_write=False)
    victim = page.page_id
    db.unfix(victim)
    db.flush_everything()
    db.evict_everything()
    db.device.inject_bit_rot(victim, nbits=6)
    assert tree.lookup(key_of(0)) == value_of(0, UPDATE_WAVES)
    result = db.single_page.history[-1]
    return {
        "source": result.source,
        "records_applied": result.records_applied,
        "backup_fetches": result.backup_fetches,
        "log_pages_read": result.log_pages_read,
        "total_random_ios": result.total_random_ios,
    }


def run_repair_source_comparison() -> dict:
    """The same repair, once with a warm replica, once without."""
    db, tree = _loaded(with_standby=True)
    replica = _repair_leaf(db, tree)
    db, tree = _loaded(with_standby=False)
    chain = _repair_leaf(db, tree)
    return {
        "replica": replica,
        "backup_chain": chain,
        "replica_zero_replay": (replica["source"] == "replica"
                                and replica["records_applied"] == 0
                                and replica["backup_fetches"] == 0),
        "chain_replays": (chain["source"] == "backup_chain"
                          and chain["records_applied"] > 0),
        "replica_fewer_ios": (replica["total_random_ios"]
                              < chain["total_random_ios"]),
    }


def run_ack_mode_costs(n_commits: int = 100) -> dict:
    """Simulated per-commit seconds, local vs. replicated acks, with
    and without group commit.  The replicated ack is one standby
    round-trip per log *force* — a constant, not a function of the
    transaction — so batching commits amortizes it the same way it
    amortizes the force itself."""
    out = {}
    for mode in ("local_durable", "replicated_durable"):
        for label, batched in (("unbatched", False), ("batched", True)):
            db = Database(EngineConfig(
                page_size=4096, capacity_pages=2048, buffer_capacity=128,
                device_profile=NULL_PROFILE, log_profile=HDD_PROFILE,
                backup_profile=NULL_PROFILE,
                backup_policy=BackupPolicy.disabled()))
            tree = db.create_index()
            txn = db.begin()
            for i in range(100):
                tree.insert(txn, key_of(i), value_of(i, 0))
            db.commit(txn)
            db.attach_standby(mode="tail")
            db.tm.ack_mode = mode
            start = db.clock.now

            def burst():
                for i in range(n_commits):
                    txn = db.begin()
                    tree.update(txn, key_of(i % 100), value_of(i, 1))
                    db.commit(txn)

            if batched:
                with db.group_commit():
                    burst()
            else:
                burst()
            per_commit = (db.clock.now - start) / n_commits
            out[f"{mode}_{label}"] = {
                "commits": n_commits,
                "per_commit_ms": round(per_commit * 1e3, 4),
                "ship_acks": db.stats.get("ship_acks"),
            }
    unbatched_overhead = (out["replicated_durable_unbatched"]["per_commit_ms"]
                          - out["local_durable_unbatched"]["per_commit_ms"])
    batched_overhead = (out["replicated_durable_batched"]["per_commit_ms"]
                        - out["local_durable_batched"]["per_commit_ms"])
    out["ack_overhead_ms_unbatched"] = round(unbatched_overhead, 4)
    out["ack_overhead_ms_batched"] = round(batched_overhead, 4)
    out["replicated_costs_more"] = unbatched_overhead > 0
    # One ack per force: a 100-commit batch should shrink the ack
    # overhead per commit by roughly the batch factor.
    out["ack_amortizes"] = (batched_overhead
                            <= 0.2 * unbatched_overhead)
    return out


def test_ext_replica_repair_source(benchmark):
    result = benchmark.pedantic(run_repair_source_comparison,
                                rounds=1, iterations=1)
    rows = [[src, r["records_applied"], r["backup_fetches"],
             r["log_pages_read"], r["total_random_ios"]]
            for src, r in (("replica", result["replica"]),
                           ("backup+chain", result["backup_chain"]))]
    print_table("Single-page repair by source",
                ["source", "records applied", "backup fetches",
                 "log pages read", "random I/Os"], rows)
    assert result["replica_zero_replay"]
    assert result["chain_replays"]
    assert result["replica_fewer_ios"]


def test_ext_ack_mode_costs(benchmark):
    result = benchmark.pedantic(run_ack_mode_costs, rounds=1, iterations=1)
    rows = [[key, result[key]["per_commit_ms"], result[key]["ship_acks"]]
            for key in ("local_durable_unbatched",
                        "replicated_durable_unbatched",
                        "local_durable_batched",
                        "replicated_durable_batched")]
    print_table("Commit acknowledgement cost (simulated, HDD log)",
                ["mode", "per-commit ms", "ship acks"], rows)
    assert result["replicated_costs_more"]
    assert result["ack_amortizes"]
