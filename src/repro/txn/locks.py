"""A minimal exclusive lock manager with wait-for deadlock detection.

Concurrency control is not the paper's subject; this exists so that
user transactions in examples and tests exhibit honest all-or-nothing
behaviour and so that deadlock-induced aborts exercise the
*transaction* failure class of the taxonomy.
"""

from __future__ import annotations

from repro.errors import DeadlockError, TransactionError
from repro.sync import Mutex


class LockConflict(TransactionError):
    """A lock is held by another transaction and no waiting is possible."""

    def __init__(self, txn_id: int, key: bytes, holder: int) -> None:
        super().__init__(
            f"transaction {txn_id} blocked on key {key!r} held by {holder}")
        self.txn_id = txn_id
        self.key = key
        self.holder = holder


class LockManager:
    """Exclusive key locks with cycle detection on a wait-for graph."""

    def __init__(self) -> None:
        self._holders: dict[bytes, int] = {}
        self._held_by_txn: dict[int, set[bytes]] = {}
        self._waits_for: dict[int, int] = {}
        #: guards the three maps; conflicts are raised, not parked, so
        #: the mutex is only ever held for the map lookups themselves
        #: (plus a conflict-resolver rollback, which re-enters)
        self._mutex = Mutex()
        #: instant restart: called with a conflicting holder's txn id;
        #: returns True if the holder was a pending loser transaction
        #: that has now been rolled back (the requester retries)
        self.conflict_resolver = None  # Callable[[int], bool] | None

    def acquire(self, txn_id: int, key: bytes) -> None:
        """Acquire ``key`` exclusively for ``txn_id``.

        Re-acquisition by the holder is a no-op.  A conflict held by a
        pending loser of an on-demand restart triggers that loser's
        rollback via ``conflict_resolver`` and the request retries.
        Otherwise the conflict registers a wait-for edge; if that edge
        closes a cycle the requester is chosen as the deadlock victim
        (:class:`DeadlockError`), otherwise a :class:`LockConflict` is
        raised for the caller to retry — threads never park inside the
        lock manager, so cross-thread waits cannot deadlock here.
        """
        with self._mutex:
            while True:
                holder = self._holders.get(key)
                if holder is None:
                    self._holders[key] = txn_id
                    self._held_by_txn.setdefault(txn_id, set()).add(key)
                    return
                if holder == txn_id:
                    return
                if (self.conflict_resolver is not None
                        and self.conflict_resolver(holder)):
                    continue  # the loser in the way is gone; retry
                self._waits_for[txn_id] = holder
                if self._has_cycle(txn_id):
                    del self._waits_for[txn_id]
                    raise DeadlockError(txn_id, f"deadlock on key {key!r}")
                del self._waits_for[txn_id]
                raise LockConflict(txn_id, key, holder)

    def _has_cycle(self, start: int) -> bool:
        seen = set()
        node = start
        while node in self._waits_for:
            node = self._waits_for[node]
            if node == start:
                return True
            if node in seen:
                return False
            seen.add(node)
        return False

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (end of transaction).

        Safe from any thread — aborting a transaction that ran on a
        different worker releases its locks atomically, so a retrying
        waiter on another thread either sees the old holder or none.
        """
        with self._mutex:
            for key in self._held_by_txn.pop(txn_id, set()):
                if self._holders.get(key) == txn_id:
                    del self._holders[key]
            self._waits_for.pop(txn_id, None)

    def holder_of(self, key: bytes) -> int | None:
        with self._mutex:
            return self._holders.get(key)

    def locks_held(self, txn_id: int) -> set[bytes]:
        with self._mutex:
            return set(self._held_by_txn.get(txn_id, set()))

    def held_keys(self) -> list[bytes]:
        """Every locked key, sorted — the chaos harness's lock-leak
        oracle (after partitions heal, this must drain to empty)."""
        with self._mutex:
            return sorted(self._holders)
