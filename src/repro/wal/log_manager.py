"""The append-only recovery log with stable-storage semantics.

The log manager owns:

* LSN assignment (byte offsets);
* the in-memory log buffer, held as fixed-size **segments** behind a
  :class:`repro.wal.segments.SegmentDirectory` — ``record_at`` and
  ``records_from`` cost one bisect over segments plus dict hits, never
  a scan of the whole log;
* the **per-page chain head index**: for every page, the LSN of its
  most recent chain record (UPDATE / COMPENSATION / FORMAT), kept
  current on append — this is what makes the per-page chain of the
  paper *addressable* without knowing the page's current PageLSN;
* an index of full-backup records so media recovery can locate a
  backup's log position without materializing the log;
* the *durable* prefix (``durable_lsn``) and force semantics:
  user-transaction commits force the log, system transactions do not
  (Figure 5) — their commit records ride along with the next force;
* **group commit**: a commit-triggered force hardens the whole buffered
  tail in one sequential write, so ride-along records (system-txn
  commits, PRI updates, and — under ``TransactionManager.
  group_commit()`` — other transactions' commit records) share the
  force they would otherwise each pay for;
* crash semantics: :meth:`crash` discards everything after the durable
  prefix, which is how experiments create torn states (e.g. a data
  page written but its PRI-update record lost, Figure 12).

The recovery log is stable storage (Section 5): forced records are
never lost and are not subject to fault injection.  Forces charge
sequential-write cost to the simulated clock.
"""

from __future__ import annotations

import threading
import time

from repro.errors import LogError, ReplicationLagError
from repro.sim.clock import SimClock
from repro.sim.iomodel import IOProfile
from repro.sim.stats import Stats
from repro.sync import ConditionMutex
from repro.wal.lsn import LOG_START, NULL_LSN
from repro.wal.records import LogRecord, LogRecordKind
from repro.wal.segments import DEFAULT_SEGMENT_BYTES, SegmentDirectory

#: Record kinds that advance a page's PageLSN and therefore form the
#: per-page chain (Section 5.1.4).  FULL_PAGE_IMAGE and PRI_UPDATE
#: records carry a page id but are chain *roots* / bookkeeping, not
#: chain members.
_CHAIN_KINDS = frozenset({
    LogRecordKind.UPDATE,
    LogRecordKind.COMPENSATION,
    LogRecordKind.FORMAT_PAGE,
})


class LogManager:
    """Segmented append-only log with an explicit durable prefix."""

    def __init__(self, clock: SimClock, profile: IOProfile, stats: Stats,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 group_commit: bool = True) -> None:
        self.clock = clock
        self.profile = profile
        self.stats = stats
        self.group_commit = group_commit
        self._dir = SegmentDirectory(segment_bytes)
        self._chain_heads: dict[int, int] = {}
        #: FORMAT record LSN -> the chain head it displaced (page
        #: reuse); lets a crash that loses the FORMAT restore the old
        #: incarnation's head exactly, without rescanning the log.
        self._format_displaced: dict[int, int] = {}
        self._backup_full_lsns: dict[int, int] = {}
        self._next_lsn = LOG_START
        self._durable_lsn = NULL_LSN
        #: LSN of the most recent CHECKPOINT_END record; modelled as the
        #: log's "master record", which survives crashes.
        self.master_checkpoint_lsn = NULL_LSN
        #: log shipping (PR 7): when a ``SegmentShipper`` is attached,
        #: every force notifies it so the newly durable tail streams to
        #: the standby.  Only *durable* records ever ship — the standby
        #: must never apply a record the primary could still lose.
        self.shipper = None
        #: bumped whenever the log's content changes out from under its
        #: readers (crash discards the unforced tail and re-assigns the
        #: freed LSNs to different records).  :class:`LogReader` checks
        #: this before trusting its LRU cache, so a reader that
        #: survives a crash never treats a re-assigned log page as
        #: already read.
        self.invalidation_epoch = 0
        #: one mutex guards every append/force/truncate/crash mutation;
        #: it doubles as the cross-thread commit barrier's condition
        self._mutex = ConditionMutex()
        #: cross-thread group commit (enabled by ``Database.session()``):
        #: a committing thread becomes the *group leader* — it opens a
        #: short commit window, then forces the whole buffered tail in
        #: one write; concurrent committers become *riders*, blocking on
        #: the barrier until a force covers their commit LSN.  Off (the
        #: default), :meth:`commit_force` is the single-threaded path,
        #: byte-identical to the pre-concurrency engine.
        self.cross_thread_commit = False
        #: real seconds a group leader waits for riders to enqueue
        self.commit_window_seconds = 0.0
        self._force_leader_active = False
        #: window gating: the commit window only pays off once a second
        #: thread has ever committed — a strictly single-threaded phase
        #: (maintenance, recovery drains, benchmarks' 1-thread point)
        #: must never sleep per commit
        self._commit_thread_ident: int | None = None
        self._multi_committer = False

    # ------------------------------------------------------------------
    # Appending and forcing
    # ------------------------------------------------------------------
    @property
    def end_lsn(self) -> int:
        """LSN one past the last appended record."""
        return self._next_lsn

    @property
    def durable_lsn(self) -> int:
        """All records with lsn < durable_lsn survive a crash...

        More precisely: a record survives iff its *entire* encoding lies
        within the durable prefix, i.e. ``record.lsn + len < durable``.
        Since forces always land on record boundaries here, the simpler
        ``lsn < durable_lsn`` test is equivalent.
        """
        return self._durable_lsn

    @property
    def segment_count(self) -> int:
        return self._dir.segment_count

    def append(self, record: LogRecord) -> int:
        """Assign an LSN, buffer the record, and return the LSN.

        Only the record's *size* is needed here (LSNs are byte
        offsets); the buffered tail holds decoded records, so the
        append path never materializes the serialized bytes.
        """
        size = record.encoded_size()
        with self._mutex:
            lsn = self._next_lsn
            record.lsn = lsn
            self._dir.append(lsn, record, size)
            self._next_lsn = lsn + size
            if record.page_id >= 0 and record.kind in _CHAIN_KINDS:
                if record.kind == LogRecordKind.FORMAT_PAGE:
                    self._format_displaced[lsn] = self._chain_heads.get(
                        record.page_id, NULL_LSN)
                self._chain_heads[record.page_id] = lsn
            elif record.kind == LogRecordKind.BACKUP_FULL:
                self._backup_full_lsns[record.backup_id] = lsn
        self.stats.bump("log_records")
        self.stats.bump("log_bytes", size)
        return lsn

    def force(self, up_to_lsn: int | None = None) -> None:
        """Flush the log buffer to stable storage up to ``up_to_lsn``.

        A no-op if the prefix is already durable (group commit).  The
        cost model charges one sequential write for the pending bytes.
        """
        with self._mutex:
            target = self._next_lsn if up_to_lsn is None else min(
                max(up_to_lsn, self._durable_lsn), self._next_lsn)
            if target <= self._durable_lsn:
                return
            pending = target - self._durable_lsn
            self.clock.advance(self.profile.write_cost(pending,
                                                       sequential=True))
            self.stats.bump("log_forces")
            self.stats.bump("log_forced_bytes", pending)
            self._durable_lsn = target
        shipper = self.shipper
        if shipper is not None:
            shipper.on_durable(target)

    def commit_force(self, commit_lsn: int) -> None:
        """Force on behalf of a commit record at ``commit_lsn``.

        With group commit (the default) the force extends to the end of
        the buffer: every buffered record — ride-along system-txn
        commits, PRI updates, other batched commits — hardens in the
        same sequential write.  A commit whose record is already
        durable costs nothing.

        With :attr:`cross_thread_commit` enabled, concurrent committers
        share forces through the leader/rider barrier instead (see
        :meth:`_barrier_commit`); callers must not hold any other
        engine lock, as riders block until a leader's force covers them.
        """
        with self._mutex:
            record_end = commit_lsn + (self._dir.size_of(commit_lsn) or 0)
        if self.cross_thread_commit:
            self._barrier_commit(record_end)
            return
        if record_end <= self._durable_lsn:
            return
        if self.group_commit:
            rider_bytes = self._next_lsn - record_end
            if rider_bytes > 0:
                self.stats.bump("group_commit_rider_bytes", rider_bytes)
            self.force()
        else:
            self.force(record_end)

    def enable_cross_thread_commit(self, window_seconds: float = 0.0) -> None:
        """Switch :meth:`commit_force` to the leader/rider barrier.

        Called once per session creation; a second *thread* creating a
        session arms the commit window up front.  Arming it before the
        first contended commit matters: if early commits force without
        a window, the committers phase-lock into alternating cohorts
        and steady-state amortization permanently halves.
        """
        self.cross_thread_commit = True
        self.commit_window_seconds = window_seconds
        ident = threading.get_ident()
        with self._mutex:
            if self._commit_thread_ident is None:
                self._commit_thread_ident = ident
            elif ident != self._commit_thread_ident:
                self._multi_committer = True

    def _barrier_commit(self, record_end: int) -> None:
        """The cross-thread group-commit barrier.

        The first committer to find no force in progress becomes the
        *group leader*: it opens a commit window (riders append their
        commit records and join the barrier meanwhile), then forces the
        whole buffered tail in one sequential write.  A *rider* blocks
        until a force covers its record, then returns without forcing —
        its durability rode along.  A rider woken by a force that does
        not cover it (it appended during the force) takes over as the
        next leader, so forces-per-commit collapses as the number of
        committing threads grows.
        """
        ident = threading.get_ident()
        with self._mutex:
            if self._commit_thread_ident is None:
                self._commit_thread_ident = ident
            elif ident != self._commit_thread_ident:
                self._multi_committer = True
            rode_along = False
            while True:
                if record_end <= self._durable_lsn:
                    if rode_along:
                        self.stats.bump("group_commit_riders")
                    return
                if not self._force_leader_active:
                    break
                rode_along = True
                self._mutex.wait()
            self._force_leader_active = True
            self.stats.bump("group_commit_leads")
        try:
            # The window is skipped until a second committing thread
            # has ever been seen: strictly single-threaded phases
            # (maintenance, recovery drains) pay no wall-clock tax.
            if self.commit_window_seconds > 0 and self._multi_committer:
                time.sleep(self.commit_window_seconds)
        finally:
            with self._mutex:
                try:
                    rider_bytes = self._next_lsn - record_end
                    if rider_bytes > 0:
                        self.stats.bump("group_commit_rider_bytes",
                                        rider_bytes)
                    if self.group_commit:
                        self.force()
                    else:
                        self.force(record_end)
                finally:
                    # Even a failed force must hand off leadership, or
                    # every later committer blocks forever.
                    self._force_leader_active = False
                    self._mutex.notify_all()

    def append_and_force(self, record: LogRecord) -> int:
        lsn = self.append(record)
        self.force()
        return lsn

    def ensure_replicated(self, commit_lsn: int) -> None:
        """Block a ``replicated_durable`` commit on its ship-ack.

        Called *after* the commit's force, so the ack rides the group-
        commit window: the leader's force already shipped the whole
        buffered tail in one batch and riders find their record acked.
        Raises :class:`ReplicationLagError` when the ack cannot be
        obtained (no standby attached, link severed, standby down);
        the commit remains locally durable either way.
        """
        shipper = self.shipper
        if shipper is None:
            raise ReplicationLagError(
                f"commit {commit_lsn}: replicated_durable requires an "
                f"attached standby")
        with self._mutex:
            record_end = commit_lsn + (self._dir.size_of(commit_lsn) or 0)
        shipper.ship_until(record_end)
        if shipper.acked_lsn < record_end:
            raise ReplicationLagError(
                f"commit {commit_lsn}: ship-ack stuck at "
                f"{shipper.acked_lsn} < {record_end} "
                f"(link severed or standby down)")

    def sealed_lsn(self) -> int:
        """Shipping horizon for segment-granular log shipping: the LSN
        below which every log segment has sealed (exhausted its
        encoded-byte budget)."""
        with self._mutex:
            return self._dir.sealed_below()

    def adopt(self, record: LogRecord) -> int:
        """Install a *shipped* record at its pre-assigned LSN.

        The standby's log replica never assigns LSNs — the primary
        already did.  Records must arrive gaplessly in LSN order (the
        first adopted record may sit above ``LOG_START``; the gap is
        the primary's truncated prefix, which the standby covers with
        seeded page images instead of records).  Adopted records are
        immediately durable: the ship-ack means the standby hardened
        them.  Maintains the same derived indexes as :meth:`append`.
        """
        lsn = record.lsn
        size = record.encoded_size()
        with self._mutex:
            if len(self._dir) == 0 and lsn >= self._next_lsn:
                if lsn > self._dir.truncated_below:
                    self._dir.truncate_below(lsn)
            elif lsn != self._next_lsn:
                raise LogError(
                    f"adoption gap: expected LSN {self._next_lsn}, "
                    f"got {lsn}")
            self._dir.append(lsn, record, size)
            self._next_lsn = lsn + size
            self._durable_lsn = self._next_lsn
            if record.page_id >= 0 and record.kind in _CHAIN_KINDS:
                if record.kind == LogRecordKind.FORMAT_PAGE:
                    self._format_displaced[lsn] = self._chain_heads.get(
                        record.page_id, NULL_LSN)
                self._chain_heads[record.page_id] = lsn
            elif record.kind == LogRecordKind.BACKUP_FULL:
                self._backup_full_lsns[record.backup_id] = lsn
            elif record.kind == LogRecordKind.CHECKPOINT_END:
                self.master_checkpoint_lsn = lsn
        self.stats.bump("standby_log_records")
        self.stats.bump("standby_log_bytes", size)
        return lsn

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def record_at(self, lsn: int) -> LogRecord:
        """The record at ``lsn`` (no cost accounting; see LogReader)."""
        with self._mutex:
            record = self._dir.get(lsn)
        if record is None:
            raise LogError(f"no log record at LSN {lsn}")
        return record

    def has_record(self, lsn: int) -> bool:
        with self._mutex:
            return self._dir.get(lsn) is not None

    def records_from(self, start_lsn: int) -> list[LogRecord]:
        """All records with ``lsn >= start_lsn`` in log order."""
        with self._mutex:
            return list(self._dir.iter_from(start_lsn))

    def all_records(self) -> list[LogRecord]:
        with self._mutex:
            return list(self._dir.iter_all())

    def encoded_size(self) -> int:
        """Total log volume in bytes."""
        return self._next_lsn - LOG_START

    # ------------------------------------------------------------------
    # Derived indexes
    # ------------------------------------------------------------------
    def page_chain_head(self, page_id: int) -> int:
        """LSN of the newest retained chain record for ``page_id``.

        ``NULL_LSN`` if the page has no retained chain — never updated,
        or its whole chain was truncated away behind a fresh backup.
        """
        with self._mutex:
            return self._chain_heads.get(page_id, NULL_LSN)

    def backup_full_lsn(self, backup_id: int) -> int | None:
        """Log position of the BACKUP_FULL record for ``backup_id``."""
        return self._backup_full_lsns.get(backup_id)

    # ------------------------------------------------------------------
    # Truncation (log head reclamation)
    # ------------------------------------------------------------------
    def truncate(self, before_lsn: int) -> int:
        """Discard records with ``lsn < before_lsn``; returns bytes freed.

        The caller must guarantee no retained structure needs the
        discarded records: the engine computes the bound from the page
        recovery index (no per-page chain may reach below the oldest
        backup of any covered page) and the oldest active transaction.
        Truncation never crosses the durable boundary backwards and
        keeps the master checkpoint record.
        """
        with self._mutex:
            limit = min(before_lsn, self._durable_lsn or before_lsn)
            if self.master_checkpoint_lsn:
                limit = min(limit, self.master_checkpoint_lsn)
            removed = self._dir.truncate_below(limit)
            if removed:
                self._chain_heads = {
                    pid: lsn for pid, lsn
                    in self._chain_heads.items() if lsn >= limit}
                self._format_displaced = {
                    lsn: (head if head >= limit else NULL_LSN)
                    for lsn, head in self._format_displaced.items()
                    if lsn >= limit}
                self._backup_full_lsns = {
                    bid: lsn for bid, lsn in self._backup_full_lsns.items()
                    if lsn >= limit}
        self.stats.bump("log_truncations")
        self.stats.bump("log_bytes_truncated", removed)
        return removed

    @property
    def truncated_below(self) -> int:
        """Records below this LSN have been reclaimed."""
        return self._dir.truncated_below

    def retained_bytes(self) -> int:
        """Log volume currently held (after truncation)."""
        return self._dir.total_bytes

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Discard all records beyond the durable prefix.

        Models a system failure: the log buffer vanishes; stable
        storage (the durable prefix and the master checkpoint pointer)
        survives.  Derived indexes are unwound against the lost tail —
        a page's chain head retreats along ``page_prev_lsn`` until it
        lands on a surviving record.
        """
        self._mutex.acquire()
        try:
            self._crash_locked()
        finally:
            self._mutex.release()
        self.stats.bump("log_crashes")

    def _crash_locked(self) -> None:
        floor = self._durable_lsn if self._durable_lsn else LOG_START
        lost = self._dir.discard_from(floor)
        for record in lost:  # newest-first: heads retreat one hop at a time
            if record.page_id >= 0 and record.kind in _CHAIN_KINDS:
                is_format = record.kind == LogRecordKind.FORMAT_PAGE
                displaced = (self._format_displaced.pop(record.lsn, NULL_LSN)
                             if is_format else NULL_LSN)
                if self._chain_heads.get(record.page_id) == record.lsn:
                    # A lost FORMAT (page reuse) restores the displaced
                    # incarnation's head; other records retreat along
                    # their prev pointer.
                    prev = displaced if is_format else record.page_prev_lsn
                    if prev != NULL_LSN and prev >= self._dir.truncated_below:
                        self._chain_heads[record.page_id] = prev
                    else:
                        self._chain_heads.pop(record.page_id, None)
            elif record.kind == LogRecordKind.BACKUP_FULL:
                if self._backup_full_lsns.get(record.backup_id) == record.lsn:
                    self._backup_full_lsns.pop(record.backup_id, None)
        self._next_lsn = floor
        if self.master_checkpoint_lsn >= self._next_lsn:
            # The checkpoint record itself was never forced; fall back.
            self.master_checkpoint_lsn = NULL_LSN
        if lost:
            # The discarded LSNs will be re-assigned to *different*
            # records; any surviving LogReader must drop its LRU cache
            # or a post-crash (or post-failover) repair would treat a
            # re-written log page as already read.
            self.invalidation_epoch += 1

    # ------------------------------------------------------------------
    # Convenience constructors used across the engine
    # ------------------------------------------------------------------
    def log_checkpoint_end(self, checkpoint) -> int:  # noqa: ANN001
        lsn = self.append(LogRecord(LogRecordKind.CHECKPOINT_END,
                                    checkpoint=checkpoint))
        self.force()
        self.master_checkpoint_lsn = lsn
        return lsn
