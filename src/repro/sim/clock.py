"""A deterministic simulated clock.

Components that perform "expensive" operations (device reads and
writes, log forces, backup restores) advance the clock by the modeled
cost of the operation.  Experiments read elapsed simulated time in
seconds, which is the quantity the paper reasons about in Section 6.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        return self._now

    def elapsed_since(self, mark: float) -> float:
        """Seconds elapsed since a previously recorded ``mark``."""
        return self._now - mark

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"


class StopWatch:
    """Measure a span of simulated time on a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "StopWatch":
        self._start = self._clock.now
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = self._clock.now - self._start
