"""The coordinator side of cross-shard two-phase commit.

The router is the coordinator.  Its decision log is the tiny durable
structure classic 2PC requires: a *forced* COMMIT-decision entry is
the commit point of a cross-shard transaction — before it, presumed
abort applies (a coordinator crash between prepare and decision aborts
the transaction); after it, every prepared participant must eventually
commit, however many crashes intervene on either side.

Like the engine's log manager, the decision log models durability
explicitly for the chaos harness: :meth:`CoordinatorLog.crash`
discards unforced entries, exactly what losing the coordinator host
would do.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Decision:
    """One durable coordinator decision."""

    gtid: int
    verdict: str  # "commit" | "abort"
    participants: tuple[int, ...]


@dataclass(frozen=True)
class EpochRecord:
    """One durable slot-cutover record (online rebalancing).

    Forcing this record is the commit point of a ``move_slot``: a
    recovering router replays the durable epoch sequence to rebuild
    its routing table, exactly as participants replay decisions."""

    epoch: int
    slot: int
    src: int
    dst: int


class CoordinatorLog:
    """Append-only, explicitly-forced 2PC decision log.

    Global transaction ids are allocated from a counter that survives
    :meth:`crash` — modeling the standard pessimistically pre-reserved
    sequence block, so a gtid can never be reused for a different
    transaction while a participant still holds the old one in doubt.
    """

    def __init__(self) -> None:
        self._entries: list[Decision] = []
        self._durable_count = 0
        self._next_gtid = 1

    # -- identity ------------------------------------------------------
    def allocate_gtid(self) -> int:
        gtid = self._next_gtid
        self._next_gtid += 1
        return gtid

    # -- logging -------------------------------------------------------
    def log_decision(self, gtid: int, verdict: str,
                     participants: tuple[int, ...] | list[int],
                     force: bool = True) -> None:
        if verdict not in ("commit", "abort"):
            raise ValueError(f"verdict must be 'commit' or 'abort', "
                             f"got {verdict!r}")
        self._entries.append(Decision(gtid, verdict, tuple(participants)))
        if force:
            self.force()

    def log_epoch(self, epoch: int, slot: int, src: int, dst: int,
                  force: bool = True) -> EpochRecord:
        """Append a slot-cutover record; forcing it is the cutover's
        commit point (an unforced record vanishes with the coordinator
        and the move never happened)."""
        record = EpochRecord(epoch, slot, src, dst)
        self._entries.append(record)
        if force:
            self.force()
        return record

    def force(self) -> None:
        """Harden every appended decision (the commit point)."""
        self._durable_count = len(self._entries)

    def crash(self) -> None:
        """Coordinator loss: unforced decisions vanish; durable ones —
        and the gtid sequence — survive."""
        del self._entries[self._durable_count:]

    # -- recovery queries ----------------------------------------------
    def decision_of(self, gtid: int) -> str:
        """The durable verdict for ``gtid`` — ``"abort"`` when none was
        forced (presumed abort covers coordinator loss between prepare
        and decision)."""
        for decision in self._entries[:self._durable_count]:
            if isinstance(decision, Decision) and decision.gtid == gtid:
                return decision.verdict
        return "abort"

    def durable_decisions(self) -> list[Decision]:
        return [entry for entry in self._entries[:self._durable_count]
                if isinstance(entry, Decision)]

    def durable_epochs(self) -> list[EpochRecord]:
        """Every durable cutover record, in epoch order (append order
        is epoch order — epochs are allocated by the single router)."""
        return [entry for entry in self._entries[:self._durable_count]
                if isinstance(entry, EpochRecord)]

    def __len__(self) -> int:
        return len(self._entries)
