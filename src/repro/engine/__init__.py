"""The database engine: a thin facade over cohesive components.

:class:`repro.engine.Database` wires every substrate together — the
simulated device, the segmented recovery log, the buffer pool,
transactions, Foster B-trees, heaps, the page recovery index, and the
three recovery procedures (single-page, system/restart, media).  The
engine core is decomposed:

* :mod:`repro.engine.catalog` — metadata-page records and the
  index/heap registries (names → roots/pages/handles);
* :mod:`repro.engine.allocator` — page allocation and the free-space
  pool (crash-consistent via logged metadata updates);
* :mod:`repro.engine.checkpointer` — checkpoints, PRI persistence,
  page backups, and log retention/truncation;
* :mod:`repro.engine.system_recovery` / :mod:`repro.engine.
  media_recovery` — restart and media recovery over those components.

The facade retains the engine-context protocols (TreeContext,
UndoContext) that the B-tree, heap, and transaction manager program
against, so storage structures stay decoupled from the decomposition.
"""

from repro.engine.allocator import PageAllocator
from repro.engine.catalog import Catalog
from repro.engine.checkpointer import Checkpointer
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.session import Session

__all__ = ["Database", "Session", "EngineConfig", "Catalog",
           "PageAllocator", "Checkpointer"]
