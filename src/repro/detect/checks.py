"""Non-raising in-page checks, for scrubbing and reporting.

The raising variants (used on the hot read path) live on
:class:`repro.page.Page` and :class:`repro.page.SlottedPage`; this
module wraps them so a scrubber can enumerate *all* damage instead of
stopping at the first failed page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PageFailureKind, SinglePageFailure
from repro.page.page import Page, PageType
from repro.page.slotted import SlottedPage

_SLOTTED_TYPES = frozenset({
    PageType.METADATA, PageType.BTREE_BRANCH, PageType.BTREE_LEAF,
    PageType.HEAP,
})


@dataclass(frozen=True)
class CheckOutcome:
    """Result of checking one page."""

    page_id: int
    ok: bool
    kind: PageFailureKind | None = None
    detail: str = ""

    @classmethod
    def passed(cls, page_id: int) -> "CheckOutcome":
        return cls(page_id, True)

    @classmethod
    def failed(cls, failure: SinglePageFailure) -> "CheckOutcome":
        return cls(failure.page_id, False, failure.kind, failure.detail)


def run_in_page_checks(page: Page, expected_page_id: int,
                       expected_lsn: int | None = None) -> CheckOutcome:
    """All in-page tests plus the optional PRI LSN cross-check."""
    try:
        page.verify(expected_page_id=expected_page_id)
        if page.page_type in _SLOTTED_TYPES:
            SlottedPage(page).check_plausible()
    except SinglePageFailure as failure:
        return CheckOutcome.failed(failure)
    if expected_lsn is not None and page.page_lsn < expected_lsn:
        return CheckOutcome(
            expected_page_id, False, PageFailureKind.STALE_LSN,
            f"PageLSN {page.page_lsn} < expected {expected_lsn}")
    return CheckOutcome.passed(expected_page_id)
