"""Figure 11 — the update sequence for the page recovery index.

The protocol: write the dirty page back, then append the PRI-update
log record, and only then allow eviction — with **no log force per
write** ("doing so would add a forced log write to each database
write; clearly a very high cost").

The experiment measures that accounting under sustained eviction
pressure, and verifies the crash windows between the steps by cutting
the run at each point.
"""

from __future__ import annotations

from benchmarks.common import key_of, print_table, value_of
from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import NULL_PROFILE


def build(buffer_capacity=24):
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=4096, buffer_capacity=buffer_capacity,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE,
        backup_policy=BackupPolicy.disabled()))
    return db, db.create_index()


def run_pressure():
    """A working set far larger than the pool forces constant
    write-back + eviction; count the protocol's artifacts."""
    db, tree = build()
    txn = db.begin()
    for i in range(3000):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    return {
        "page writes": db.stats.get("pages_written_back"),
        "PRI update records": db.stats.get("pri_update_records"),
        "evictions": db.stats.get("pages_evicted"),
        "log forces": db.stats.get("log_forces"),
    }


def run_crash_windows():
    """Crash after each protocol step; nothing committed is ever lost."""
    outcomes = []

    # Window A: crash right after the device write, before the PRI
    # record is durable (it was appended, not forced).
    db, tree = build(buffer_capacity=128)
    txn = db.begin()
    for i in range(100):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    victim = sorted(db.pool.dirty_page_table())[0]
    db.pool.flush_page(victim)          # write + unforced PRI record
    db.crash()
    report = db.restart()
    tree = db.tree(1)
    ok = all(tree.lookup(key_of(i)) == value_of(i, 0) for i in range(100))
    outcomes.append(["write done, PRI record lost", ok,
                     report.pri_repair_records])

    # Window B: crash after the PRI record is durable, before eviction.
    db, tree = build(buffer_capacity=128)
    txn = db.begin()
    for i in range(100):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    victim = sorted(db.pool.dirty_page_table())[0]
    db.pool.flush_page(victim)
    db.log.force()                      # PRI record now durable
    db.crash()
    report = db.restart()
    tree = db.tree(1)
    ok = all(tree.lookup(key_of(i)) == value_of(i, 0) for i in range(100))
    outcomes.append(["write done, PRI record durable", ok,
                     report.pri_repair_records])
    return outcomes


def test_fig11_no_force_per_write(benchmark):
    counts = benchmark.pedantic(run_pressure, rounds=1, iterations=1)

    # One PRI record per completed write...
    assert counts["PRI update records"] == counts["page writes"]
    # ... with massively fewer forces than writes (forces come from the
    # WAL rule and commits, not from PRI maintenance).
    assert counts["log forces"] < counts["page writes"] / 2
    assert counts["evictions"] > 0

    print_table(
        "Figure 11: write-back protocol accounting under eviction pressure",
        ["metric", "count"],
        [[k, v] for k, v in counts.items()])


def test_fig11_crash_windows(benchmark):
    outcomes = benchmark.pedantic(run_crash_windows, rounds=1, iterations=1)
    for label, ok, _repairs in outcomes:
        assert ok, f"data loss in window: {label}"
    # Window A requires the Figure-12 repair; window B does not.
    assert outcomes[0][2] >= 1
    assert outcomes[1][2] == 0

    print_table(
        "Figure 11: crash windows between protocol steps",
        ["crash point", "all data intact", "PRI repair records at restart"],
        outcomes)
