"""Clock (second-chance) eviction policy."""

from __future__ import annotations

from typing import Callable, Iterable


class ClockEviction:
    """Classic clock sweep over a set of page ids.

    The policy only chooses *which* unpinned page to evict; the buffer
    pool handles flushing and the Figure-11 write-back protocol.
    """

    def __init__(self) -> None:
        self._ring: list[int] = []
        self._hand = 0
        self._ref: dict[int, bool] = {}

    def admitted(self, page_id: int) -> None:
        self._ring.append(page_id)
        self._ref[page_id] = True

    def touched(self, page_id: int) -> None:
        if page_id in self._ref:
            self._ref[page_id] = True

    def removed(self, page_id: int) -> None:
        if page_id in self._ref:
            del self._ref[page_id]
            index = self._ring.index(page_id)
            self._ring.pop(index)
            if self._hand > index:
                self._hand -= 1
            if self._ring and self._hand >= len(self._ring):
                self._hand = 0

    def choose_victim(self, evictable: Callable[[int], bool]) -> int | None:
        """Pick a victim among pages for which ``evictable`` is true."""
        if not self._ring:
            return None
        sweeps = 0
        max_steps = 2 * len(self._ring) + 1
        while sweeps < max_steps:
            page_id = self._ring[self._hand]
            self._hand = (self._hand + 1) % len(self._ring)
            sweeps += 1
            if not evictable(page_id):
                continue
            if self._ref.get(page_id, False):
                self._ref[page_id] = False
                continue
            return page_id
        # Second full sweep cleared all reference bits; give up only if
        # nothing is evictable at all.
        for page_id in self._ring:
            if evictable(page_id):
                return page_id
        return None

    def pages(self) -> Iterable[int]:
        return list(self._ring)
