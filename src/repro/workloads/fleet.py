"""Fleet-scale failure model and the multi-client chaos workload.

Bairavasundaram et al. [2] observed that 9.5 % of nearline (SATA)
disks develop at least one latent sector error per year, often several;
[3] adds silent corruption in the storage stack.  :class:`FleetModel`
turns those annual rates into deterministic per-device fault schedules
so availability experiments can compare engines under realistic error
arrival patterns.

:class:`ClientFleet` is the workload side of the chaos simulation: a
fleet of clients, each with its *own* seeded RNG stream and cursor, so
client ``c``'s ``k``-th action is a pure function of ``(fleet seed,
c, k)`` — independent of how the scheduler interleaves the clients,
of failures, and of which other events a shrunk schedule retains.
That independence is what makes greedy event-deletion shrinking sound:
removing one event never perturbs the actions the surviving events
perform.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.sync import Mutex

#: Annual probability that a nearline disk develops >= 1 latent sector
#: error (Bairavasundaram et al., SIGMETRICS 2007).
NEARLINE_LSE_ANNUAL_RATE = 0.095
#: Enterprise disks fared better in the same study.
ENTERPRISE_LSE_ANNUAL_RATE = 0.019

SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class ScheduledFault:
    """One fault at one simulated time on one device."""

    time: float
    device_index: int
    page_id: int
    kind: str  # "read-error" | "bit-rot" | "lost-write"


@dataclass
class FleetOutcome:
    """Aggregate result of a fleet availability experiment."""

    devices: int = 0
    faults_injected: int = 0
    recovered_locally: int = 0
    media_failures: int = 0
    system_failures: int = 0
    total_downtime_seconds: float = 0.0
    transactions_aborted: int = 0

    @property
    def availability(self) -> float:
        """Fraction of device-years without a media/system outage."""
        if self.devices == 0:
            return 1.0
        return 1.0 - (self.media_failures + self.system_failures) / self.devices


class FleetModel:
    """Generates fault schedules for a fleet of devices."""

    def __init__(self, n_devices: int, pages_per_device: int,
                 years: float = 1.0,
                 annual_lse_rate: float = NEARLINE_LSE_ANNUAL_RATE,
                 errors_per_incident: float = 3.0,
                 silent_fraction: float = 0.3,
                 seed: int = 7) -> None:
        self.n_devices = n_devices
        self.pages_per_device = pages_per_device
        self.years = years
        self.annual_lse_rate = annual_lse_rate
        self.errors_per_incident = errors_per_incident
        self.silent_fraction = silent_fraction
        self.seed = seed

    def schedule(self) -> list[ScheduledFault]:
        """Deterministic fault schedule for the whole fleet.

        Each device suffers an "incident" with the annual probability;
        an incident produces a geometric number of page faults (the
        study found errors cluster heavily), a fraction of them silent.
        """
        rng = random.Random(self.seed)
        faults: list[ScheduledFault] = []
        horizon = self.years * SECONDS_PER_YEAR
        p_incident = 1.0 - math.pow(1.0 - self.annual_lse_rate, self.years)
        for device in range(self.n_devices):
            if rng.random() >= p_incident:
                continue
            at = rng.random() * horizon
            n_errors = 1 + min(int(rng.expovariate(
                1.0 / max(self.errors_per_incident - 1, 0.1))), 50)
            for _ in range(n_errors):
                page = rng.randrange(self.pages_per_device)
                if rng.random() < self.silent_fraction:
                    kind = "lost-write" if rng.random() < 0.5 else "bit-rot"
                else:
                    kind = "read-error"
                faults.append(ScheduledFault(at, device, page, kind))
                at += rng.random() * 3600  # clustered within hours
        faults.sort(key=lambda f: f.time)
        return faults


# ----------------------------------------------------------------------
# Multi-client chaos workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClientAction:
    """One complete transaction intent emitted by one fleet client.

    ``ops`` is a list of ``(verb, key_index, payload)`` intents; the
    executor interprets them against current database state (an
    ``update`` of an absent key becomes an insert, a ``delete`` of an
    absent key becomes a lookup), so the *stream* itself never depends
    on state.  ``fate`` is ``"commit"`` or ``"abort"`` — aborts
    exercise the transaction failure class deliberately.
    """

    client: int
    seq: int
    fate: str
    ops: tuple[tuple[str, int, bytes], ...]


class ClientFleet:
    """A resumable fleet of workload clients with independent seeded
    RNG streams.

    Each client owns a ``random.Random`` seeded from ``(seed,
    client)`` and a cursor counting the actions it has emitted.  The
    fleet is *resumable*: it lives outside the database engine, so a
    crash/restore cycle does not disturb any client's stream — the
    interrupted action is simply accounted by the caller (as a loser or
    an uncertain commit) and the stream continues.
    """

    #: intent verbs and their relative weights
    VERBS = (("update", 5), ("insert", 2), ("lookup", 2),
             ("delete", 1))

    def __init__(self, n_clients: int, seed: int, key_space: int,
                 max_ops_per_txn: int = 4, abort_fraction: float = 0.1) -> None:
        if n_clients <= 0:
            raise ConfigError("need at least one client")
        if key_space <= 0:
            raise ConfigError("need a positive key space")
        self.n_clients = n_clients
        self.seed = seed
        self.key_space = key_space
        self.max_ops_per_txn = max_ops_per_txn
        self.abort_fraction = abort_fraction
        self._rngs = [random.Random(f"fleet/{seed}/{client}")
                      for client in range(n_clients)]
        self._cursors = [0] * n_clients
        self._verb_pool = [verb for verb, weight in self.VERBS
                           for _ in range(weight)]

    def next_action(self, client: int) -> ClientAction:
        """Emit client ``client``'s next action and advance its cursor."""
        rng = self._rngs[client]
        seq = self._cursors[client]
        self._cursors[client] = seq + 1
        n_ops = rng.randrange(1, self.max_ops_per_txn + 1)
        ops = []
        for _ in range(n_ops):
            verb = rng.choice(self._verb_pool)
            key_index = rng.randrange(self.key_space)
            payload = b"c%d.%d.%d" % (client, seq, rng.randrange(1_000_000))
            ops.append((verb, key_index, payload))
        fate = "abort" if rng.random() < self.abort_fraction else "commit"
        return ClientAction(client, seq, fate, tuple(ops))

    def actions_emitted(self, client: int) -> int:
        return self._cursors[client]


# ----------------------------------------------------------------------
# Threaded mode: the fleet as real worker threads over Sessions
# ----------------------------------------------------------------------
class ConcurrentOracle:
    """Thread-safe shadow of committed effects, ordered by commit LSN.

    Worker threads race on shared keys; the engine serializes same-key
    writers through the key lock, so the *later* writer of a key always
    carries the *later* commit LSN.  Recording ``(commit_lsn, value)``
    per key and keeping the max-LSN entry therefore reconstructs the
    exact serialization order without the oracle ever holding an engine
    latch.  A value of ``None`` is a committed delete.
    """

    def __init__(self) -> None:
        self._mutex = Mutex()
        self._entries: dict[bytes, tuple[int, bytes | None]] = {}

    def seed(self, key: bytes, value: bytes) -> None:
        """Pre-loaded committed state (ordered before every commit)."""
        with self._mutex:
            self._entries[key] = (-1, value)

    def record_commit(self, commit_lsn: int,
                      staged: dict[bytes, bytes | None]) -> None:
        """A session's commit() returned: its effects are durable and
        serialized at ``commit_lsn``."""
        with self._mutex:
            for key, value in staged.items():
                prev = self._entries.get(key)
                if prev is None or commit_lsn > prev[0]:
                    self._entries[key] = (commit_lsn, value)

    def expected_state(self) -> dict[bytes, bytes]:
        """key -> value for every committed, not-deleted key."""
        with self._mutex:
            return {key: value for key, (_, value) in self._entries.items()
                    if value is not None}


@dataclass
class ThreadedFleetReport:
    """Tally of one threaded fleet run."""

    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    lookups: int = 0
    abandoned: int = 0
    ops: int = 0  # individual read/write intents executed

    @property
    def transactions(self) -> int:
        return self.committed + self.aborted + self.conflicts + self.abandoned


class ThreadedFleetRunner:
    """Threaded mode of the chaos fleet: N worker threads x M actions.

    Each worker owns one fleet client (so action streams stay the pure
    ``(seed, client, seq)`` functions shrinking relies on) and one
    :class:`repro.engine.session.Session`.  Intents are interpreted
    against *live* tree state under the key lock (an ``update`` of an
    absent key inserts, a ``delete`` of an absent key is a no-op), so
    racing threads stay well-defined; committed effects are recorded in
    a :class:`ConcurrentOracle` keyed by commit LSN.

    :meth:`stop` drains workers at their next action boundary;
    :meth:`abandon` makes every worker walk away *mid-transaction* —
    the in-flight transactions stay active holding locks, which is the
    state a process crash would freeze (the stress battery crashes the
    engine right after and lets restart roll them back as losers).
    """

    #: values are padded to one width so updates replace in place —
    #: the B-tree splits on insert, not on update growth, and a page
    #: already full of same-width records never needs either
    VALUE_WIDTH = 24

    def __init__(self, db, tree, fleet: ClientFleet,  # noqa: ANN001
                 oracle: ConcurrentOracle,
                 actions_per_client: int) -> None:
        self.db = db
        self.tree = tree
        self.fleet = fleet
        self.oracle = oracle
        self.actions_per_client = actions_per_client
        self.report = ThreadedFleetReport()
        self._report_mutex = Mutex()
        self._stop = threading.Event()
        self._abandon = threading.Event()
        self._threads: list[threading.Thread] = []
        self.errors: list[BaseException] = []

    # -- control -------------------------------------------------------
    def start(self) -> None:
        self._threads = [
            threading.Thread(target=self._run_client, args=(client,),
                             name=f"fleet-client-{client}", daemon=True)
            for client in range(self.fleet.n_clients)]
        for thread in self._threads:
            thread.start()

    def join(self, timeout: float | None = None) -> None:
        for thread in self._threads:
            thread.join(timeout)
        if self.errors:
            raise self.errors[0]

    def run(self) -> ThreadedFleetReport:
        """Start, run every client to completion, and join."""
        self.start()
        self.join()
        return self.report

    def stop(self) -> None:
        """Drain workers at their next transaction boundary."""
        self._stop.set()

    def abandon(self) -> None:
        """Make workers walk away mid-transaction (pre-crash state)."""
        self._abandon.set()
        self._stop.set()

    # -- the worker ----------------------------------------------------
    def _tally(self, field_name: str) -> None:
        with self._report_mutex:
            setattr(self.report, field_name,
                    getattr(self.report, field_name) + 1)

    def _run_client(self, client: int) -> None:
        from repro.errors import DeadlockError
        from repro.txn.locks import LockConflict

        session = self.db.session()
        try:
            for _ in range(self.actions_per_client):
                if self._stop.is_set():
                    break
                action = self.fleet.next_action(client)
                try:
                    self._execute(session, action)
                except (LockConflict, DeadlockError):
                    # A genuine transaction failure: roll back and move
                    # on — the oracle never heard about this txn.
                    if session.txn is not None:
                        session.abort()
                    self._tally("conflicts")
        except BaseException as exc:  # noqa: BLE001 - surfaced by join()
            self.errors.append(exc)

    def _execute(self, session, action: ClientAction) -> None:  # noqa: ANN001
        session.begin()
        staged: dict[bytes, bytes | None] = {}
        for verb, key_index, payload in action.ops:
            if self._abandon.is_set():
                # Walk away mid-transaction: locks and the active-table
                # entry stay behind, exactly like a dying process.
                session.forget()
                self._tally("abandoned")
                return
            key = b"k%06d" % key_index
            payload = payload[:self.VALUE_WIDTH].ljust(self.VALUE_WIDTH, b".")
            self._tally("ops")
            if verb == "lookup":
                session.lookup_or_none(self.tree, key)
                self._tally("lookups")
            elif verb == "delete":
                if session.delete(self.tree, key):
                    staged[key] = None
            else:  # update / insert intents both upsert against state
                session.upsert(self.tree, key, payload)
                staged[key] = payload
        if self._abandon.is_set():
            # Caught between the last op and the commit/abort decision:
            # freeze here too, maximizing the in-flight surface a
            # subsequent crash has to clean up.
            session.forget()
            self._tally("abandoned")
            return
        if action.fate == "abort":
            session.abort()
            self._tally("aborted")
        else:
            commit_lsn = session.commit()
            self.oracle.record_commit(commit_lsn, staged)
            self._tally("committed")


# ----------------------------------------------------------------------
# Facade mode: the fleet driven through the public Client API
# ----------------------------------------------------------------------
class FacadeFleetRunner:
    """Runs fleet action streams through any :class:`repro.client.
    Client` — the backend-agnostic driver of the differential suite.

    One client at a time, actions interleaved round-robin across fleet
    clients, every transaction through ``client.txn()``.  Because the
    action streams are pure functions of ``(seed, client, seq)`` and
    execution is sequential, the committed-effects ``model`` is exact:
    any backend given the same fleet must end with ``client.scan()``
    equal to the model — whether it is one engine or eight processes
    behind a 2PC router.
    """

    VALUE_WIDTH = ThreadedFleetRunner.VALUE_WIDTH

    def __init__(self, client, fleet: ClientFleet,  # noqa: ANN001
                 actions_per_client: int) -> None:
        self.client = client
        self.fleet = fleet
        self.actions_per_client = actions_per_client
        self.report = ThreadedFleetReport()
        #: committed key -> value shadow (None entries are removed)
        self.model: dict[bytes, bytes] = {}

    def seed_key(self, key: bytes, value: bytes) -> None:
        self.client.put(key, value)
        self.model[key] = value

    def run(self) -> ThreadedFleetReport:
        for seq in range(self.actions_per_client):
            for client_id in range(self.fleet.n_clients):
                self._execute(self.fleet.next_action(client_id))
        return self.report

    def _execute(self, action: ClientAction) -> None:
        from repro.errors import TransactionAborted

        staged: dict[bytes, bytes | None] = {}
        try:
            with self.client.txn() as t:
                for verb, key_index, payload in action.ops:
                    key = b"k%06d" % key_index
                    payload = payload[:self.VALUE_WIDTH].ljust(
                        self.VALUE_WIDTH, b".")
                    self.report.ops += 1
                    if verb == "lookup":
                        t.get(key)
                        self.report.lookups += 1
                    elif verb == "delete":
                        if t.delete(key):
                            staged[key] = None
                    else:  # update / insert intents both upsert
                        t.put(key, payload)
                        staged[key] = payload
                if action.fate == "abort":
                    raise _IntentionalAbort()
        except _IntentionalAbort:
            self.report.aborted += 1
            return
        except TransactionAborted:
            self.report.conflicts += 1
            return
        self.report.committed += 1
        for key, value in staged.items():
            if value is None:
                self.model.pop(key, None)
            else:
                self.model[key] = value


class _IntentionalAbort(Exception):
    """Raised inside ``client.txn()`` to trigger its abort path for
    actions fated to abort (then swallowed by the runner)."""
