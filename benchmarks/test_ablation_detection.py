"""Ablation — the PageLSN cross-check against the page recovery index.

Section 4.2 singles out the PageLSN as "the only field in a B-tree
node that cannot be verified" by fence-key invariants, and Section
5.2.2 resolves it: "comparing the PageLSN in the data page with the
information in the page recovery index is an additional consistency
check that could prevent the nightmare recounted in the introduction."

The ablation removes exactly that check and replays a lost write:
checksums and plausibility tests all pass (the stale page is a
perfectly healthy *old* page), so the engine silently serves stale,
committed-over data — the quiet corruption the anecdote is about.
"""

from __future__ import annotations

from benchmarks.common import key_of, leaf_of, print_table, value_of
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import NULL_PROFILE


def run(lsn_check: bool):
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=1024, buffer_capacity=64,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE, pri_lsn_check=lsn_check))
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    victim = leaf_of(db, tree)
    # The lost write: committed, "flushed", silently dropped.
    db.device.inject_lost_write(victim)
    txn = db.begin()
    tree.update(txn, key_of(0), b"COMMITTED-V2")
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    observed = tree.lookup(key_of(0))
    return {
        "check": "on" if lsn_check else "off (ablated)",
        "observed": observed,
        "correct": observed == b"COMMITTED-V2",
        "detected": db.stats.get("spf[stale-lsn]"),
        "recovered": db.stats.get("single_page_recoveries"),
    }


def test_ablation_pagelsn_cross_check(benchmark):
    results = benchmark.pedantic(lambda: [run(True), run(False)],
                                 rounds=1, iterations=1)
    with_check, without = results

    assert with_check["correct"]
    assert with_check["detected"] == 1
    # The ablated engine serves the *stale committed value* silently —
    # no error, no detection, wrong answer.
    assert not without["correct"]
    assert without["observed"] == value_of(0, 0)
    assert without["detected"] == 0
    assert without["recovered"] == 0

    print_table(
        "Ablation: lost write with/without the PageLSN cross-check",
        ["PRI LSN check", "read returns", "correct", "stale-LSN detections",
         "recoveries"],
        [[r["check"], r["observed"].decode(), r["correct"], r["detected"],
          r["recovered"]] for r in results])


def test_ablation_bench_check_cost(benchmark):
    """The cross-check itself is one dict/range probe per buffer fault;
    measure the fully-checked fetch to show it is noise."""
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=1024, buffer_capacity=64,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE))
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    victim = leaf_of(db, tree)

    def fetch():
        return db.recovery_manager.fetch_page(victim)

    page = benchmark(fetch)
    assert page.page_id == victim
