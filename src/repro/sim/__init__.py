"""Simulated time, I/O cost models, and counters.

The reproduction performs all page-level work for real, but charges the
*cost* of every device and log I/O to a simulated clock.  This is how
the benchmarks reproduce the paper's Section-6 arithmetic (e.g. a
100 GB restore at 100 MB/s taking about 1000 s) at laptop scale.
"""

from repro.sim.clock import SimClock
from repro.sim.iomodel import (
    ARCHIVE_PROFILE,
    FLASH_PROFILE,
    HDD_PROFILE,
    IOProfile,
)
from repro.sim.stats import Stats

__all__ = [
    "SimClock",
    "IOProfile",
    "HDD_PROFILE",
    "FLASH_PROFILE",
    "ARCHIVE_PROFILE",
    "Stats",
]
