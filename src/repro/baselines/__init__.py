"""Baselines the paper compares against.

* :mod:`repro.baselines.media_only` — a traditional engine for which
  single-page failures are *not* a supported class: every page failure
  escalates per Figure 1.
* :mod:`repro.baselines.mirror_repair` — the only automatic page
  repair the paper found in practice (SQL Server database mirroring):
  a full mirror kept current by log shipping, where repairing one page
  requires applying the *entire* log stream to the mirror first.
"""

from repro.baselines.media_only import EscalationOutcome, traditional_config
from repro.baselines.mirror_repair import LogShippingMirror, MirrorRepairResult

__all__ = [
    "traditional_config",
    "EscalationOutcome",
    "LogShippingMirror",
    "MirrorRepairResult",
]
