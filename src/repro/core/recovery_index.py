"""The page recovery index (PRI) — Section 5.2.2, Figure 7.

For every data page the PRI tracks two things:

* **Backup page**: where the most recent backup image of the page
  lives — an explicit page copy, a full-page image in the log, a page
  of a full database backup, or the page's formatting log record.
* **Log sequence number**: the LSN of the most recent log record
  pertaining to the page — *valid only while the page is not resident
  in the buffer pool* and only if the page has been updated since the
  last backup.  While the page is buffered the entry "may fall behind"
  (Figure 6); it is brought up to date when the cleaned page is
  written back (Figure 11).

The index is **ordered and range-compressed**: "a single entry should
cover a large range of pages if they all have the same mapping, e.g., a
backup of the entire database.  If only one page within such a range is
given a new backup page, the range must be split as appropriate."  The
worst case is one entry per page at ~16 bytes, about 1 permille of the
database size, small enough to keep in memory at all times — which is
exactly how this implementation treats it (with explicit checkpoint
persistence and log-based reconstruction handled by the engine).
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass

from repro.errors import RecoveryError
from repro.sync import Mutex
from repro.wal.records import BackupRef, BackupRefKind

#: Figure 7 / Section 5.2.2: "the size of the page recovery index may
#: reach about 16 bytes per database page" — the per-page entry cost we
#: account for point entries.
POINT_ENTRY_BYTES = 16
#: A range entry additionally stores the range end.
RANGE_ENTRY_BYTES = 24


@dataclass(frozen=True)
class PriEntry:
    """What a PRI lookup returns for one page (Figure 7's two fields,
    plus the backup age used by the freshness policy of Section 6)."""

    backup_ref: BackupRef
    backup_page_lsn: int
    last_lsn: int | None
    backup_time: float

    @property
    def has_backup(self) -> bool:
        return self.backup_ref.kind != BackupRefKind.NONE

    @property
    def recovery_start_lsn(self) -> int:
        """The PRI's *own* lower bound for the chain walk (Figure 9).

        Recovery does not start here: the entry "may fall behind" while
        the page is buffered (Figure 6), so the actual start is
        :meth:`repro.wal.log_reader.LogReader.chain_start_lsn`, which
        also consults the log's chain-head index.
        """
        return self.last_lsn if self.last_lsn is not None else self.backup_page_lsn


class PageRecoveryIndex:
    """Ordered, range-compressed page recovery index.

    Ranges are half-open ``[start, end)`` and non-overlapping, kept in
    a sorted list; point updates split the covering range.  Per-page
    LSNs are held separately (they are inherently per-page).
    """

    def __init__(self) -> None:
        # Parallel arrays sorted by range start.
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._refs: list[BackupRef] = []
        self._lsns: list[int] = []      # backup_page_lsn per range
        self._times: list[float] = []   # backup_time per range
        self._page_lsns: dict[int, int] = {}
        # Lookups and maintenance run from concurrent sessions (the
        # repair path updates the index on reads); one mutex keeps the
        # parallel arrays consistent.
        self._mutex = Mutex()

    # ------------------------------------------------------------------
    # Range machinery
    # ------------------------------------------------------------------
    def _find_range(self, page_id: int) -> int | None:
        """Index of the range containing ``page_id``, or None."""
        pos = bisect.bisect_right(self._starts, page_id) - 1
        if pos >= 0 and self._ends[pos] > page_id:
            return pos
        return None

    def _insert_range(self, pos: int, start: int, end: int, ref: BackupRef,
                      lsn: int, time: float) -> None:
        self._starts.insert(pos, start)
        self._ends.insert(pos, end)
        self._refs.insert(pos, ref)
        self._lsns.insert(pos, lsn)
        self._times.insert(pos, time)

    def _delete_ranges(self, lo: int, hi: int) -> None:
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        del self._refs[lo:hi]
        del self._lsns[lo:hi]
        del self._times[lo:hi]

    # ------------------------------------------------------------------
    # Backup bookkeeping
    # ------------------------------------------------------------------
    def set_backup(self, page_id: int, ref: BackupRef, page_lsn: int,
                   now: float = 0.0) -> BackupRef | None:
        """Record a new backup for one page; returns the *old* backup
        reference so the caller can free it ("used when freeing the old
        backup page when taking a new page backup", Figure 7)."""
        with self._mutex:
            return self._set_backup_locked(page_id, ref, page_lsn, now)

    def _set_backup_locked(self, page_id: int, ref: BackupRef, page_lsn: int,
                           now: float) -> BackupRef | None:
        old_ref: BackupRef | None = None
        pos = self._find_range(page_id)
        if pos is not None:
            start, end = self._starts[pos], self._ends[pos]
            old_ref = self._refs[pos]
            old = (self._refs[pos], self._lsns[pos], self._times[pos])
            self._delete_ranges(pos, pos + 1)
            insert_at = pos
            if start < page_id:
                self._insert_range(insert_at, start, page_id, *old)
                insert_at += 1
            self._insert_range(insert_at, page_id, page_id + 1, ref, page_lsn, now)
            insert_at += 1
            if page_id + 1 < end:
                self._insert_range(insert_at, page_id + 1, end, *old)
        else:
            pos = bisect.bisect_right(self._starts, page_id)
            self._insert_range(pos, page_id, page_id + 1, ref, page_lsn, now)
        # Page is now backed up as of page_lsn; a previously recorded
        # "updated since backup" LSN is superseded unless newer.
        recorded = self._page_lsns.get(page_id)
        if recorded is not None and recorded <= page_lsn:
            del self._page_lsns[page_id]
        return old_ref

    def set_range_backup(self, start: int, end: int, ref: BackupRef,
                         page_lsn: int, now: float = 0.0) -> None:
        """One entry covering ``[start, end)`` — e.g. a full database
        backup.  Replaces everything it overlaps."""
        if start >= end:
            raise ValueError("empty range")
        with self._mutex:
            self._set_range_backup_locked(start, end, ref, page_lsn, now)

    def _set_range_backup_locked(self, start: int, end: int, ref: BackupRef,
                                 page_lsn: int, now: float) -> None:
        # Trim or split existing overlapping ranges.
        lo = bisect.bisect_right(self._starts, start) - 1
        if lo < 0:
            lo = 0
        new: list[tuple[int, int, BackupRef, int, float]] = []
        remove_from, remove_to = None, None
        i = lo
        while i < len(self._starts) and self._starts[i] < end:
            s, e = self._starts[i], self._ends[i]
            if e <= start:
                i += 1
                continue
            if remove_from is None:
                remove_from = i
            remove_to = i + 1
            keep = (self._refs[i], self._lsns[i], self._times[i])
            if s < start:
                new.append((s, start, *keep))
            if e > end:
                new.append((end, e, *keep))
            i += 1
        if remove_from is not None:
            self._delete_ranges(remove_from, remove_to)
        insert_at = bisect.bisect_right(self._starts, start)
        for entry in sorted(new + [(start, end, ref, page_lsn, now)]):
            pos = bisect.bisect_right(self._starts, entry[0])
            self._insert_range(pos, *entry)
        # Backup supersedes recorded per-page LSNs up to page_lsn.
        for pid in [p for p in self._page_lsns if start <= p < end]:
            if self._page_lsns[pid] <= page_lsn:
                del self._page_lsns[pid]

    # ------------------------------------------------------------------
    # Per-page LSN bookkeeping (Figure 11)
    # ------------------------------------------------------------------
    def record_write(self, page_id: int, page_lsn: int) -> None:
        """A cleaned data page was written back with this PageLSN."""
        with self._mutex:
            self._page_lsns[page_id] = page_lsn

    def recorded_lsn(self, page_id: int) -> int | None:
        return self._page_lsns.get(page_id)

    # ------------------------------------------------------------------
    # Lookup (the read path, Figures 8 and 9)
    # ------------------------------------------------------------------
    def lookup(self, page_id: int) -> PriEntry:
        """Entry for ``page_id``; raises if the page is not covered."""
        with self._mutex:
            pos = self._find_range(page_id)
            if pos is None:
                raise RecoveryError(
                    f"page {page_id} has no entry in the page recovery index")
            return PriEntry(self._refs[pos], self._lsns[pos],
                            self._page_lsns.get(page_id), self._times[pos])

    def covers(self, page_id: int) -> bool:
        with self._mutex:
            return self._find_range(page_id) is not None

    def expected_page_lsn(self, page_id: int) -> int | None:
        """The PageLSN a freshly read page must carry.

        This is the cross-check the paper attributes to Gary Smith:
        "comparing the PageLSN of a page newly read into the buffer
        pool with the information in the page recovery index."  Returns
        None when the page is unknown to the index.
        """
        with self._mutex:
            recorded = self._page_lsns.get(page_id)
            if recorded is not None:
                return recorded
            pos = self._find_range(page_id)
            if pos is None:
                return None
            if self._ends[pos] - self._starts[pos] == 1:
                # A point entry's backup LSN is exact for this page.
                return self._lsns[pos]
        # A range entry (e.g. a full database backup) stores one LSN
        # for many pages; it bounds but does not pin any single page's
        # PageLSN, so no exact expectation exists yet.
        return None

    # ------------------------------------------------------------------
    # Size accounting (Figure 7 discussion)
    # ------------------------------------------------------------------
    @property
    def range_count(self) -> int:
        return len(self._starts)

    @property
    def point_lsn_count(self) -> int:
        return len(self._page_lsns)

    def estimated_bytes(self) -> int:
        """Approximate in-memory/persisted footprint."""
        range_bytes = sum(
            RANGE_ENTRY_BYTES if self._ends[i] - self._starts[i] > 1
            else POINT_ENTRY_BYTES
            for i in range(len(self._starts)))
        return range_bytes + POINT_ENTRY_BYTES * len(self._page_lsns)

    # ------------------------------------------------------------------
    # Serialization (checkpoint persistence, Section 5.2.6)
    # ------------------------------------------------------------------
    _RANGE_STRUCT = struct.Struct("<qqBqqd")
    _LSN_STRUCT = struct.Struct("<qq")

    def serialize(self) -> bytes:
        with self._mutex:
            return self._serialize_locked()

    def _serialize_locked(self) -> bytes:
        out = [struct.pack("<II", len(self._starts), len(self._page_lsns))]
        for i in range(len(self._starts)):
            out.append(self._RANGE_STRUCT.pack(
                self._starts[i], self._ends[i], int(self._refs[i].kind),
                self._refs[i].value, self._lsns[i], self._times[i]))
        for page_id, lsn in sorted(self._page_lsns.items()):
            out.append(self._LSN_STRUCT.pack(page_id, lsn))
        return b"".join(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "PageRecoveryIndex":
        pri = cls()
        n_ranges, n_lsns = struct.unpack_from("<II", data, 0)
        pos = 8
        for _ in range(n_ranges):
            start, end, kind, value, lsn, time = cls._RANGE_STRUCT.unpack_from(data, pos)
            pos += cls._RANGE_STRUCT.size
            pri._starts.append(start)
            pri._ends.append(end)
            pri._refs.append(BackupRef(BackupRefKind(kind), value))
            pri._lsns.append(lsn)
            pri._times.append(time)
        for _ in range(n_lsns):
            page_id, lsn = cls._LSN_STRUCT.unpack_from(data, pos)
            pos += cls._LSN_STRUCT.size
            pri._page_lsns[page_id] = lsn
        return pri

    def __len__(self) -> int:
        return len(self._starts)


class PartitionedRecoveryIndex:
    """Two-partition PRI for self-coverage (Section 5.2.2).

    "In order to prevent a data page containing information required
    for its own recovery, the database and the page recovery index
    might each be divided into two pieces such that the one piece of
    the page recovery index is stored in one piece of the database yet
    covers all data pages in the other piece of the database."

    Pages with even ids belong to partition 0, odd ids to partition 1.
    Partition ``p`` of the *index* covers the data pages of partition
    ``1 - p`` and is persisted into pages of partition ``p`` — so no
    page's recovery information lives on the page itself, and losing a
    PRI page costs only entries recoverable via the *other* partition.
    """

    def __init__(self) -> None:
        self.partitions = (PageRecoveryIndex(), PageRecoveryIndex())

    @staticmethod
    def partition_of_data_page(page_id: int) -> int:
        """Which *index* partition covers this data page."""
        return 1 - (page_id % 2)

    def _for_page(self, page_id: int) -> PageRecoveryIndex:
        return self.partitions[self.partition_of_data_page(page_id)]

    # The facade mirrors PageRecoveryIndex, dispatching by page id.
    def set_backup(self, page_id: int, ref: BackupRef, page_lsn: int,
                   now: float = 0.0) -> BackupRef | None:
        return self._for_page(page_id).set_backup(page_id, ref, page_lsn, now)

    def set_range_backup(self, start: int, end: int, ref: BackupRef,
                         page_lsn: int, now: float = 0.0) -> None:
        for partition in self.partitions:
            # Each partition stores only its own pages' entries, but a
            # range applies to both parities; store it in both, scoped.
            partition.set_range_backup(start, end, ref, page_lsn, now)

    def record_write(self, page_id: int, page_lsn: int) -> None:
        self._for_page(page_id).record_write(page_id, page_lsn)

    def lookup(self, page_id: int) -> PriEntry:
        return self._for_page(page_id).lookup(page_id)

    def covers(self, page_id: int) -> bool:
        return self._for_page(page_id).covers(page_id)

    def expected_page_lsn(self, page_id: int) -> int | None:
        return self._for_page(page_id).expected_page_lsn(page_id)

    def recorded_lsn(self, page_id: int) -> int | None:
        return self._for_page(page_id).recorded_lsn(page_id)

    def estimated_bytes(self) -> int:
        return sum(p.estimated_bytes() for p in self.partitions)

    @property
    def range_count(self) -> int:
        return sum(p.range_count for p in self.partitions)

    @property
    def point_lsn_count(self) -> int:
        return sum(p.point_lsn_count for p in self.partitions)
