"""Page checksums.

A CRC32 over the page body (everything except the 4-byte checksum slot
itself) plays the role of the in-page "parity" the paper refers to
(Section 4, citing Mohan's disk read-write optimizations).  CRC32 is
cheap, detects all single- and double-bit errors, and is what several
real engines (e.g. PostgreSQL's optional data checksums) use.
"""

from __future__ import annotations

import zlib

#: Byte offset of the 4-byte checksum field within the page header.
CHECKSUM_OFFSET = 4
CHECKSUM_SIZE = 4


def compute_checksum(buf: bytes | bytearray | memoryview) -> int:
    """CRC32 over the whole page, with the checksum field zeroed.

    The checksum field itself is excluded by treating it as zero, so
    the stored checksum does not feed back into its own computation.
    """
    view = memoryview(bytes(buf))
    before = view[:CHECKSUM_OFFSET]
    after = view[CHECKSUM_OFFSET + CHECKSUM_SIZE:]
    crc = zlib.crc32(before)
    crc = zlib.crc32(b"\x00" * CHECKSUM_SIZE, crc)
    crc = zlib.crc32(after, crc)
    return crc & 0xFFFFFFFF


def read_stored_checksum(buf: bytes | bytearray | memoryview) -> int:
    """The checksum currently stored in the page header."""
    raw = bytes(buf[CHECKSUM_OFFSET:CHECKSUM_OFFSET + CHECKSUM_SIZE])
    return int.from_bytes(raw, "little")


def store_checksum(buf: bytearray) -> int:
    """Compute and store the checksum in place; returns the value."""
    crc = compute_checksum(buf)
    buf[CHECKSUM_OFFSET:CHECKSUM_OFFSET + CHECKSUM_SIZE] = crc.to_bytes(4, "little")
    return crc


def verify_checksum(buf: bytes | bytearray | memoryview) -> bool:
    """True if the stored checksum matches the page contents."""
    return read_stored_checksum(buf) == compute_checksum(buf)
