"""Extension — page backups bound mandatory log retention.

A consequence of the paper's design that it does not spell out: since
single-page recovery never walks a per-page chain below the page's most
recent backup, the page recovery index *knows* exactly how much log
head may be reclaimed — the minimum backup LSN over pages updated since
their backup (plus in-log backup records and active transactions).
Fresher page backups therefore translate directly into shorter
mandatory log retention, on top of faster recovery (Section 6).

The sweep runs the same update workload under different backup
policies and measures the reclaimable fraction of the log.
"""

from __future__ import annotations

from benchmarks.common import key_of, print_table, value_of
from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import NULL_PROFILE


def run_policy(every_n: int | None, copy_forward: bool):
    policy = (BackupPolicy(every_n_updates=every_n)
              if every_n else BackupPolicy.disabled())
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=2048, buffer_capacity=64,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE, backup_policy=policy))
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    for wave in range(1, 6):
        txn = db.begin()
        for i in range(300):
            tree.update(txn, key_of(i), value_of(i, wave))
        db.commit(txn)
        db.flush_everything()
    db.checkpoint()
    total = db.log.retained_bytes()
    freed = db.truncate_log(copy_forward=copy_forward)
    label = f"every {every_n} updates" if every_n else "no page backups"
    if copy_forward:
        label += " + copy-forward"
    return {
        "policy": label,
        "log_bytes": total,
        "freed": freed,
        "freed_pct": 100.0 * freed / total if total else 0.0,
        "copies": db.stats.get("page_copies_taken"),
    }


def test_ext_log_retention(benchmark):
    def sweep():
        return [run_policy(None, False),
                run_policy(64, False),
                run_policy(16, False),
                run_policy(16, True)]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # No page backups: format records pin the whole log.
    assert results[0]["freed"] == 0
    # The straggler effect: update-count policies alone leave *cold*
    # pages (here: the rarely-updated metadata page) on their format
    # records, and one cold page pins the entire log head.
    assert results[1]["freed"] == 0
    assert results[2]["freed"] == 0
    # Copy-forward of those few stragglers unlocks nearly everything.
    assert results[-1]["freed_pct"] > 50.0
    freed = [r["freed"] for r in results]
    assert freed == sorted(freed)

    print_table(
        "Extension: reclaimable log head by backup policy "
        "(same 1,500-update workload)",
        ["policy", "log bytes", "bytes reclaimed", "% reclaimed",
         "page copies taken"],
        [[r["policy"], r["log_bytes"], r["freed"], r["freed_pct"],
          r["copies"]] for r in results])


def test_ext_bench_retention_bound(benchmark):
    """Wall cost of computing the retention bound from the PRI."""
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=2048, buffer_capacity=64,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE,
        backup_policy=BackupPolicy(every_n_updates=16)))
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.checkpoint()

    bound = benchmark(db.log_retention_bound)
    assert bound > 0
