#!/usr/bin/env python3
"""The paper's opening anecdote, replayed both ways.

From the introduction: "a disk started returning corrupted data for
some sectors without actually failing the reads, so the controller
didn't know anything was wrong and happily reported the raid5 array OK.
It has therefore been doing parity updates based on misread info so by
now pulling the disk won't help a bit since it'll just recreate the
info that was misread."

Act 1 reproduces that disaster on a simulated RAID-5 array.
Act 2 runs the same silent fault against the paper's engine: detected
at its first read, repaired from the per-page log chain, quarantined.

Run:  python examples/silent_corruption_anecdote.py
"""

from repro import Database, EngineConfig
from repro.sim.clock import SimClock
from repro.sim.iomodel import HDD_PROFILE
from repro.sim.stats import Stats
from repro.storage.device import StorageDevice
from repro.storage.raid import Raid5Array


def act_one_raid5() -> None:
    print("== Act 1: the anecdote on RAID-5 ==")
    clock, stats = SimClock(), Stats()
    members = [StorageDevice(f"disk{i}", 4096, 128, clock, HDD_PROFILE, stats)
               for i in range(4)]
    array = Raid5Array(members)

    ledger = b"ACCOUNT 42: credit 1,000,000 ".ljust(4096, b".")
    neighbor = b"ACCOUNT 43: credit 555 ".ljust(4096, b".")
    array.write(0, ledger)
    array.write(1, neighbor)
    print(f"  stripe parity consistent: {array.scrub_stripe(0)}")

    # One disk silently starts corrupting the ledger's sector.
    _stripe, dev, row = array._locate(0)
    members[dev].inject_bit_rot(row, nbits=6)
    served = bytes(array.read(0))
    print(f"  read of account 42 'succeeded'; bytes correct: "
          f"{served == ledger}   <- the controller noticed nothing")

    # Routine small writes do read-modify-write parity updates over the
    # misread data.
    array.write(0, b"ACCOUNT 42: credit 0 (corrupted update) ".ljust(4096, b"."))
    print(f"  after a parity update based on misread info, "
          f"scrub says consistent: {array.scrub_stripe(0)}")

    rebuilt = array.reconstruct(1)
    print(f"  'pulling the disk' and reconstructing the *healthy* "
          f"account 43: correct: {rebuilt == neighbor}")
    print("  -> the redundancy itself has been poisoned; backups made "
          "from this array are suspect too.\n")


def act_two_spf_engine() -> None:
    print("== Act 2: the same fault under the single-page-failure engine ==")
    db = Database(EngineConfig(page_size=4096, capacity_pages=1024,
                               buffer_capacity=64))
    tree = db.create_index()
    txn = db.begin()
    tree.insert(txn, b"account:42", b"credit=1000000")
    tree.insert(txn, b"account:43", b"credit=555")
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()

    victim = db.get_root(tree.index_id)
    db.device.inject_bit_rot(victim, nbits=6)

    value = tree.lookup(b"account:42")
    print(f"  first read after the fault: detected="
          f"{db.stats.get('page_failures_detected') == 1}, "
          f"repaired={db.stats.get('single_page_recoveries') == 1}")
    print(f"  account 42 reads back: {value!r}")
    print(f"  failed sector quarantined: {db.device.bad_blocks.reasons()}")
    print(f"  transactions aborted: {db.stats.get('txns_aborted')}")
    print("  -> caught at first occurrence, repaired from the per-page "
          "log chain, nothing escalated.")


def main() -> None:
    act_one_raid5()
    act_two_spf_engine()


if __name__ == "__main__":
    main()
