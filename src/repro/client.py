"""The public client facade: one API over every deployment shape.

``repro.connect(config)`` is the front door of the package.  It takes
a configuration object and returns a :class:`Client` — the same
transactional key-value interface whether the backend is one embedded
engine (:class:`SingleNodeClient` over an :class:`repro.engine.config.
EngineConfig`) or a hash-partitioned fleet of engine processes behind
a two-phase-commit router (:class:`ShardedClient` over a
:class:`repro.shard.config.ShardConfig`)::

    import repro

    client = repro.connect(repro.ShardConfig(n_shards=4,
                                             transport="process"))
    with client.txn() as t:
        t.put(b"alpha", b"1")
        t.put(b"omega", b"2")        # maybe another shard: 2PC, unseen
    value = client.get(b"alpha")     # autocommit read
    client.close()

The context manager commits on clean exit and aborts on exception.
Misuse is typed: operations after :meth:`Client.close` raise
:class:`repro.errors.ClientClosedError`; invalid or incompatible
configurations raise :class:`repro.errors.ConfigError` at
:func:`connect` time, not at first use.

Migration note: code that built a ``Database(...)`` and drove trees
directly keeps working — the facade is a layer, not a replacement —
and ``connect(existing_database)`` wraps a live engine so call sites
can move one at a time.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import ClientClosedError, ConfigError, KeyNotFound
from repro.shard.config import ShardConfig
from repro.shard.router import ShardRouter


def connect(config=None):  # noqa: ANN001, ANN201
    """Build a :class:`Client` for ``config``.

    * ``None`` — a single embedded engine with default configuration;
    * :class:`EngineConfig` — a single embedded engine;
    * :class:`ShardConfig` — a sharded deployment behind a router;
    * a live :class:`Database` — wrap an existing engine (the caller
      keeps ownership; :meth:`Client.close` will not tear it down).

    Configurations are validated here, so an impossible deployment
    fails at connect time with a :class:`ConfigError`.
    """
    if config is None:
        config = EngineConfig()
    if isinstance(config, Database):
        return SingleNodeClient(db=config, owns_db=False)
    if isinstance(config, EngineConfig):
        config.validate()
        if config.commit_ack_mode == "replicated_durable":
            raise ConfigError(
                "connect() builds a standalone engine with no standby "
                "attachment path; commit_ack_mode='replicated_durable' "
                "needs Database.attach_standby() — construct the engine "
                "directly and wrap it with connect(database)")
        return SingleNodeClient(db=Database(config), owns_db=True)
    if isinstance(config, ShardConfig):
        return ShardedClient(ShardRouter(config.validate()))
    raise ConfigError(
        f"connect() takes an EngineConfig, a ShardConfig, a Database, "
        f"or None; got {type(config).__name__}")


class Client:
    """The uniform transactional key-value interface.

    Subclasses provide ``_txn_handle()`` plus the autocommit
    primitives; everything user-facing — the context manager, the
    closed-state checks — lives here so both backends behave
    identically down to the error types.
    """

    def __init__(self) -> None:
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ClientClosedError(
                f"{type(self).__name__} is closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._close_backend()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:  # noqa: ANN002
        self.close()

    # -- transactions --------------------------------------------------
    @contextmanager
    def txn(self):  # noqa: ANN201
        """One transaction: commits on clean exit, aborts on exception
        (the exception propagates; :class:`repro.errors.
        TransactionAborted` from the commit itself propagates too)."""
        self._require_open()
        handle = self._txn_handle()
        try:
            yield handle
        except BaseException:
            handle.abort()
            raise
        try:
            handle.commit()
        except BaseException:
            # A failed commit may leave a branch holding locks (e.g.
            # stranded behind a partition); abort is idempotent on
            # both backends, so this is a no-op when commit already
            # cleaned up after itself.
            handle.abort()
            raise

    # -- to implement --------------------------------------------------
    def _txn_handle(self):  # noqa: ANN202
        raise NotImplementedError

    def _close_backend(self) -> None:
        raise NotImplementedError

    def get(self, key: bytes) -> bytes | None:
        raise NotImplementedError

    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> bool:
        raise NotImplementedError

    def scan(self, low: bytes = b"",
             high: bytes | None = None) -> list[tuple[bytes, bytes]]:
        raise NotImplementedError

    def apply_batch(self, ops: list[tuple]) -> int:
        """Bulk-apply ``[("put", k, v) | ("delete", k), ...]``
        transactionally per backend unit (the benchmark path)."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Single node
# ----------------------------------------------------------------------
class SingleNodeClient(Client):
    """The facade over one embedded engine and one default index."""

    def __init__(self, db: Database, owns_db: bool = True) -> None:
        super().__init__()
        self.db = db
        self.owns_db = owns_db
        if db.indexes:
            self.index_id = db.indexes[0]
        else:
            self.index_id = db.create_index().index_id

    @property
    def _tree(self):  # noqa: ANN202
        return self.db.tree(self.index_id)

    def _txn_handle(self) -> "_SingleNodeTxn":
        return _SingleNodeTxn(self.db, self.index_id)

    def _close_backend(self) -> None:
        # The embedded engine has no external resources to release;
        # a wrapped caller-owned engine stays fully usable.
        pass

    def get(self, key: bytes) -> bytes | None:
        self._require_open()
        self.db._require_running()
        try:
            return self._tree.lookup(key)
        except KeyNotFound:
            return None

    def put(self, key: bytes, value: bytes) -> None:
        self._require_open()
        with self.txn() as t:
            t.put(key, value)

    def delete(self, key: bytes) -> bool:
        self._require_open()
        with self.txn() as t:
            return t.delete(key)

    def scan(self, low: bytes = b"",
             high: bytes | None = None) -> list[tuple[bytes, bytes]]:
        self._require_open()
        self.db._require_running()
        return list(self._tree.range_scan(low, high))

    def apply_batch(self, ops: list[tuple]) -> int:
        self._require_open()
        with self.txn() as t:
            for op in ops:
                if op[0] == "put":
                    t.put(op[1], op[2])
                elif op[0] == "delete":
                    t.delete(op[1])
                else:
                    raise ConfigError(f"unknown batch op {op[0]!r}")
        return len(ops)


class _SingleNodeTxn:
    """Transaction handle over one engine: upserts decided against
    live tree state under the key lock, exactly like the shard
    worker's branch operations — the differential suite depends on the
    two interpreting intents identically."""

    def __init__(self, db: Database, index_id: int) -> None:
        self.db = db
        self.index_id = index_id
        self.txn = db.begin()
        self._done = False

    @property
    def _tree(self):  # noqa: ANN202
        return self.db.tree(self.index_id)

    def get(self, key: bytes) -> bytes | None:
        try:
            return self._tree.lookup(key)
        except KeyNotFound:
            return None

    def put(self, key: bytes, value: bytes) -> None:
        self.db.locks.acquire(self.txn.txn_id, key)
        tree = self._tree
        try:
            tree.lookup(key)
        except KeyNotFound:
            tree.insert(self.txn, key, value)
        else:
            tree.update(self.txn, key, value)

    def delete(self, key: bytes) -> bool:
        self.db.locks.acquire(self.txn.txn_id, key)
        tree = self._tree
        try:
            tree.lookup(key)
        except KeyNotFound:
            return False
        tree.delete(self.txn, key)
        return True

    def commit(self) -> None:
        if self._done:
            return
        self._done = True
        self.db.commit(self.txn)

    def abort(self) -> None:
        if self._done:
            return
        self._done = True
        try:
            self.db.abort(self.txn)
        except Exception:
            # The engine failed under us mid-transaction (e.g. an
            # injected crash): analysis will undo the branch; the
            # original error is already propagating.
            pass


# ----------------------------------------------------------------------
# Sharded
# ----------------------------------------------------------------------
class ShardedClient(Client):
    """The facade over a :class:`ShardRouter`.

    All single-key autocommit calls route straight through; the
    transaction handle is the router's (single-shard passthrough,
    cross-shard 2PC).  ``apply_batch`` splits by shard and — on the
    process transport — dispatches the per-shard batches from
    concurrent threads, so N engine processes execute on N cores.
    """

    def __init__(self, router: ShardRouter) -> None:
        super().__init__()
        self.router = router

    def _txn_handle(self):  # noqa: ANN202 - RouterTxn
        return self.router.txn()

    def _close_backend(self) -> None:
        self.router.close()

    def rebalance_slot(self, slot: int, dst: int) -> int:
        """Move one hash slot to shard ``dst`` online (the fleet keeps
        serving); returns the new routing epoch."""
        self._require_open()
        return self.router.move_slot(slot, dst)

    def slot_assignments(self) -> tuple[int, ...]:
        """The current slot -> shard map (index = slot)."""
        self._require_open()
        return self.router.routing.assignments()

    def get(self, key: bytes) -> bytes | None:
        self._require_open()
        return self.router.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._require_open()
        self.router.put(key, value)

    def delete(self, key: bytes) -> bool:
        self._require_open()
        return self.router.delete(key)

    def scan(self, low: bytes = b"",
             high: bytes | None = None) -> list[tuple[bytes, bytes]]:
        self._require_open()
        return self.router.scan(low, high)

    def apply_batch(self, ops: list[tuple]) -> int:
        self._require_open()
        batches = self.router.partition_batches(ops)
        if self.router.config.transport != "process" or len(batches) <= 1:
            for idx in sorted(batches):
                self.router.apply_batch(idx, batches[idx])
            return len(ops)
        # Process transport: per-shard batches run in real parallel —
        # each thread blocks on its own worker's socket while that
        # worker's engine burns its own core.
        errors: list[BaseException] = []

        def run(idx: int) -> None:
            try:
                self.router.apply_batch(idx, batches[idx])
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(idx,), daemon=True)
                   for idx in sorted(batches)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return len(ops)
