"""Slotted page layout with an indirection vector and ghost records.

Layout within the page body (after the 32-byte page header)::

    +------------------+---------------------------+--------------+
    | slotted header   | record heap (grows right) | free | slots |
    +------------------+---------------------------+--------------+

    slotted header (8 bytes):
        slot_count   u16   number of slots (including ghosts)
        heap_end     u16   offset (page-relative) of first free heap byte
        frag_bytes   u16   reclaimable bytes from deleted records
        reserved     u16

    slot entry (4 bytes, stored from the end of the page backwards):
        offset       u16   page-relative offset of the record, 0 = dead
        length_flags u16   low 15 bits record length, high bit = ghost

    record:
        key_len      u16
        key          bytes
        value        bytes (length = record length - 2 - key_len)

Ghost records (pseudo-deleted records, Section 5.1.5) keep their slot
and bytes but are invisible to logical reads; ghost removal is a
contents-neutral structural change performed by a system transaction.

The indirection vector is exactly the structure the paper's in-page
plausibility analysis inspects ("analysis of all byte offsets and
lengths in the page header and in the indirection vector").
:meth:`SlottedPage.check_plausible` implements that analysis.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import PageFailureKind, ReproError, SinglePageFailure
from repro.page.page import HEADER_SIZE, Page

_SLOTTED_HEADER = struct.Struct("<HHHH")
SLOTTED_HEADER_SIZE = _SLOTTED_HEADER.size
SLOT_SIZE = 4
_GHOST_BIT = 0x8000
_LENGTH_MASK = 0x7FFF

# Precompiled field structs: these accessors run tens of times per
# engine operation; skipping struct's format-string lookup is free
# speed.
_U16 = struct.Struct("<H")
_SLOT = struct.Struct("<HH")

#: Slots parsed into ``page.btree_cache`` (see repro.btree.node): the
#: low-fence/high-fence/foster bookkeeping records.  Record mutations at
#: higher slots cannot change the parsed metadata — the directory shift
#: never moves slots below the mutation index — so they keep the cache.
_BTREE_META_SLOTS = 3


class PageFullError(ReproError):
    """Not enough contiguous or reclaimable space for an insertion."""


@dataclass(frozen=True, slots=True)
class Record:
    """A logical record: key, value, and ghost flag."""

    key: bytes
    value: bytes
    ghost: bool = False

    @property
    def stored_length(self) -> int:
        return 2 + len(self.key) + len(self.value)


class SlottedPage:
    """Record-level view over a :class:`Page`.

    The class never allocates; it reads and writes the page buffer in
    place so that the byte image is always the single source of truth
    (a requirement for checksums, logging full-page images, and fault
    injection on the raw bytes).
    """

    __slots__ = ("page",)

    def __init__(self, page: Page) -> None:
        self.page = page

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Format the body as an empty slotted area."""
        heap_start = HEADER_SIZE + SLOTTED_HEADER_SIZE
        _SLOTTED_HEADER.pack_into(self.page.data, HEADER_SIZE, 0, heap_start, 0, 0)
        self.page.btree_cache = None

    # ------------------------------------------------------------------
    # Header fields
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return _U16.unpack_from(self.page.data, HEADER_SIZE)[0]

    def _set_slot_count(self, n: int) -> None:
        _U16.pack_into(self.page.data, HEADER_SIZE, n)

    @property
    def heap_end(self) -> int:
        return _U16.unpack_from(self.page.data, HEADER_SIZE + 2)[0]

    def _set_heap_end(self, off: int) -> None:
        _U16.pack_into(self.page.data, HEADER_SIZE + 2, off)

    @property
    def frag_bytes(self) -> int:
        return _U16.unpack_from(self.page.data, HEADER_SIZE + 4)[0]

    def _set_frag_bytes(self, n: int) -> None:
        _U16.pack_into(self.page.data, HEADER_SIZE + 4, n)

    # ------------------------------------------------------------------
    # Slot directory
    # ------------------------------------------------------------------
    def _slot_pos(self, index: int) -> int:
        """Byte position of slot ``index`` (slots grow from page end)."""
        return self.page.size - (index + 1) * SLOT_SIZE

    def _read_slot(self, index: int) -> tuple[int, int, bool]:
        pos = self.page.size - (index + 1) * SLOT_SIZE
        offset, length_flags = _SLOT.unpack_from(self.page.data, pos)
        return offset, length_flags & _LENGTH_MASK, bool(length_flags & _GHOST_BIT)

    def _write_slot(self, index: int, offset: int, length: int, ghost: bool) -> None:
        if length > _LENGTH_MASK:
            raise ValueError(f"record length {length} exceeds slot encoding")
        length_flags = length | (_GHOST_BIT if ghost else 0)
        _SLOT.pack_into(self.page.data, self._slot_pos(index),
                        offset, length_flags)

    @property
    def slots_start(self) -> int:
        """Lowest byte position used by the slot directory."""
        return self.page.size - self.slot_count * SLOT_SIZE

    @property
    def free_space(self) -> int:
        """Contiguous free bytes between the heap and the slot directory."""
        return self.slots_start - self.heap_end

    def room_for(self, record: Record) -> bool:
        """Can ``record`` be inserted, possibly after compaction?"""
        needed = record.stored_length + SLOT_SIZE
        return self.free_space + self.frag_bytes >= needed

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def read_record(self, index: int) -> Record:
        """The record in slot ``index`` (ghosts included)."""
        if not 0 <= index < self.slot_count:
            raise IndexError(f"slot {index} out of range")
        data = self.page.data
        offset, length_flags = _SLOT.unpack_from(
            data, self.page.size - (index + 1) * SLOT_SIZE)
        length = length_flags & _LENGTH_MASK
        key_end = offset + 2 + _U16.unpack_from(data, offset)[0]
        return Record(bytes(data[offset + 2:key_end]),
                      bytes(data[key_end:offset + length]),
                      bool(length_flags & _GHOST_BIT))

    def record_key(self, index: int) -> bytes:
        """The key in slot ``index`` without materializing the value."""
        data = self.page.data
        offset = _SLOT.unpack_from(
            data, self.page.size - (index + 1) * SLOT_SIZE)[0]
        key_len = _U16.unpack_from(data, offset)[0]
        return bytes(data[offset + 2:offset + 2 + key_len])

    def key_bisect_left(self, target: bytes, start: int) -> int:
        """First slot in ``[start, slot_count)`` whose key >= ``target``.

        The innermost loop of every B-tree descent: raw buffer reads
        only, no slot tuples or Record objects per probe.
        """
        data = self.page.data
        size = self.page.size
        lo = start
        hi = _U16.unpack_from(data, HEADER_SIZE)[0]
        while lo < hi:
            mid = (lo + hi) >> 1
            offset = _U16.unpack_from(data, size - (mid + 1) * SLOT_SIZE)[0]
            key_len = _U16.unpack_from(data, offset)[0]
            if data[offset + 2:offset + 2 + key_len] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def is_ghost(self, index: int) -> bool:
        _offset, _length, ghost = self._read_slot(index)
        return ghost

    def records(self, include_ghosts: bool = False) -> list[Record]:
        """All records in slot order."""
        out = []
        for i in range(self.slot_count):
            rec = self.read_record(i)
            if rec.ghost and not include_ghosts:
                continue
            out.append(rec)
        return out

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, index: int, record: Record) -> None:
        """Insert ``record`` at slot position ``index``, shifting slots up."""
        if not 0 <= index <= self.slot_count:
            raise IndexError(f"insert position {index} out of range")
        if index < _BTREE_META_SLOTS:
            self.page.btree_cache = None
        needed = record.stored_length + SLOT_SIZE
        if self.free_space < needed:
            if self.free_space + self.frag_bytes >= needed:
                self.compact()
            if self.free_space < needed:
                raise PageFullError(
                    f"need {needed} bytes, have {self.free_space} "
                    f"(+{self.frag_bytes} fragmented)")
        offset = self._append_to_heap(record)
        # Shift slot entries [index, slot_count) one position outward —
        # they are contiguous, so this is a single 4-byte-down block
        # move (bytearray slice assignment copies the source first, so
        # the overlap is safe).
        count = self.slot_count
        if count > index:
            data = self.page.data
            start = self.page.size - count * SLOT_SIZE
            end = self.page.size - index * SLOT_SIZE
            data[start - SLOT_SIZE:end - SLOT_SIZE] = data[start:end]
        self._set_slot_count(count + 1)
        self._write_slot(index, offset, record.stored_length, record.ghost)

    def _append_to_heap(self, record: Record) -> int:
        offset = self.heap_end
        data = self.page.data
        struct.pack_into("<H", data, offset, len(record.key))
        body_start = offset + 2
        data[body_start:body_start + len(record.key)] = record.key
        value_start = body_start + len(record.key)
        data[value_start:value_start + len(record.value)] = record.value
        self._set_heap_end(offset + record.stored_length)
        return offset

    def update_value(self, index: int, value: bytes) -> None:
        """Replace the value of the record in slot ``index``."""
        if index < _BTREE_META_SLOTS:
            self.page.btree_cache = None
        old = self.read_record(index)
        new = Record(old.key, value, old.ghost)
        offset, length, _ghost = self._read_slot(index)
        if new.stored_length <= length:
            # Overwrite in place; excess bytes become fragmentation.
            data = self.page.data
            value_start = offset + 2 + len(old.key)
            data[value_start:value_start + len(value)] = value
            self._write_slot(index, offset, new.stored_length, old.ghost)
            self._set_frag_bytes(self.frag_bytes + (length - new.stored_length))
            return
        # Relocate within the heap.
        needed = new.stored_length
        if self.free_space + self.frag_bytes + length < needed:
            raise PageFullError(f"cannot grow record to {needed} bytes")
        if self.free_space < needed:
            # Retire the old bytes so compaction can reclaim them.
            self._set_frag_bytes(self.frag_bytes + length)
            self._write_slot(index, 0, 0, old.ghost)
            self.compact()
        else:
            self._set_frag_bytes(self.frag_bytes + length)
            self._write_slot(index, 0, 0, old.ghost)
        new_offset = self._append_to_heap(new)
        self._write_slot(index, new_offset, new.stored_length, old.ghost)

    def mark_ghost(self, index: int, ghost: bool = True) -> None:
        """Toggle the ghost (pseudo-deleted) bit of slot ``index``."""
        if index < _BTREE_META_SLOTS:
            self.page.btree_cache = None
        offset, length, _old = self._read_slot(index)
        self._write_slot(index, offset, length, ghost)

    def remove(self, index: int) -> None:
        """Physically remove slot ``index`` (ghost removal / compaction)."""
        if not 0 <= index < self.slot_count:
            raise IndexError(f"slot {index} out of range")
        if index < _BTREE_META_SLOTS:
            self.page.btree_cache = None
        _offset, length, _ghost = self._read_slot(index)
        self._set_frag_bytes(self.frag_bytes + length)
        # Shift slot entries [index + 1, slot_count) one position in —
        # a single 4-byte-up block move of the contiguous directory.
        count = self.slot_count
        if index < count - 1:
            data = self.page.data
            start = self.page.size - count * SLOT_SIZE
            end = self.page.size - (index + 1) * SLOT_SIZE
            data[start + SLOT_SIZE:end + SLOT_SIZE] = data[start:end]
        self._set_slot_count(count - 1)

    def insert_run(self, index: int, records: list[Record]) -> None:
        """Insert ``records`` at consecutive slots starting at ``index``.

        One directory shift covers the whole run, so structural moves
        (splits, prefix re-encoding) cost one block move instead of one
        per record.
        """
        n = len(records)
        if n == 0:
            return
        if n == 1:
            self.insert(index, records[0])
            return
        count = self.slot_count
        if not 0 <= index <= count:
            raise IndexError(f"insert position {index} out of range")
        if index < _BTREE_META_SLOTS:
            self.page.btree_cache = None
        needed = sum(r.stored_length for r in records) + SLOT_SIZE * n
        if self.free_space < needed:
            if self.free_space + self.frag_bytes >= needed:
                self.compact()
            if self.free_space < needed:
                raise PageFullError(
                    f"need {needed} bytes, have {self.free_space} "
                    f"(+{self.frag_bytes} fragmented)")
        if count > index:
            data = self.page.data
            size = self.page.size
            start = size - count * SLOT_SIZE
            end = size - index * SLOT_SIZE
            shift = n * SLOT_SIZE
            data[start - shift:end - shift] = data[start:end]
        self._set_slot_count(count + n)
        for i, record in enumerate(records):
            offset = self._append_to_heap(record)
            self._write_slot(index + i, offset, record.stored_length,
                             record.ghost)

    def remove_run(self, index: int, n: int) -> None:
        """Remove ``n`` consecutive slots starting at ``index``."""
        if n == 0:
            return
        count = self.slot_count
        if n < 0 or not 0 <= index <= count - n:
            raise IndexError(
                f"slot run [{index}, {index + n}) out of range")
        if index < _BTREE_META_SLOTS:
            self.page.btree_cache = None
        freed = 0
        for i in range(index, index + n):
            _offset, length, _ghost = self._read_slot(i)
            freed += length
        self._set_frag_bytes(self.frag_bytes + freed)
        if index + n < count:
            data = self.page.data
            size = self.page.size
            start = size - count * SLOT_SIZE
            end = size - (index + n) * SLOT_SIZE
            shift = n * SLOT_SIZE
            data[start + shift:end + shift] = data[start:end]
        self._set_slot_count(count - n)

    def compact(self) -> None:
        """Rewrite the heap to reclaim fragmented free space.

        This is a contents-neutral structural change — in the engine it
        runs under a system transaction (Section 5.1.5: "compacting a
        page (to reclaim fragmented free space)").
        """
        self.page.btree_cache = None
        live: list[tuple[int, Record]] = []
        dead: list[int] = []
        for i in range(self.slot_count):
            offset, length, ghost = self._read_slot(i)
            if offset == 0 and length == 0:
                dead.append(i)  # slot temporarily retired by update_value
            else:
                live.append((i, self.read_record(i)))
        heap_start = HEADER_SIZE + SLOTTED_HEADER_SIZE
        self._set_heap_end(heap_start)
        self._set_frag_bytes(0)
        for index, record in live:
            offset = self._append_to_heap(record)
            self._write_slot(index, offset, record.stored_length, record.ghost)

    # ------------------------------------------------------------------
    # Plausibility analysis (failure detection, Section 4.2)
    # ------------------------------------------------------------------
    def check_plausible(self) -> None:
        """Analyze all byte offsets and lengths; raise on implausibility."""
        pid = self.page.page_id
        heap_start = HEADER_SIZE + SLOTTED_HEADER_SIZE
        heap_end = self.heap_end
        count = self.slot_count
        if heap_end < heap_start or heap_end > self.page.size:
            raise SinglePageFailure(pid, PageFailureKind.HEADER_IMPLAUSIBLE,
                                    f"heap_end {heap_end} out of range")
        if count * SLOT_SIZE > self.page.size - heap_start:
            raise SinglePageFailure(pid, PageFailureKind.HEADER_IMPLAUSIBLE,
                                    f"slot count {count} impossible")
        if heap_end > self.slots_start:
            raise SinglePageFailure(pid, PageFailureKind.HEADER_IMPLAUSIBLE,
                                    "heap overlaps slot directory")
        for i in range(count):
            offset, length, _ghost = self._read_slot(i)
            if offset < heap_start or offset + length > heap_end:
                raise SinglePageFailure(
                    pid, PageFailureKind.HEADER_IMPLAUSIBLE,
                    f"slot {i} points outside heap ({offset}, len {length})")
            if length < 2:
                raise SinglePageFailure(pid, PageFailureKind.HEADER_IMPLAUSIBLE,
                                        f"slot {i} record too short")
            key_len = struct.unpack_from("<H", self.page.data, offset)[0]
            if 2 + key_len > length:
                raise SinglePageFailure(
                    pid, PageFailureKind.HEADER_IMPLAUSIBLE,
                    f"slot {i} key length {key_len} exceeds record")

    def __len__(self) -> int:
        return self.slot_count
