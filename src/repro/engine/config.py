"""Engine configuration.

The configuration axes correspond to the comparisons the paper draws:

* ``spf_enabled`` — whether single-page failures are a supported
  failure class (off = the traditional baseline of Figure 1, where any
  page failure becomes a media failure);
* ``log_completed_writes`` — the Figure-4 restart-redo optimization on
  its own; with ``spf_enabled`` the page-recovery-index update records
  subsume it (Section 5.2.4), so it is forced on;
* ``single_device_node`` — Figure 1's rightmost escalation: on a node
  whose only storage device failed, a media failure is a system
  failure;
* ``backup_policy`` — the Section-6 freshness policy bounding the
  per-page chain length and hence recovery time;
* ``backup_profile`` — direct-access vs archive backup media
  (Section 5.2.1's "less than ideal" remark, quantified).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.backup import BackupPolicy
from repro.errors import ConfigError
from repro.sim.iomodel import HDD_PROFILE, IOProfile
from repro.wal.segments import DEFAULT_SEGMENT_BYTES


@dataclass(kw_only=True)
class EngineConfig:
    """Everything needed to build a :class:`repro.engine.Database`.

    Keyword-only: every field is named at the call site, so adding or
    reordering axes can never silently reinterpret a positional
    argument.  Construction runs :meth:`validate`, which raises a typed
    :class:`repro.errors.ConfigError` on incompatible combinations.
    """

    page_size: int = 4096
    capacity_pages: int = 1024
    buffer_capacity: int = 128

    device_profile: IOProfile = HDD_PROFILE
    log_profile: IOProfile = HDD_PROFILE
    backup_profile: IOProfile = HDD_PROFILE

    #: support single-page failures as a failure class
    spf_enabled: bool = True
    #: log completed writes / PRI updates (Figure 4 optimization)
    log_completed_writes: bool = True
    #: a media failure on this node is a system failure (Figure 1)
    single_device_node: bool = False
    #: partition the PRI for self-coverage (Section 5.2.2)
    pri_partitioned: bool = True
    #: proof-read pages after writing them (Section 2)
    proof_read_writes: bool = False
    #: cross-check the PageLSN of newly read pages against the PRI
    #: (the "Gary Smith" check); disabled only for the detection
    #: ablation — without it, lost writes go unnoticed
    pri_lsn_check: bool = True

    #: restart strategy after a system failure:
    #: ``"eager"`` runs the classic three-pass ARIES restart to
    #: completion before the database opens; ``"on_demand"`` runs log
    #: analysis only, registers the surviving dirty-page table and the
    #: loser-transaction set with a :class:`repro.engine.
    #: restart_registry.RestartRegistry`, and opens immediately — each
    #: pending page is rolled forward from its per-page chain on first
    #: fix (like an incipient single-page failure) and losers are
    #: undone on lock conflict or by a background drain
    restart_mode: str = "eager"

    #: restore strategy after a media failure:
    #: ``"eager"`` restores the whole replacement device from the
    #: backup and replays the log tail before the database reopens
    #: (the classic Section-5.1.3 procedure); ``"on_demand"`` registers
    #: the failed device's pages with a :class:`repro.engine.
    #: restore_registry.RestoreRegistry` and reopens immediately — each
    #: page is restored on first fix from its backup image plus its
    #: per-page chain, cold pages are restored by a budgeted background
    #: drain, and a completion watermark gates checkpointing, log
    #: truncation, and backup retirement
    restore_mode: str = "eager"

    #: encoded-byte budget of one in-memory log segment (the unit of
    #: indexed log lookup and truncation)
    log_segment_bytes: int = DEFAULT_SEGMENT_BYTES
    #: cross-thread group commit: *real* seconds a committing group
    #: leader waits for riders to enqueue before forcing.  Only used
    #: once :meth:`repro.engine.database.Database.session` arms the
    #: barrier — the single-threaded engine and the chaos harness
    #: never pay (or observe) this window.
    commit_window_seconds: float = 0.002
    #: group commit: commit-triggered forces harden the whole buffered
    #: tail, and :meth:`TransactionManager.group_commit` batches may
    #: share one force across many commits.  Disabled, every user
    #: commit forces its own prefix (the ablation baseline).
    group_commit: bool = True

    #: commit acknowledgement mode (PR 7):
    #: ``"local_durable"`` — a commit returns once its record is forced
    #: to the local log (the classic contract); ``"replicated_durable"``
    #: — the commit additionally blocks on the log shipper's ship-ack,
    #: riding the group-commit window (the leader's force ships the
    #: whole tail in one batch), so an acknowledged commit survives
    #: primary loss.  Requires an attached standby
    #: (:meth:`repro.engine.database.Database.attach_standby`);
    #: without one — or with the shipping link severed — the commit
    #: completes locally and raises
    #: :class:`repro.errors.ReplicationLagError`.
    commit_ack_mode: str = "local_durable"

    #: predictive prefetching (GrASP-style, PR 9):
    #: ``"off"`` — no speculation, byte-identical to the classic
    #: engine; ``"sequential"`` — read-ahead on detected ±1 page-id
    #: runs only; ``"semantic"`` — sequential runs plus B-tree foster
    #: links discovered through fence keys and per-client recent-window
    #: correlation, and the same learned ranking reorders *budgeted*
    #: recovery drains toward the predicted working set.  Speculative
    #: I/O only happens at explicit service points
    #: (:meth:`repro.engine.database.Database.prefetch_tick` and
    #: budgeted drains), never behind a demand fix.
    prefetch_mode: str = "off"
    #: pages predicted ahead per trigger (run length / correlation fan-out)
    prefetch_depth: int = 4
    #: recent-access window per client stream used for correlation
    prefetch_window: int = 8

    backup_policy: BackupPolicy = field(
        default_factory=lambda: BackupPolicy(every_n_updates=100))

    #: pages reserved for persisting the PRI (per partition)
    pri_region_pages_per_partition: int = 8

    #: fault-injection seed (all experiments are deterministic)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.spf_enabled:
            # PRI maintenance subsumes logging completed writes.
            self.log_completed_writes = True
        self.validate()

    def validate(self) -> "EngineConfig":
        """Check the combination of axes; raises :class:`ConfigError`.

        Runs at construction, and again by ``repro.connect`` before a
        backend is built (the facade adds its own compatibility checks
        on top, e.g. the ack mode's standby requirement).  Returns
        ``self`` for chaining.
        """
        if self.page_size < 512:
            raise ConfigError(
                f"page_size must be at least 512 bytes, got {self.page_size}")
        if self.buffer_capacity < 4:
            raise ConfigError(
                f"buffer_capacity must be at least 4 frames, "
                f"got {self.buffer_capacity}")
        if self.restart_mode not in ("eager", "on_demand"):
            raise ConfigError(
                f"restart_mode must be 'eager' or 'on_demand', "
                f"got {self.restart_mode!r}")
        if self.restore_mode not in ("eager", "on_demand"):
            raise ConfigError(
                f"restore_mode must be 'eager' or 'on_demand', "
                f"got {self.restore_mode!r}")
        if self.commit_ack_mode not in ("local_durable", "replicated_durable"):
            raise ConfigError(
                f"commit_ack_mode must be 'local_durable' or "
                f"'replicated_durable', got {self.commit_ack_mode!r}")
        if self.prefetch_mode not in ("off", "sequential", "semantic"):
            raise ConfigError(
                f"prefetch_mode must be 'off', 'sequential' or 'semantic', "
                f"got {self.prefetch_mode!r}")
        if self.prefetch_depth < 1:
            raise ConfigError(
                f"prefetch_depth must be at least 1, "
                f"got {self.prefetch_depth}")
        if self.prefetch_window < 1:
            raise ConfigError(
                f"prefetch_window must be at least 1, "
                f"got {self.prefetch_window}")
        if self.capacity_pages < self.data_start + 8:
            raise ConfigError("capacity too small for metadata + PRI region")
        if self.log_segment_bytes < 512:
            raise ConfigError(
                f"log_segment_bytes must be at least 512, "
                f"got {self.log_segment_bytes}")
        return self

    @property
    def pri_region_start(self) -> int:
        return 1  # page 0 is the metadata page

    @property
    def pri_region_end(self) -> int:
        return self.pri_region_start + 2 * self.pri_region_pages_per_partition

    @property
    def data_start(self) -> int:
        """First allocatable data page."""
        return self.pri_region_end
