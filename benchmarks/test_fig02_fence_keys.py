"""Figure 2 — symmetric fence keys in a page.

Demonstrates and measures the two properties the figure illustrates:

* every key in a node falls between the low and high fence, and the
  fences equal the separator keys posted in the parent;
* suffix truncation keeps separators (hence fences) short, and prefix
  truncation strips the fences' common prefix from every stored key.
"""

from __future__ import annotations

from benchmarks.common import print_table
from repro.btree.node import BTreeNode
from repro.btree.verify import VerificationReport, verify_node
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import NULL_PROFILE

SHARED_PREFIX = b"warehouse/0042/district/007/order/"


def build_tree(with_prefix: bool):
    db = Database(EngineConfig(
        page_size=1024, capacity_pages=4096, buffer_capacity=512,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE))
    tree = db.create_index()
    txn = db.begin()
    prefix = SHARED_PREFIX if with_prefix else b""
    for i in range(1200):
        tree.insert(txn, prefix + b"%08d" % i, b"v")
    db.commit(txn)
    return db, tree


def collect_nodes(db, tree):  # noqa: ANN001
    """(node stats) for every node, via a full traversal."""
    rows = []

    def visit(pid, exp_low, exp_high, exp_inf, exp_level):  # noqa: ANN001
        page = db.fix(pid)
        node = BTreeNode(page)
        report = VerificationReport()
        verify_node(node, exp_low, exp_high, exp_inf, exp_level, report)
        assert report.ok, report.problems
        key_bytes = sum(len(node.stored_key(i)) for i in range(node.nrecs))
        full_bytes = sum(len(node.full_key(i)) for i in range(node.nrecs))
        rows.append({
            "level": node.level,
            "records": node.nrecs,
            "low_fence_len": len(node.low_fence),
            "high_fence_len": 0 if node.high_inf else len(node.high_fence),
            "prefix_len": len(node.prefix),
            "stored_key_bytes": key_bytes,
            "full_key_bytes": full_bytes,
        })
        if not node.is_leaf:
            for i in range(node.nrecs):
                low, high, inf = node.child_boundaries(i)
                visit(node.child_pid(i), low, high, inf, node.level - 1)
        if node.has_foster:
            low, high, inf = node.foster_boundaries()
            visit(node.foster_pid, low, high, inf, node.level)
        db.unfix(pid)

    root = db.get_root(tree.index_id)
    root_page = db.fix(root)
    level = BTreeNode(root_page).level
    db.unfix(root)
    visit(root, b"", b"", True, level)
    return rows


def summarize(rows):
    leaves = [r for r in rows if r["level"] == 0]
    stored = sum(r["stored_key_bytes"] for r in leaves)
    full = sum(r["full_key_bytes"] for r in leaves)
    return {
        "nodes": len(rows),
        "leaves": len(leaves),
        "avg_fence_len": sum(r["low_fence_len"] + r["high_fence_len"]
                             for r in rows) / (2 * len(rows)),
        "stored_key_bytes": stored,
        "full_key_bytes": full,
        "prefix_savings_pct": 100.0 * (1 - stored / full) if full else 0.0,
    }


def test_fig02_fence_key_properties(benchmark):
    def run():
        out = {}
        for label, with_prefix in (("short keys", False),
                                   ("shared-prefix keys", True)):
            db, tree = build_tree(with_prefix)
            out[label] = summarize(collect_nodes(db, tree))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    plain = results["short keys"]
    prefixed = results["shared-prefix keys"]

    # Suffix truncation: fences stay small even with 42-byte keys.
    assert prefixed["avg_fence_len"] < len(SHARED_PREFIX) + 8 + 4

    # Prefix truncation: a long shared prefix largely vanishes from
    # the stored keys.
    assert prefixed["prefix_savings_pct"] > 40.0
    assert plain["prefix_savings_pct"] >= 0.0

    print_table(
        "Figure 2: symmetric fence keys — truncation effectiveness",
        ["workload", "nodes", "avg fence len (B)", "stored key bytes",
         "full key bytes", "prefix savings %"],
        [[label, r["nodes"], r["avg_fence_len"], r["stored_key_bytes"],
          r["full_key_bytes"], r["prefix_savings_pct"]]
         for label, r in results.items()])


def test_fig02_bench_node_verification(benchmark):
    """Wall time of the per-node invariant check (runs on every hop)."""
    db, tree = build_tree(with_prefix=True)
    root = db.get_root(tree.index_id)
    page = db.fix(root)
    node = BTreeNode(page)

    def verify():
        report = VerificationReport()
        verify_node(node, b"", b"", True, node.level, report)
        return report

    report = benchmark(verify)
    assert report.ok
    db.unfix(root)
