"""Transactions: user and system transactions, rollback, locks.

The paper leans on the distinction between *user transactions* (change
logical database contents; commit forces the log) and *system
transactions* (contents-neutral structural changes; commit does **not**
force the log, Figure 5).  Page-recovery-index maintenance is logged as
system transactions precisely so that it adds no forced log writes
(Section 5.2.4).
"""

from repro.txn.locks import LockConflict, LockManager
from repro.txn.manager import TransactionManager, UndoContext
from repro.txn.transaction import Transaction, TxnState

__all__ = [
    "Transaction",
    "TxnState",
    "TransactionManager",
    "UndoContext",
    "LockManager",
    "LockConflict",
]
