"""Unit tests: workload generators and the fleet failure model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.fleet import (
    NEARLINE_LSE_ANNUAL_RATE,
    FleetModel,
    FleetOutcome,
)
from repro.workloads.generator import KeyValueWorkload, WorkloadSpec


class TestWorkloadSpec:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.n_keys > 0

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_keys=0)
        with pytest.raises(ValueError):
            WorkloadSpec(skew=-1)


class TestKeyValueWorkload:
    def test_keys_sort_numerically(self):
        wl = KeyValueWorkload(WorkloadSpec(n_keys=50))
        keys = wl.all_keys()
        assert keys == sorted(keys)
        assert len(set(keys)) == 50

    def test_deterministic_across_instances(self):
        a = KeyValueWorkload(WorkloadSpec(seed=9))
        b = KeyValueWorkload(WorkloadSpec(seed=9))
        assert [a.pick() for _ in range(50)] == [b.pick() for _ in range(50)]
        assert list(a.load_stream()) == list(b.load_stream())

    def test_load_stream_covers_every_key_once(self):
        wl = KeyValueWorkload(WorkloadSpec(n_keys=100))
        pairs = list(wl.load_stream())
        assert len(pairs) == 100
        assert {k for k, _v in pairs} == set(wl.all_keys())

    def test_uniform_spread(self):
        wl = KeyValueWorkload(WorkloadSpec(n_keys=10, skew=0.0, seed=1))
        picks = [wl.pick() for _ in range(2000)]
        counts = [picks.count(i) for i in range(10)]
        assert min(counts) > 100  # roughly even

    def test_zipf_concentrates_on_low_ranks(self):
        wl = KeyValueWorkload(WorkloadSpec(n_keys=100, skew=1.2, seed=1))
        picks = [wl.pick() for _ in range(3000)]
        hot = sum(1 for p in picks if p < 10)
        assert hot > len(picks) * 0.5

    def test_update_stream_versions_increase(self):
        wl = KeyValueWorkload(WorkloadSpec(n_keys=10))
        updates = list(wl.update_stream(20))
        assert len(updates) == 20
        for key, value in updates:
            assert key in wl.all_keys()
            assert value.startswith(b"v")

    def test_mixed_stream_is_applicable(self):
        """Every op in the stream is valid against a dict model that
        starts fully loaded."""
        wl = KeyValueWorkload(WorkloadSpec(n_keys=30, seed=3))
        model = {wl.key(i): wl.value(i) for i in range(30)}
        for action, key, value in wl.mixed_stream(300):
            if action == "insert":
                assert key not in model
                model[key] = value
            elif action == "update":
                assert key in model
                model[key] = value
            else:
                assert key in model
                del model[key]

    @settings(max_examples=20, deadline=None)
    @given(skew=st.floats(0, 2), seed=st.integers(0, 1000))
    def test_pick_always_in_range(self, skew, seed):
        wl = KeyValueWorkload(WorkloadSpec(n_keys=37, skew=skew, seed=seed))
        for _ in range(100):
            assert 0 <= wl.pick() < 37


class TestFleetModel:
    def test_schedule_deterministic(self):
        a = FleetModel(200, 1000, seed=5).schedule()
        b = FleetModel(200, 1000, seed=5).schedule()
        assert a == b

    def test_schedule_sorted_by_time(self):
        faults = FleetModel(300, 1000, seed=2).schedule()
        times = [f.time for f in faults]
        assert times == sorted(times)

    def test_incident_rate_tracks_study(self):
        """About 9.5% of nearline devices per year develop LSEs [2]."""
        model = FleetModel(4000, 1000, years=1.0,
                           annual_lse_rate=NEARLINE_LSE_ANNUAL_RATE, seed=11)
        devices_hit = len({f.device_index for f in model.schedule()})
        rate = devices_hit / 4000
        assert 0.07 <= rate <= 0.12

    def test_errors_cluster_within_devices(self):
        """The study found dozens of errors on affected drives."""
        faults = FleetModel(2000, 1000, errors_per_incident=5.0,
                            seed=3).schedule()
        per_device: dict[int, int] = {}
        for fault in faults:
            per_device[fault.device_index] = per_device.get(fault.device_index, 0) + 1
        assert max(per_device.values()) > 1

    def test_fault_kinds_mixed(self):
        faults = FleetModel(2000, 1000, silent_fraction=0.4, seed=4).schedule()
        kinds = {f.kind for f in faults}
        assert "read-error" in kinds
        assert kinds & {"bit-rot", "lost-write"}

    def test_outcome_availability(self):
        outcome = FleetOutcome(devices=100, media_failures=3,
                               system_failures=2)
        assert outcome.availability == pytest.approx(0.95)
        assert FleetOutcome().availability == 1.0
