"""Deterministic chaos simulation with a durability oracle.

The paper's claim is structural: single-page failures join transaction,
media, and system failures in one taxonomy, and all of them — singly
or *composed* — are repaired without losing committed work.  The
point-wise matrices (``tests/test_crash_matrix.py``,
``tests/test_media_matrix.py``) pin hand-picked protocol points; this
module is the FoundationDB-style generalization: a **seeded
discrete-event harness** that interleaves a multi-client workload with
injected failures of *every* class at *arbitrary* points, against the
real :class:`repro.engine.database.Database`, and proves after every
recovery that committed data survived.

Building blocks:

* :func:`generate_schedule` — expands ``(seed, config)`` into an
  ordered list of :class:`repro.sim.scheduler.Event` objects: client
  transactions (:class:`repro.workloads.fleet.ClientFleet`, one RNG
  stream per client), maintenance (checkpoint, backup, drain,
  truncate, retire), and the five failure kinds — ``corrupt`` (any
  :class:`repro.storage.faults.FaultKind` on any page), ``crash``
  (optionally *mid-operation*, via a :meth:`repro.sim.clock.SimClock.
  arm` deadline that fires inside whatever engine I/O crosses it),
  ``device_loss``, ``backup_loss``, and ``double`` (crash during a
  pending restore, media failure during a pending restart).
* :class:`DurabilityOracle` — shadows every committed transaction's
  effects.  After each recovery it checks (a) all committed effects
  visible, (b) no aborted effects visible, (c) B-tree invariants hold
  (:func:`repro.btree.verify.verify_tree`), and (d) — on designated
  events — that eager and on-demand recovery of the *same* failure
  image converge to byte-identical end states.  Commits interrupted
  mid-acknowledgement are *uncertain* and resolved from the durable
  log: present commit record means the effects must all be visible,
  absent means none may be (atomicity either way).
* :func:`execute_schedule` — a pure function of ``(config, events)``:
  same inputs, bit-identical trace.  That purity is what makes
  failures replayable from their seed and shrinkable.
* :func:`shrink_schedule` — greedy event deletion: a failing schedule
  is minimized by repeatedly re-running with one event removed,
  keeping removals that still fail.  Per-client RNG streams make this
  sound: deleting an event never changes what surviving events do.

Command line::

    PYTHONPATH=src python -m repro.sim.harness --seed 7
    PYTHONPATH=src python -m repro.sim.harness --campaign 200 --events 40
"""

from __future__ import annotations

import argparse
import copy
import os
import random
import sys
from collections import Counter
from dataclasses import dataclass, field

from repro.btree.verify import verify_tree
from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import (
    KeyNotFound,
    MediaFailure,
    RecoveryError,
    ReplicationLagError,
    SinglePageFailure,
)
from repro.sim.iomodel import HDD_PROFILE
from repro.sim.scheduler import Event, EventScheduler
from repro.storage.faults import FaultKind
from repro.txn.locks import DeadlockError, LockConflict
from repro.wal.records import LogRecordKind
from repro.workloads.fleet import ClientFleet

MODE_COMBOS = (("eager", "eager"), ("eager", "on_demand"),
               ("on_demand", "eager"), ("on_demand", "on_demand"))

#: the five injected failure-event kinds (transaction failures ride in
#: the client stream itself: a fraction of fleet actions abort)
FAILURE_KINDS = ("corrupt", "crash", "device_loss", "backup_loss", "double")

#: replication failure kinds, mixed in only when ``ChaosConfig.standby``
#: is on — so every pre-replication seed expands to a bit-identical
#: schedule
REPLICATION_FAILURE_KINDS = ("standby_crash", "link_loss", "failover")

#: every kind a pending mid-op crash deadline must fire before
ALL_FAILURE_KINDS = FAILURE_KINDS + REPLICATION_FAILURE_KINDS

#: event kind -> relative weight in a generated schedule
EVENT_MIX = (
    ("client", 50),
    ("drain", 8),
    ("checkpoint", 5),
    ("backup", 4),
    ("truncate", 3),
    ("retire", 2),
    ("corrupt", 9),
    ("crash", 8),
    ("device_loss", 5),
    ("backup_loss", 3),
    ("double", 3),
)

#: extra weights when a standby is configured
REPLICATION_EVENT_MIX = (
    ("standby_crash", 5),
    ("link_loss", 5),
    ("failover", 3),
)

#: extra weights when prefetching is enabled (``ChaosConfig.prefetch``
#: != "off") — gated exactly like the replication mix, so every
#: prefetch-off seed expands to a bit-identical schedule
PREFETCH_EVENT_MIX = (
    ("prefetch_tick", 6),
    ("prefetch_toggle", 2),
)


class ScheduledCrashInterrupt(Exception):
    """Raised by an armed clock deadline to cut an engine operation
    short, exactly like a process crash would.  Deliberately *not* a
    :class:`repro.errors.ReproError`: no engine code may catch it."""


def _raise_scheduled_crash() -> None:
    raise ScheduledCrashInterrupt()


@dataclass
class ChaosConfig:
    """Everything needed to reproduce one chaos run."""

    seed: int = 0
    n_events: int = 40
    n_clients: int = 4
    n_keys: int = 120
    restart_mode: str = "eager"
    restore_mode: str = "eager"
    #: attach a hot standby (PR 7): the schedule then mixes in the
    #: replication failure kinds, the standby serves as the fifth
    #: repair source, and ``failover`` events promote it
    standby: bool = False
    #: ``"local_durable"`` or ``"replicated_durable"`` (the latter
    #: requires ``standby``)
    ack_mode: str = "local_durable"
    #: shipping granularity: ``"tail"`` or ``"segment"``
    ship_mode: str = "tail"
    #: initial prefetch mode; any value but "off" also mixes the
    #: prefetch events (service ticks, runtime mode toggles) into the
    #: schedule
    prefetch: str = "off"
    #: run the eager-vs-on-demand differential oracle on designated
    #: failure events (check (d))
    differential: bool = True
    #: shrink a failing schedule by greedy event deletion
    shrink: bool = True
    max_shrink_runs: int = 150
    #: engine sizing
    capacity_pages: int = 1024
    buffer_capacity: int = 48

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            capacity_pages=self.capacity_pages,
            buffer_capacity=self.buffer_capacity,
            device_profile=HDD_PROFILE,
            log_profile=HDD_PROFILE,
            backup_profile=HDD_PROFILE,
            restart_mode=self.restart_mode,
            restore_mode=self.restore_mode,
            backup_policy=BackupPolicy(every_n_updates=24),
            commit_ack_mode=self.ack_mode,
            prefetch_mode=self.prefetch,
            seed=self.seed,
        )


@dataclass
class ChaosResult:
    """Outcome of one executed schedule."""

    config: ChaosConfig
    events: list[Event]
    ok: bool = True
    violations: list[str] = field(default_factory=list)
    trace: list[str] = field(default_factory=list)
    event_counts: dict[str, int] = field(default_factory=dict)
    recoveries: int = 0
    committed_txns: int = 0
    shrunk: list[Event] | None = None

    def trace_text(self) -> str:
        header = (f"chaos seed={self.config.seed} "
                  f"restart={self.config.restart_mode} "
                  f"restore={self.config.restore_mode} "
                  f"standby={self.config.standby} "
                  f"ack={self.config.ack_mode} "
                  f"prefetch={self.config.prefetch} "
                  f"events={len(self.events)}")
        lines = [header, *self.trace,
                 "RESULT " + ("PASS" if self.ok else "FAIL")]
        lines.extend(f"VIOLATION {v}" for v in self.violations)
        if self.shrunk is not None:
            lines.append(f"SHRUNK to {len(self.shrunk)} events:")
            lines.extend("  " + event.describe() for event in self.shrunk)
        return "\n".join(lines)


def key_of(i: int) -> bytes:
    return b"k%06d" % i


# ----------------------------------------------------------------------
# Schedule generation: (seed, config) -> ordered event list
# ----------------------------------------------------------------------
def generate_schedule(config: ChaosConfig) -> list[Event]:
    """Expand ``(seed, config)`` into an ordered chaos schedule.

    When the schedule is long enough, one event of each failure kind
    is guaranteed, so a default campaign run covers the whole failure
    taxonomy; everything else is drawn from :data:`EVENT_MIX`.
    """
    rng = random.Random(f"chaos/{config.seed}")
    guaranteed = FAILURE_KINDS
    mix = EVENT_MIX
    if config.standby:
        # Only a standby-enabled config draws replication kinds, so
        # every pre-replication (seed, config) expands bit-identically.
        guaranteed = ALL_FAILURE_KINDS
        mix = EVENT_MIX + REPLICATION_EVENT_MIX
    if config.prefetch != "off":
        # Same gating for the prefetch events: prefetch-off seeds
        # (every schedule that predates PR 9) stay bit-identical.
        mix = mix + PREFETCH_EVENT_MIX
    kinds: list[str] = []
    if config.n_events >= 2 * len(guaranteed):
        kinds.extend(guaranteed)
    pool = [kind for kind, weight in mix for _ in range(weight)]
    while len(kinds) < config.n_events:
        kinds.append(rng.choice(pool))
    rng.shuffle(kinds)
    scheduler = EventScheduler()
    for step, kind in enumerate(kinds, start=1):
        scheduler.schedule(float(step), kind, **_draw_params(kind, rng, config))
    return list(scheduler.drain())


def _draw_params(kind: str, rng: random.Random,
                 config: ChaosConfig) -> dict:
    if kind == "client":
        return {"client": rng.randrange(config.n_clients)}
    if kind == "drain":
        return {"pages": rng.randrange(2, 11), "losers": rng.randrange(0, 3)}
    if kind == "corrupt":
        return {"fault": rng.choice([fk.value for fk in FaultKind]),
                "rank": rng.randrange(1_000_000),
                "victim_rank": rng.randrange(1_000_000),
                "nbits": rng.randrange(1, 9)}
    if kind == "crash":
        mid_op = rng.random() < 0.6
        return {"delay": round(rng.uniform(0.002, 0.05), 4) if mid_op else 0.0,
                "diff": rng.random() < 0.35}
    if kind == "device_loss":
        return {"diff": rng.random() < 0.35}
    if kind == "backup_loss":
        return {"rank": rng.randrange(1_000_000),
                "copy_failures": rng.randrange(0, 3)}
    if kind == "double":
        return {"direction": rng.choice(["crash_during_restore",
                                         "media_during_restart"]),
                "budget": rng.randrange(1, 7)}
    if kind == "prefetch_tick":
        return {"budget": rng.randrange(1, 9)}
    if kind == "prefetch_toggle":
        return {"mode_rank": rng.randrange(1_000_000)}
    return {}


# ----------------------------------------------------------------------
# The durability oracle
# ----------------------------------------------------------------------
class DurabilityOracle:
    """Shadow model of every committed transaction's effects.

    ``model`` maps key -> committed value; a delete removes the key.
    Transactions whose commit acknowledgement was cut off by a failure
    are parked in ``uncertain`` and resolved against the durable log
    after recovery: a surviving COMMIT record folds the staged effects
    into the model, an absent one discards them — and the subsequent
    visibility check then enforces atomicity in both directions.
    """

    def __init__(self) -> None:
        self.model: dict[bytes, bytes] = {}
        #: txn_id -> staged effects (value None = delete)
        self.uncertain: dict[int, dict[bytes, bytes | None]] = {}
        #: every applied commit, in order: (txn_id, staged, commit_lsn,
        #: replicated) — the replay tape :meth:`rebase_to_log` rebuilds
        #: the model from after a failover, when commits acknowledged
        #: ``local_durable`` may legitimately not have reached the
        #: promoted standby
        self.journal: list[tuple[int | None, dict[bytes, bytes | None],
                                 int | None, bool]] = []
        #: commits dropped by the most recent :meth:`rebase_to_log`
        self.lost_at_last_rebase = 0
        self.checks = 0

    # -- bookkeeping during the workload -------------------------------
    def commit_applied(self, staged: dict[bytes, bytes | None],
                       txn_id: int | None = None, lsn: int | None = None,
                       replicated: bool = False) -> None:
        """A transaction's commit call returned: effects are durable.

        ``replicated`` marks a commit acknowledged under
        ``replicated_durable`` — one that must survive even the total
        loss of the primary."""
        self.journal.append((txn_id, dict(staged), lsn, replicated))
        self._apply(staged)

    def record_uncertain(self, txn_id: int,
                         staged: dict[bytes, bytes | None]) -> None:
        """A failure interrupted the transaction (possibly inside the
        commit acknowledgement): durability is unknown until the log
        can be consulted after recovery."""
        if staged:
            self.uncertain[txn_id] = dict(staged)

    def resolve_uncertain(self, db: Database) -> None:
        """Resolve parked commits against the post-recovery log."""
        if not self.uncertain:
            return
        committed_lsns = {record.txn_id: record.lsn
                          for record in db.log.all_records()
                          if record.kind == LogRecordKind.COMMIT}
        for txn_id in sorted(self.uncertain):
            staged = self.uncertain.pop(txn_id)
            if txn_id in committed_lsns:
                self.commit_applied(staged, txn_id=txn_id,
                                    lsn=committed_lsns[txn_id])

    def rebase_to_log(self, db: Database, context: str) -> list[str]:
        """Failover: rebuild the model from what reached the promoted
        standby, replaying the commit journal.

        A journaled commit survives if its record is in the promoted
        log, or if it predates the log's truncation horizon (its
        effects rode the standby seed or shipped pages rather than
        records).  A commit that does *not* survive is the documented
        ``local_durable`` window — unless it was acknowledged
        ``replicated_durable``, which makes its loss a violation.  The
        journal is compacted to the survivors so a later failover
        rebases from a consistent lineage.
        """
        committed_ids = {record.txn_id for record in db.log.all_records()
                         if record.kind == LogRecordKind.COMMIT}
        horizon = db.log.truncated_below
        violations: list[str] = []
        survivors: list[tuple] = []
        model: dict[bytes, bytes] = {}
        lost = 0
        for entry in self.journal:
            txn_id, staged, lsn, replicated = entry
            survives = ((lsn is not None and lsn < horizon)
                        or txn_id in committed_ids)
            if survives:
                survivors.append(entry)
                for key, value in staged.items():
                    if value is None:
                        model.pop(key, None)
                    else:
                        model[key] = value
            else:
                lost += 1
                if replicated:
                    violations.append(
                        f"{context}: replicated-acked txn {txn_id} "
                        f"(commit LSN {lsn}) lost at failover")
        self.journal = survivors
        self.model = model
        self.lost_at_last_rebase = lost
        return violations

    def _apply(self, staged: dict[bytes, bytes | None]) -> None:
        for key, value in staged.items():
            if value is None:
                self.model.pop(key, None)
            else:
                self.model[key] = value

    # -- checks --------------------------------------------------------
    def full_check(self, db: Database, context: str,
                   index_id: int = 1) -> list[str]:
        """Checks (a)+(b)+(c): drain pending work, then demand the
        surviving state equals the committed model exactly and the
        B-tree invariants hold."""
        self.checks += 1
        self.resolve_uncertain(db)
        db.finish_restart()
        db.finish_restore()
        violations: list[str] = []
        tree = db.tree(index_id)
        scan = dict(tree.range_scan())
        missing = [k for k in self.model if k not in scan]
        wrong = [k for k in self.model
                 if k in scan and scan[k] != self.model[k]]
        phantom = [k for k in scan if k not in self.model]
        if missing:
            violations.append(
                f"{context}: {len(missing)} committed keys lost "
                f"(first: {missing[0]!r})")
        if wrong:
            violations.append(
                f"{context}: {len(wrong)} committed keys have wrong values "
                f"(first: {wrong[0]!r})")
        if phantom:
            violations.append(
                f"{context}: {len(phantom)} uncommitted keys visible "
                f"(first: {phantom[0]!r})")
        report = verify_tree(tree)
        if not report.ok:
            violations.append(
                f"{context}: B-tree invariants violated: "
                f"{report.problems[0]}")
        return violations

    def sample_check(self, db: Database, rng: random.Random,
                     context: str, n_probes: int = 8,
                     index_id: int = 1) -> list[str]:
        """A light (a)+(b) probe that rides the lazy fix paths instead
        of draining pending work: look up a sample of keys and compare
        with the model.  Keys locked by pending losers are skipped —
        their rollback has not run yet, by design."""
        self.checks += 1
        self.resolve_uncertain(db)
        violations: list[str] = []
        tree = db.tree(index_id)
        population = sorted(self.model)
        probes = (rng.sample(population, min(n_probes, len(population)))
                  if population else [])
        probes += [key_of(10**6 + rng.randrange(100))]  # an absent key
        for key in probes:
            if db.locks.holder_of(key) is not None:
                continue  # held by a pending loser awaiting lazy undo
            expected = self.model.get(key)
            try:
                actual = tree.lookup(key)
            except KeyNotFound:
                actual = None
            if actual != expected:
                violations.append(
                    f"{context}: probe {key!r} = {actual!r}, "
                    f"expected {expected!r}")
        return violations


# ----------------------------------------------------------------------
# Differential oracle helpers (check (d))
# ----------------------------------------------------------------------
def _clone_failed(db: Database) -> Database:
    """Deep-copy a failed database image so it can be recovered
    independently under the other mode (hooks are not cloned: they
    close over the harness)."""
    crash_hooks, recovery_hooks = db.crash_hooks, db.recovery_hooks
    db.crash_hooks, db.recovery_hooks = [], []
    try:
        return copy.deepcopy(db)
    finally:
        db.crash_hooks, db.recovery_hooks = crash_hooks, recovery_hooks


def _log_shape(db: Database) -> list[tuple]:
    return [(r.lsn, r.kind, r.txn_id, r.page_id, r.page_lsn,
             r.page_prev_lsn, r.prev_lsn)
            for r in db.log.all_records()]


def _device_images(db: Database) -> dict[int, bytes]:
    db.flush_everything()
    images: dict[int, bytes] = {}
    for page_id in range(db.allocated_pages()):
        raw = db.device.raw_image(page_id)
        if raw is not None:
            images[page_id] = bytes(raw)
    return images


def _compare_recoveries(eager_db: Database, lazy_db: Database,
                        context: str) -> list[str]:
    violations = []
    if _log_shape(eager_db) != _log_shape(lazy_db):
        violations.append(f"{context}: eager and on-demand logs diverge")
    if _device_images(eager_db) != _device_images(lazy_db):
        violations.append(f"{context}: eager and on-demand device images "
                          f"diverge")
    for index_id in eager_db.indexes:
        eager_scan = dict(eager_db.tree(index_id).range_scan())
        lazy_scan = dict(lazy_db.tree(index_id).range_scan())
        if eager_scan != lazy_scan:
            violations.append(f"{context}: committed state diverges on "
                              f"index {index_id}")
    return violations


# ----------------------------------------------------------------------
# Schedule execution
# ----------------------------------------------------------------------
class _Run:
    """Mutable state of one schedule execution."""

    def __init__(self, config: ChaosConfig, events: list[Event]) -> None:
        self.config = config
        self.result = ChaosResult(config=config, events=list(events))
        self.db = Database(config.engine_config())
        self.oracle = DurabilityOracle()
        self.fleet = ClientFleet(config.n_clients, config.seed,
                                 key_space=config.n_keys + 40)
        self.check_rng = random.Random(f"chaos-check/{config.seed}")
        #: (txn, staged) of the action currently executing, for
        #: uncertain-commit accounting when an interrupt cuts it short
        self.inflight: tuple[object, dict] | None = None
        self._armed_diff = False
        self.db.crash_hooks.append(self._on_crash)
        self.db.recovery_hooks.append(self._on_recovery)
        if config.ack_mode == "replicated_durable" and not config.standby:
            raise ValueError("ack_mode=replicated_durable requires standby")
        if config.standby:
            # Before any user commit: replicated_durable acks need the
            # shipping link from the very first transaction.
            self.db.attach_standby(mode=config.ship_mode)
        self.tree = self.db.create_index()
        self.index_id = self.tree.index_id
        self._load_initial()

    # -- setup ---------------------------------------------------------
    def _load_initial(self) -> None:
        db, tree = self.db, self.tree
        txn = db.begin()
        staged: dict[bytes, bytes | None] = {}
        for i in range(self.config.n_keys):
            value = b"v%d.0" % i
            tree.insert(txn, key_of(i), value)
            staged[key_of(i)] = value
        lsn = db.commit(txn)
        self.oracle.commit_applied(
            staged, txn_id=txn.txn_id, lsn=lsn,
            replicated=self.config.ack_mode == "replicated_durable")
        db.flush_everything()
        backup_id = db.take_full_backup()
        self.trace(f"load keys={self.config.n_keys} backup={backup_id}")

    # -- plumbing ------------------------------------------------------
    def trace(self, line: str) -> None:
        self.result.trace.append(f"[{self.db.clock.now:.4f}] {line}")

    def _on_crash(self, db: Database) -> None:
        """Engine crash hook: every crash is traced at its true
        position, whichever code path initiated it."""
        self.trace("crash")

    def _on_recovery(self, db: Database, kind: str, report) -> None:  # noqa: ANN001
        self.result.recoveries += 1
        # The catalog's volatile tree objects did not survive the
        # failure; re-resolve the working tree.
        self.tree = db.tree(self.index_id)
        pending = (getattr(report, "pending_redo_pages", 0)
                   or getattr(report, "pending_restore_pages", 0))
        self.trace(f"recovered kind={kind} mode={report.mode} "
                   f"pending={pending}")
        db.stats.note_max("chaos_max_pending_after_recovery", pending)

    def violation(self, message: str) -> None:
        self.result.violations.append(message)
        self.result.ok = False

    def _newest_backup_id(self) -> int:
        """The backup the next media recovery should use: the one a
        pending/interrupted restore depends on if it is retained,
        otherwise the newest retained backup with a log record."""
        db = self.db
        pinned = db._pending_restore_backup_id
        if (db.restore_registry is not None
                and not db.restore_registry.complete):
            pinned = db.restore_registry.backup_id
        if pinned is not None and db.backup_store.has_full_backup(pinned):
            return pinned
        for backup_id in reversed(db.backup_store.full_backup_ids()):
            if db.log.backup_full_lsn(backup_id) is not None:
                return backup_id
        raise RecoveryError("no usable full backup retained")

    # -- failure primitives --------------------------------------------
    def crash_now(self, diff: bool = False) -> None:
        """Process crash at this exact point, then recovery (which is
        a restore re-run when the crash interrupted a pending
        restore), then the oracle."""
        db = self.db
        db.clock.disarm()
        if self.inflight is not None:
            txn, staged = self.inflight
            self.oracle.record_uncertain(txn.txn_id, staged)
            self.inflight = None
        db.crash()
        if db._media_failed:
            # The crash interrupted an on-demand restore: the device is
            # effectively failed again; re-run from the retained backup.
            self.trace("crash interrupted pending restore; re-running")
            self.recover_media_now(diff=diff)
            return
        clone = _clone_failed(db) if diff and self.config.differential else None
        db.restart(mode=self.config.restart_mode)
        if clone is not None:
            db.finish_restart()
            other = ("on_demand" if self.config.restart_mode == "eager"
                     else "eager")
            self._differential(clone, "restart", other)
            self.check("post-crash", full=True)
        else:
            self.check("post-crash", full=False)

    def media_fail_now(self) -> None:
        """Lose the device through the real escalation path."""
        db = self.db
        db.clock.disarm()
        if self.inflight is not None:
            txn, staged = self.inflight
            self.oracle.record_uncertain(txn.txn_id, staged)
            self.inflight = None
        db.device.fail_device("chaos device loss")
        db._on_media_failure(MediaFailure(db.device.name, "chaos device loss"))
        self.trace("device_loss")

    def recover_media_now(self, diff: bool = False) -> None:
        db = self.db
        db.clock.disarm()
        backup_id = self._newest_backup_id()
        clone = _clone_failed(db) if diff and self.config.differential else None
        db.recover_media(backup_id, mode=self.config.restore_mode)
        if clone is not None:
            db.finish_restore()
            other = ("on_demand" if self.config.restore_mode == "eager"
                     else "eager")
            self._differential(clone, "restore", other, backup_id)
            self.check("post-restore", full=True)
        else:
            self.check("post-restore", full=False)

    def _differential(self, clone: Database, kind: str, other_mode: str,
                      backup_id: int | None = None) -> None:
        """Oracle check (d): recover the cloned failure image under
        the *other* mode and demand byte-identical end states.  The
        clone is fully isolated — an exception from its recovery is a
        differential violation, never attributed to the main database
        (a broken opposite mode must fail the schedule, not be
        absorbed by the run loop's failure handlers)."""
        context = f"diff-{kind}"
        try:
            if kind == "restart":
                clone.restart(mode=other_mode)
                clone.finish_restart()
            else:
                clone.recover_media(backup_id, mode=other_mode)
                clone.finish_restore()
            violations = _compare_recoveries(self.db, clone, context)
        except Exception as exc:  # noqa: BLE001 - clone faults are findings
            violations = [f"{context}: {other_mode} recovery of the same "
                          f"image raised {type(exc).__name__}: {exc}"]
        for violation in violations:
            self.violation(violation)

    def check(self, context: str, full: bool) -> None:
        if full:
            violations = self.oracle.full_check(self.db, context,
                                                index_id=self.index_id)
        else:
            violations = self.oracle.sample_check(self.db, self.check_rng,
                                                  context,
                                                  index_id=self.index_id)
        for violation in violations:
            self.violation(violation)

    # -- event dispatch ------------------------------------------------
    def dispatch(self, event: Event) -> None:
        kind = event.kind
        counts = self.result.event_counts
        counts[kind] = counts.get(kind, 0) + 1
        payload = event.payload
        db = self.db
        # A failure event while a mid-op crash deadline is still armed:
        # fire the pending crash first (with the differential setting
        # its crash event drew) so schedules stay well-ordered.
        if db.clock.armed and kind in ALL_FAILURE_KINDS:
            self.crash_now(diff=self._armed_diff)
        handler = getattr(self, f"_do_{kind}")
        handler(payload)

    def _do_client(self, payload: dict) -> None:
        db, tree, oracle = self.db, self.tree, self.oracle
        action = self.fleet.next_action(payload["client"])
        txn = db.begin()
        staged: dict[bytes, bytes | None] = {}
        self.inflight = (txn, staged)
        try:
            for verb, key_index, value in action.ops:
                key = key_of(key_index)
                # Interpret the intent against the committed model plus
                # this transaction's own staged writes.
                if key in staged:
                    exists = staged[key] is not None
                else:
                    exists = key in oracle.model
                db.locks.acquire(txn.txn_id, key)
                if verb == "lookup" or (verb == "delete" and not exists):
                    expected = (staged[key] if key in staged
                                else oracle.model.get(key))
                    try:
                        actual = tree.lookup(key)
                    except KeyNotFound:
                        actual = None
                    if actual != expected:
                        self.violation(
                            f"client read {key!r} = {actual!r}, "
                            f"expected {expected!r}")
                elif verb == "delete":
                    tree.delete(txn, key)
                    staged[key] = None
                elif exists:
                    tree.update(txn, key, value)
                    staged[key] = value
                else:
                    tree.insert(txn, key, value)
                    staged[key] = value
            if action.fate == "abort":
                db.abort(txn)
                db.stats.bump("chaos_txn_failures")
            else:
                replicated = False
                try:
                    lsn = db.commit(txn)
                    replicated = (db.tm.ack_mode == "replicated_durable")
                except ReplicationLagError:
                    # The commit IS done and locally durable; only the
                    # replication acknowledgement failed (standby down
                    # or link severed).  The oracle records it like a
                    # local_durable commit: it may be lost at failover.
                    lsn = txn.last_lsn
                    db.stats.bump("chaos_replication_lag_commits")
                oracle.commit_applied(staged, txn_id=txn.txn_id, lsn=lsn,
                                      replicated=replicated)
                self.result.committed_txns += 1
            self.inflight = None
            self.trace(f"client={action.client} seq={action.seq} "
                       f"ops={len(action.ops)} fate={action.fate}")
        except (LockConflict, DeadlockError):
            # A genuine transaction failure: roll back, effects vanish.
            self.inflight = None
            if txn.active:
                db.abort(txn)
            db.stats.bump("chaos_txn_failures")
            self.trace(f"client={action.client} seq={action.seq} "
                       f"fate=lock-abort")

    def _do_checkpoint(self, payload: dict) -> None:
        self.db.checkpoint()
        self.trace("checkpoint")

    def _do_backup(self, payload: dict) -> None:
        backup_id = self.db.take_full_backup()
        self.trace(f"backup id={backup_id}")

    def _do_drain(self, payload: dict) -> None:
        pages_r, losers_r = self.db.drain_restart(
            page_budget=payload["pages"], loser_budget=payload["losers"])
        pages_s, losers_s = self.db.drain_restore(
            page_budget=payload["pages"], loser_budget=payload["losers"])
        if pages_r or losers_r or pages_s or losers_s:
            self.trace(f"drain restart={pages_r}/{losers_r} "
                       f"restore={pages_s}/{losers_s}")

    def _do_truncate(self, payload: dict) -> None:
        from repro.errors import StorageError

        try:
            dropped = self.db.truncate_log()
        except StorageError as exc:
            if type(exc) is not StorageError:
                # Subclasses (MediaFailure, SinglePageFailure, device
                # errors) have dedicated handling in the run loop.
                raise
            # A bare StorageError is the backup medium refusing a
            # copy-forward write (for example a failure injected by a
            # backup_loss event): the old page copies survive,
            # truncation simply retries later.
            self.trace("truncate aborted by backup-media write failure")
            return
        self.trace(f"truncate dropped={dropped}")

    def _do_retire(self, payload: dict) -> None:
        retired = self.db.retire_backups()
        self.trace(f"retire backups={retired}")

    def _do_corrupt(self, payload: dict) -> None:
        db = self.db
        first, limit = db.config.data_start, db.allocated_pages()
        if limit <= first:
            return
        page_id = first + payload["rank"] % (limit - first)
        victim = first + payload["victim_rank"] % (limit - first)
        fault = FaultKind(payload["fault"])
        if fault is FaultKind.MISDIRECTED_WRITE and victim == page_id:
            victim = first + (victim + 1 - first) % (limit - first)
        db.device.apply_fault(fault, page_id, victim_page=victim,
                              nbits=payload["nbits"])
        self.trace(f"corrupt page={page_id} fault={fault.value}")

    def _do_crash(self, payload: dict) -> None:
        delay = payload["delay"]
        if delay <= 0:
            self.crash_now(diff=payload["diff"])
            return
        # Arm a mid-operation crash: the first engine I/O that carries
        # simulated time past the deadline dies mid-flight.
        self.db.clock.arm(self.db.clock.now + delay, _raise_scheduled_crash)
        self._armed_diff = payload["diff"]
        self.trace(f"crash armed delay={delay:g}")

    def _do_device_loss(self, payload: dict) -> None:
        self.media_fail_now()
        self.recover_media_now(diff=payload["diff"])

    def _do_backup_loss(self, payload: dict) -> None:
        db = self.db
        protected = {db._pending_restore_backup_id}
        if db.restore_registry is not None:
            protected.add(db.restore_registry.backup_id)
        ids = db.backup_store.full_backup_ids()
        candidates = [b for b in ids[:-1] if b not in protected]
        if candidates:
            victim = candidates[payload["rank"] % len(candidates)]
            db.backup_store.retire_full_backup(victim)
            db.stats.bump("chaos_backup_losses")
            self.trace(f"backup_loss id={victim}")
        else:
            self.trace("backup_loss skipped (last backup is sacred)")
        if payload["copy_failures"]:
            db.backup_store.inject_copy_write_failures(
                payload["copy_failures"])

    def _do_double(self, payload: dict) -> None:
        db = self.db
        direction = payload["direction"]
        self.trace(f"double direction={direction}")
        if direction == "crash_during_restore":
            self.media_fail_now()
            db.recover_media(self._newest_backup_id(), mode="on_demand")
            db.drain_restore(page_budget=payload["budget"])
            self.crash_now(diff=False)
        else:  # media failure while restart work is pending
            db.clock.disarm()
            db.crash()
            db.restart(mode="on_demand")
            self.media_fail_now()
            self.recover_media_now(diff=False)

    # -- prefetch events (PR 9) ----------------------------------------
    def _do_prefetch_tick(self, payload: dict) -> None:
        """Service the prefetch queue — the only point of a schedule
        where speculative I/O happens, so runs stay deterministic."""
        issued = self.db.prefetch_tick(payload["budget"])
        self.trace(f"prefetch_tick issued={issued}")

    def _do_prefetch_toggle(self, payload: dict) -> None:
        """Switch the prefetch mode at runtime, cycling off /
        sequential / semantic (always to a *different* mode)."""
        current = self.db.config.prefetch_mode
        options = [m for m in ("off", "sequential", "semantic")
                   if m != current]
        mode = options[payload["mode_rank"] % len(options)]
        self.db.set_prefetch_mode(mode)
        self.trace(f"prefetch_toggle mode={mode}")

    # -- replication events (PR 7) -------------------------------------
    def _do_standby_crash(self, payload: dict) -> None:
        """Toggle: a running standby dies; a dead (or never-attached)
        one is re-seeded and reattached."""
        db = self.db
        if db.standby is not None and db.standby.running:
            db.standby.crash()
            self.trace("standby_crash")
        else:
            db.detach_standby()
            db.attach_standby(mode=self.config.ship_mode)
            self.trace("standby reattached (re-seeded)")

    def _do_link_loss(self, payload: dict) -> None:
        """Toggle the shipping link: sever it, or restore it (which
        catches the standby up on the durable backlog)."""
        link = self.db.standby_link
        if link is None or (self.db.standby is not None
                            and not self.db.standby.running):
            self.trace("link_loss skipped (no live link)")
            return
        if link.link_up:
            link.sever()
            self.trace("link severed")
        else:
            link.restore()
            self.trace(f"link restored shipped={link.shipped_lsn}")

    def _do_failover(self, payload: dict) -> None:
        """Total primary loss: promote the standby, rebase the oracle
        to what actually reached it, and carry on against the new
        primary (which gets a fresh standby of its own)."""
        db = self.db
        standby = db.standby
        if standby is None or not standby.running:
            self.trace("failover skipped (no running standby)")
            return
        db.clock.disarm()
        for violation in self._check_replica_divergence("pre-failover"):
            self.violation(violation)
        # The primary is lost from here on: whatever the standby has is
        # all that survives.  (No final catch-up ship — that is exactly
        # the lag a real failover sees.)
        promoted = standby.promote(restart_mode=self.config.restart_mode)
        self.db = promoted
        promoted.crash_hooks.append(self._on_crash)
        promoted.recovery_hooks.append(self._on_recovery)
        self.result.recoveries += 1
        for violation in self.oracle.rebase_to_log(promoted, "failover"):
            self.violation(violation)
        from repro.errors import ConfigError

        try:
            self.tree = promoted.tree(self.index_id)
        except ConfigError:
            # Segment shipping can lose the whole open segment — if the
            # very first (index-creating) records never shipped, nothing
            # after them did either, so the rebased model is empty and
            # the schema is simply re-created on the new primary.
            self.tree = promoted.create_index()
            self.trace("failover lost the schema; index re-created")
            if self.oracle.model or self.tree.index_id != self.index_id:
                self.violation(
                    "failover: schema lost but rebased model non-empty "
                    f"({len(self.oracle.model)} keys survive, recreated "
                    f"index {self.tree.index_id} vs {self.index_id})")
            self.index_id = self.tree.index_id
        promoted.attach_standby(mode=self.config.ship_mode)
        self.trace(f"failover promoted applied={standby.applied_lsn} "
                   f"lost_commits={self.oracle.lost_at_last_rebase}")
        self.check("post-failover", full=True)

    def _check_replica_divergence(self, context: str) -> list[str]:
        """The replica-divergence oracle: a standby page must be
        byte-identical to the primary's durable copy *at equal
        PageLSN*.  Pages whose device image is corrupt, missing, or at
        a different LSN (dirty in the primary's pool, or the standby
        lagging/leading the flush) are incomparable and skipped."""
        from repro.errors import ReproError
        from repro.page.page import Page

        db = self.db
        standby = db.standby
        if standby is None or not standby.running or db.device.failed:
            return []
        violations: list[str] = []
        for page_id in sorted(standby.pages):
            raw = db.device.raw_image(page_id)
            if raw is None:
                continue
            try:
                primary = Page(db.config.page_size, raw)
                primary.verify(expected_page_id=page_id)
            except ReproError:
                continue  # corrupt on the primary: repair's job, not ours
            replica = standby.pages[page_id].copy()
            if primary.page_lsn != replica.page_lsn:
                continue
            # update_count is advisory backup-freshness bookkeeping:
            # the primary resets it (unlogged) when it takes a page
            # copy, so the replica legitimately drifts in that one
            # header field.  Compare everything else.
            primary.reset_update_count()
            replica.reset_update_count()
            primary.seal()
            replica.seal()
            if bytes(replica.data) != bytes(primary.data):
                violations.append(
                    f"{context}: page {page_id} diverges between primary "
                    f"and standby at equal PageLSN {primary.page_lsn}")
        return violations

    def _do_poison(self, payload: dict) -> None:
        """Test-only: commit a write the oracle never hears about, so
        the next full check fails.  Exists to prove the harness and the
        shrinker detect and minimize real divergence."""
        self.db.insert(self.tree, key_of(999_999), b"poison")
        self.trace("poison")

    # -- the loop ------------------------------------------------------
    def run(self, events: list[Event]) -> ChaosResult:
        for event in sorted(events, key=Event.sort_key):
            try:
                # Inner try: a mid-op crash interrupt whose own
                # recovery escalates to a media failure must still
                # reach the MediaFailure handler below (a sibling
                # except clause would not catch it).
                try:
                    self.dispatch(event)
                except ScheduledCrashInterrupt:
                    self.crash_now(diff=self._armed_diff)
            except MediaFailure:
                self._absorb_media_failure()
            except SinglePageFailure as exc:
                self.violation(f"unrepaired single-page failure escaped: "
                               f"{exc}")
            if not self.result.ok:
                break
        # A crash armed but never fired (not enough I/O followed):
        # fire it now rather than dropping a scheduled failure.  The
        # epilogue gets the same media-escalation absorption as the
        # loop: recovery here may legitimately escalate too.
        if self.db.clock.armed and self.result.ok:
            try:
                self.crash_now(diff=self._armed_diff)
            except MediaFailure:
                self._absorb_media_failure()
        if self.result.ok:
            try:
                self.check("final", full=True)
            except MediaFailure:
                self._absorb_media_failure()
                if self.result.ok:
                    self.check("final", full=True)
        if self.result.ok and self.config.standby:
            for violation in self._check_replica_divergence("final"):
                self.violation(violation)
        self.result.ok = not self.result.violations
        return self.result

    def _absorb_media_failure(self) -> None:
        """The device died (or single-page recovery escalated) inside
        an event or the epilogue: account the in-flight transaction,
        then restore."""
        if self.inflight is not None:
            txn, staged = self.inflight
            self.oracle.record_uncertain(txn.txn_id, staged)
            self.inflight = None
        if not self.db.device.failed:
            self.db.device.fail_device("escalated media failure")
        self.trace("media failure escaped to harness")
        self.recover_media_now(diff=False)


def execute_schedule(config: ChaosConfig, events: list[Event]) -> ChaosResult:
    """Execute a schedule; a pure function of ``(config, events)``.

    Never raises: an unexpected exception becomes a violation in the
    result (so campaigns and the shrinker treat engine crashes-of-the-
    harness-itself as failures to reproduce, not as aborts)."""
    try:
        run = _Run(config, events)
    except Exception as exc:  # noqa: BLE001 - report, don't abort
        result = ChaosResult(config=config, events=list(events))
        result.ok = False
        result.violations.append(
            f"setup raised {type(exc).__name__}: {exc}")
        return result
    try:
        return run.run(events)
    except Exception as exc:  # noqa: BLE001 - report, don't abort
        run.violation(f"unhandled {type(exc).__name__}: {exc}")
        run.result.ok = False
        return run.result


# ----------------------------------------------------------------------
# Shrinking: greedy event deletion
# ----------------------------------------------------------------------
def shrink_schedule(config: ChaosConfig,
                    events: list[Event]) -> list[Event]:
    """Minimize a failing schedule by greedy event deletion.

    Repeatedly re-executes the schedule with one event removed and
    keeps every removal that still fails, looping to a fixed point
    (bounded by ``config.max_shrink_runs`` executions).  Sound because
    per-client RNG streams make each event's behaviour independent of
    which other events survive.
    """
    def fails(candidate: list[Event]) -> bool:
        return not execute_schedule(config, candidate).ok

    current = list(events)
    runs = 0
    changed = True
    while changed and runs < config.max_shrink_runs:
        changed = False
        index = 0
        while index < len(current) and runs < config.max_shrink_runs:
            candidate = current[:index] + current[index + 1:]
            runs += 1
            if fails(candidate):
                current = candidate
                changed = True
            else:
                index += 1
    return current


def run_chaos(config: ChaosConfig) -> ChaosResult:
    """Generate, execute, and (on failure) shrink one chaos schedule."""
    events = generate_schedule(config)
    result = execute_schedule(config, events)
    if not result.ok and config.shrink:
        result.shrunk = shrink_schedule(config, events)
    return result


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Aggregate outcome of a multi-schedule chaos campaign."""

    schedules: int = 0
    failures: list[ChaosResult] = field(default_factory=list)
    coverage: Counter = field(default_factory=Counter)
    mode_combos: Counter = field(default_factory=Counter)
    recoveries: int = 0
    committed_txns: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def all_failure_kinds_covered(self) -> bool:
        return all(self.coverage.get(kind, 0) > 0 for kind in FAILURE_KINDS)

    def all_mode_combos_run(self) -> bool:
        return all(self.mode_combos.get(combo, 0) > 0
                   for combo in MODE_COMBOS)

    def summary(self) -> dict:
        return {
            "schedules": self.schedules,
            "failed": len(self.failures),
            "recoveries": self.recoveries,
            "committed_txns": self.committed_txns,
            "event_coverage": {k: self.coverage[k]
                               for k in sorted(self.coverage)},
            "mode_combos": {"/".join(combo): self.mode_combos[combo]
                            for combo in MODE_COMBOS},
            "all_failure_kinds_covered": self.all_failure_kinds_covered(),
            "all_mode_combos_run": self.all_mode_combos_run(),
        }


def run_campaign(n_schedules: int, base_seed: int = 0, n_events: int = 40,
                 n_clients: int = 4, n_keys: int = 120,
                 differential: bool = True, shrink: bool = True,
                 standby: bool = False, ack_mode: str = "local_durable",
                 ship_mode: str = "tail", prefetch: str = "off",
                 on_result=None) -> CampaignResult:  # noqa: ANN001
    """Run ``n_schedules`` seeded schedules, cycling through all four
    restart x restore mode combinations."""
    campaign = CampaignResult()
    for index in range(n_schedules):
        restart_mode, restore_mode = MODE_COMBOS[index % len(MODE_COMBOS)]
        config = ChaosConfig(seed=base_seed + index, n_events=n_events,
                             n_clients=n_clients, n_keys=n_keys,
                             restart_mode=restart_mode,
                             restore_mode=restore_mode,
                             standby=standby, ack_mode=ack_mode,
                             ship_mode=ship_mode, prefetch=prefetch,
                             differential=differential, shrink=shrink)
        result = run_chaos(config)
        campaign.schedules += 1
        campaign.coverage.update(result.event_counts)
        campaign.mode_combos[(restart_mode, restore_mode)] += 1
        campaign.recoveries += result.recoveries
        campaign.committed_txns += result.committed_txns
        if not result.ok:
            campaign.failures.append(result)
        if on_result is not None:
            on_result(result)
    return campaign


# ----------------------------------------------------------------------
# Command line
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.harness",
        description="Seeded deterministic chaos simulation with a "
                    "durability oracle.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--events", type=int, default=40)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--keys", type=int, default=120)
    parser.add_argument("--restart-mode", choices=["eager", "on_demand"],
                        default="eager")
    parser.add_argument("--restore-mode", choices=["eager", "on_demand"],
                        default="eager")
    parser.add_argument("--standby", action="store_true",
                        help="attach a hot standby and mix in the "
                             "replication failure kinds (standby crash, "
                             "link loss, failover)")
    parser.add_argument("--ack-mode",
                        choices=["local_durable", "replicated_durable"],
                        default="local_durable",
                        help="commit acknowledgement mode (replicated_"
                             "durable implies --standby)")
    parser.add_argument("--ship-mode", choices=["tail", "segment"],
                        default="tail", help="log shipping granularity")
    parser.add_argument("--prefetch",
                        choices=["off", "sequential", "semantic"],
                        default="off",
                        help="initial prefetch mode; any value but off "
                             "also mixes prefetch ticks and runtime mode "
                             "toggles into the schedule")
    parser.add_argument("--no-differential", action="store_true",
                        help="skip the eager-vs-on-demand byte-identity "
                             "check (faster)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="do not minimize failing schedules")
    parser.add_argument("--campaign", type=int, metavar="N",
                        help="run N schedules (seeds base..base+N-1), "
                             "cycling all four mode combinations")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first seed of a campaign")
    parser.add_argument("--artifacts", metavar="DIR",
                        help="write failing traces into DIR")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-event trace output")
    return parser


def _write_artifact(directory: str, result: ChaosResult) -> str:
    os.makedirs(directory, exist_ok=True)
    name = (f"chaos-seed{result.config.seed}"
            f"-{result.config.restart_mode}-{result.config.restore_mode}"
            f".trace")
    path = os.path.join(directory, name)
    with open(path, "w") as fh:
        fh.write(result.trace_text() + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.campaign is not None:
        def report(result: ChaosResult) -> None:
            status = "ok" if result.ok else "FAIL"
            print(f"seed={result.config.seed} "
                  f"modes={result.config.restart_mode}/"
                  f"{result.config.restore_mode} "
                  f"commits={result.committed_txns} "
                  f"recoveries={result.recoveries} {status}")
            if not result.ok and args.artifacts:
                path = _write_artifact(args.artifacts, result)
                print(f"  trace written to {path}")

        campaign = run_campaign(args.campaign, base_seed=args.base_seed,
                                n_events=args.events,
                                n_clients=args.clients, n_keys=args.keys,
                                differential=not args.no_differential,
                                shrink=not args.no_shrink,
                                standby=args.standby or args.ack_mode
                                == "replicated_durable",
                                ack_mode=args.ack_mode,
                                ship_mode=args.ship_mode,
                                prefetch=args.prefetch,
                                on_result=report)
        summary = campaign.summary()
        print("campaign " + " ".join(
            f"{key}={summary[key]}" for key in
            ("schedules", "failed", "recoveries", "committed_txns")))
        print(f"coverage {summary['event_coverage']}")
        print(f"mode_combos {summary['mode_combos']}")
        if not campaign.all_failure_kinds_covered():
            print("WARNING: not all failure kinds were exercised")
        return 0 if campaign.ok else 1

    config = ChaosConfig(seed=args.seed, n_events=args.events,
                         n_clients=args.clients, n_keys=args.keys,
                         restart_mode=args.restart_mode,
                         restore_mode=args.restore_mode,
                         standby=args.standby or args.ack_mode
                         == "replicated_durable",
                         ack_mode=args.ack_mode,
                         ship_mode=args.ship_mode,
                         prefetch=args.prefetch,
                         differential=not args.no_differential,
                         shrink=not args.no_shrink)
    result = run_chaos(config)
    if args.quiet:
        print(result.trace_text().splitlines()[0])
        print("RESULT " + ("PASS" if result.ok else "FAIL"))
        for violation in result.violations:
            print(f"VIOLATION {violation}")
    else:
        print(result.trace_text())
    if not result.ok and args.artifacts:
        print(f"trace written to {_write_artifact(args.artifacts, result)}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
