"""Unit tests: log-manager truncation and incremental scrubbing."""

import pytest

from repro.detect.scrubber import Scrubber
from repro.engine.database import Database
from repro.sim.clock import SimClock
from repro.sim.iomodel import NULL_PROFILE
from repro.sim.stats import Stats
from repro.wal.log_manager import LogManager
from repro.wal.records import CheckpointData, LogRecord, LogRecordKind
from tests.conftest import fast_config, key_of, value_of


def make_log() -> LogManager:
    return LogManager(SimClock(), NULL_PROFILE, Stats())


class TestLogTruncate:
    def fill(self, log: LogManager, n: int = 10) -> list[int]:
        lsns = [log.append(LogRecord(LogRecordKind.COMMIT, txn_id=i))
                for i in range(n)]
        log.force()
        return lsns

    def test_truncate_removes_head_only(self):
        log = make_log()
        lsns = self.fill(log)
        freed = log.truncate(lsns[5])
        assert freed > 0
        assert not log.has_record(lsns[0])
        assert log.has_record(lsns[5])
        assert log.has_record(lsns[9])
        assert log.truncated_below == lsns[5]

    def test_truncate_never_crosses_master_checkpoint(self):
        log = make_log()
        lsns = self.fill(log, 4)
        log.log_checkpoint_end(CheckpointData())
        master = log.master_checkpoint_lsn
        tail = self.fill(log, 4)
        log.truncate(tail[-1])  # ask for far more than allowed
        assert log.has_record(master)
        assert log.truncated_below <= master
        assert not log.has_record(lsns[0])

    def test_truncate_never_crosses_durable_boundary(self):
        log = make_log()
        self.fill(log, 3)
        unforced = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=99))
        freed = log.truncate(unforced + 10_000)
        assert log.has_record(unforced)
        assert freed >= 0

    def test_retained_bytes_accounting(self):
        log = make_log()
        lsns = self.fill(log)
        before = log.retained_bytes()
        freed = log.truncate(lsns[5])
        assert log.retained_bytes() == before - freed

    def test_truncate_is_idempotent(self):
        log = make_log()
        lsns = self.fill(log)
        log.truncate(lsns[5])
        assert log.truncate(lsns[5]) == 0


class TestIncrementalScrub:
    def build(self):
        db = Database(fast_config())
        tree = db.create_index()
        txn = db.begin()
        for i in range(300):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        return db, tree

    def test_budgeted_pass_covers_whole_device(self):
        db, _tree = self.build()
        scrubber = Scrubber(db.device, db.recovery_manager, db.stats,
                            skip=db.pool.resident)
        last = db.allocated_pages()
        cursor = 0
        total_scanned = 0
        for _slice in range(0, last, 4):
            cursor, report = scrubber.scrub_incremental(cursor, 4, last)
            total_scanned += report.pages_scanned + report.pages_skipped
            if cursor == 0:
                break
        assert total_scanned == last

    def test_incremental_finds_damage_in_its_slice(self):
        db, tree = self.build()
        page, _n = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_bit_rot(victim, nbits=5)
        scrubber = Scrubber(db.device, db.recovery_manager, db.stats,
                            skip=db.pool.resident)
        last = db.allocated_pages()
        cursor, found = 0, 0
        for _slice in range(0, last, 3):
            cursor, report = scrubber.scrub_incremental(cursor, 3, last)
            found += report.failures_repaired
            if cursor == 0:
                break
        assert found == 1
        assert tree.lookup(key_of(0)) == value_of(0, 0)

    def test_empty_range(self):
        db, _tree = self.build()
        scrubber = Scrubber(db.device, db.recovery_manager, db.stats)
        cursor, report = scrubber.scrub_incremental(0, 8, 0)
        assert cursor == 0
        assert report.pages_scanned == 0


class TestHeapAbortInterleaving:
    def test_interleaved_heap_insert_aborts(self):
        """Regression companion to the B-tree slot-shift bug: aborting
        heap inserts in any order must not disturb other records."""
        db = Database(fast_config())
        heap = db.create_heap()
        t_keep = db.begin()
        keep = heap.insert(t_keep, b"keeper")
        db.commit(t_keep)
        t_a = db.begin()
        a = heap.insert(t_a, b"a-record")
        t_b = db.begin()
        b = heap.insert(t_b, b"b-record")
        # Abort in insertion order (a first): b's slot must survive.
        db.abort(t_a)
        db.abort(t_b)
        assert heap.fetch(keep) == b"keeper"
        from repro.errors import KeyNotFound

        for rid in (a, b):
            with pytest.raises(KeyNotFound):
                heap.fetch(rid)
