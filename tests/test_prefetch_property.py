"""Property suite for the prefetcher (predictive read-ahead, PR 9).

Three safety properties and one equivalence property, over random
workloads and speculative-fetch pressure:

* a speculative fetch never touches a page outside the engine's
  declared range (``prefetch_floor`` .. allocated bound);
* a speculative fetch never evicts a pinned or dirty frame, and never
  forces a write-back — whatever room it makes comes from clean,
  unpinned victims only;
* the recovery-on-first-fix work of an on-demand restart runs exactly
  once per pending page, no matter how prefetch ticks, budgeted
  (ranked) drains and demand traffic interleave;
* with the strongest mode on, the state visible after a crash and a
  full recovery is byte-identical to ``prefetch_mode="off"`` — the
  crash matrix's differential oracle
  (:func:`tests.conftest.assert_identical_recovery`), reused verbatim.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.buffer.buffer_pool import BufferPool
from repro.engine.database import Database
from repro.page.page import Page, PageType
from repro.sim.clock import SimClock
from repro.sim.iomodel import NULL_PROFILE
from repro.sim.stats import Stats
from repro.storage.device import StorageDevice
from repro.txn.manager import TransactionManager
from repro.wal.log_manager import LogManager
from repro.wal.ops import OpInsert
from tests.conftest import (
    assert_identical_recovery,
    fast_config,
    key_of,
    value_of,
)

EXAMPLES = max(1, int(os.environ.get("TORTURE_EXAMPLES_MULTIPLIER", "1")))

PAGE_SIZE = 512


def make_pool(capacity: int = 4, n_pages: int = 12):
    """A bare pool over a formatted device (no engine on top)."""
    clock = SimClock()
    stats = Stats()
    device = StorageDevice("d", PAGE_SIZE, 64, clock, NULL_PROFILE, stats)
    log = LogManager(clock, NULL_PROFILE, stats)
    tm = TransactionManager(log, stats)
    pool = BufferPool(device, log, stats, capacity=capacity)
    for page_id in range(n_pages):
        page = Page.format(PAGE_SIZE, page_id, PageType.HEAP)
        page.seal()
        device.write(page_id, page.data)
    return pool, tm, stats


# ----------------------------------------------------------------------
# Property 1: speculative fetches respect the declared page range.
# ----------------------------------------------------------------------
class TestPrefetchBounds:
    @settings(max_examples=30 * EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_pool_refuses_out_of_range_pages(self, data):
        """Every page the pool actually fetches speculatively lies in
        ``[prefetch_floor, page_bound())``; everything else is refused
        and counted, never read."""
        pool, _tm, stats = make_pool(capacity=8, n_pages=12)
        floor = data.draw(st.integers(0, 6), label="floor")
        bound = data.draw(st.integers(floor, 12), label="bound")
        pool.prefetch_floor = floor
        pool.page_bound = lambda: bound
        targets = data.draw(st.lists(st.integers(-2, 20), max_size=40),
                            label="targets")
        refused = 0
        for page_id in targets:
            if pool.prefetch(page_id):
                assert floor <= page_id < bound
            elif not (floor <= page_id < bound):
                refused += 1
        assert all(floor <= p < bound for p in pool.resident_pages())
        assert stats.get("prefetch_skipped_bounds") >= refused > 0 \
            or refused == 0

    @settings(max_examples=10 * EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_engine_never_prefetches_beyond_allocated(self, data):
        """Under a live engine the bound is the allocator's: random
        traffic plus service ticks never leave a speculative frame over
        an unallocated or metadata page."""
        db = Database(fast_config(prefetch_mode="semantic",
                                  buffer_capacity=64))
        tree = db.create_index()
        txn = db.begin()
        for i in range(80):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        probes = data.draw(st.lists(st.integers(0, 79), max_size=40),
                           label="probes")
        for i in probes:
            tree.lookup(key_of(i))
            db.prefetch_tick(data.draw(st.integers(1, 4), label="budget"))
        allocated = db.allocated_pages()
        for page_id in db.pool.resident_pages():
            assert page_id < allocated
        # Force the queue through arbitrary ids as well: the pool must
        # hold the line even if the model someday predicts nonsense.
        for page_id in data.draw(st.lists(st.integers(0, 2048), max_size=20),
                                 label="forced"):
            if db.pool.prefetch(page_id):
                assert db.config.data_start <= page_id < allocated


# ----------------------------------------------------------------------
# Property 2: speculative fetches never displace pinned or dirty work.
# ----------------------------------------------------------------------
class TestPrefetchDisplacement:
    @settings(max_examples=40 * EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_never_evicts_pinned_or_dirty_never_flushes(self, data):
        """Interleave demand fixes, pins, dirtying, flushes and
        speculative fetches over a tiny pool: across every prefetch
        call, pinned frames keep their pins, dirty frames stay resident
        *and dirty* (a speculative read must not force a write-back),
        and capacity holds."""
        pool, tm, stats = make_pool(capacity=4, n_pages=12)
        txn = tm.begin()
        pins: dict[int, int] = {}
        steps = data.draw(st.lists(
            st.tuples(st.sampled_from(
                ["fix", "unfix", "dirty", "flush", "prefetch"]),
                st.integers(0, 11)),
            max_size=60), label="steps")
        for op, page_id in steps:
            if op == "fix":
                # Keep one frame's worth of headroom so demand fixes
                # cannot hit the (orthogonal) all-pinned error.
                if len([p for p, n in pins.items() if n]) < pool.capacity - 1:
                    pool.fix(page_id)
                    pins[page_id] = pins.get(page_id, 0) + 1
            elif op == "unfix":
                if pins.get(page_id):
                    pool.unfix(page_id)
                    pins[page_id] -= 1
            elif op == "dirty":
                if pins.get(page_id):
                    page = pool.page_if_resident(page_id)
                    lsn = tm.log_update(txn, page, 1,
                                        OpInsert(0, b"k", b"v"))
                    pool.mark_dirty(page_id, lsn)
            elif op == "flush":
                if pool.resident(page_id) and not pins.get(page_id):
                    pool.flush_page(page_id)
            else:  # prefetch
                dirty_before = {p for p in pool.resident_pages()
                                if pool.is_dirty(p)}
                pinned_before = {p: n for p, n in pins.items() if n}
                writes_before = stats.get("pages_written_back")
                pool.prefetch(page_id)
                for p, n in pinned_before.items():
                    assert pool.resident(p)
                    assert pool.pin_count(p) == n
                for p in dirty_before:
                    assert pool.resident(p) and pool.is_dirty(p)
                assert stats.get("pages_written_back") == writes_before
            assert len(pool) <= pool.capacity


# ----------------------------------------------------------------------
# Property 3: recovery-on-first-fix runs exactly once per pending page.
# ----------------------------------------------------------------------
class TestPrefetchRecoveryExactlyOnce:
    @settings(max_examples=10 * EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(data=st.data())
    def test_lazy_redo_once_under_interleaving(self, data):
        """However ticks, ranked drains and demand reads interleave,
        the number of lazy-redo executions equals the initial pending
        set — a prefetched page's redo-on-fix never re-runs when the
        demand fix arrives, and vice versa."""
        db = Database(fast_config(prefetch_mode="semantic",
                                  restart_mode="on_demand",
                                  buffer_capacity=64))
        tree = db.create_index()
        model: dict[bytes, bytes] = {}
        txn = db.begin()
        for i in range(120):
            tree.insert(txn, key_of(i), value_of(i, 0))
            model[key_of(i)] = value_of(i, 0)
        db.commit(txn)
        db.flush_everything()
        db.checkpoint()
        for i in range(0, 120, 2):  # train the model on real traffic
            tree.lookup(key_of(i))
        txn = db.begin()
        for i in range(0, 120, 4):  # committed but never flushed
            tree.update(txn, key_of(i), value_of(i, 1))
            model[key_of(i)] = value_of(i, 1)
        db.commit(txn)
        db.crash()
        db.restart(mode="on_demand")
        registry = db.restart_registry
        pending = registry.pending_page_count if registry else 0
        redone_before = db.stats.get("lazy_redo_pages")
        superseded_before = db.stats.get("lazy_redo_superseded")
        tree = db.tree(1)
        actions = data.draw(st.lists(
            st.sampled_from(["tick", "drain", "read"]), max_size=30),
            label="actions")
        for action in actions:
            if action == "tick":
                db.prefetch_tick(data.draw(st.integers(1, 4), label="b"))
            elif action == "drain":
                db.drain_restart(page_budget=2, loser_budget=1)
            else:
                i = data.draw(st.integers(0, 119), label="key")
                assert tree.lookup(key_of(i)) == model[key_of(i)]
        db.finish_restart()
        redone = db.stats.get("lazy_redo_pages") - redone_before
        superseded = db.stats.get("lazy_redo_superseded") - superseded_before
        assert redone + superseded == pending
        assert not db.restart_pending
        assert dict(tree.range_scan()) == model


# ----------------------------------------------------------------------
# Property 4: visible state is byte-identical to prefetch off.
# ----------------------------------------------------------------------
class TestPrefetchDifferentialOracle:
    @settings(max_examples=8 * EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(data=st.data())
    def test_semantic_recovery_byte_identical_to_off(self, data):
        """Two engines run the same drawn workload, one with prefetch
        off and one with the full semantic mode (speculative warmup,
        ranked drains); after crash and complete recovery, the crash
        matrix's oracle demands byte-identical pages, an identical log,
        and identical scans."""
        wave = data.draw(st.lists(st.integers(0, 99), min_size=1,
                                  max_size=30), label="wave")
        reads = data.draw(st.lists(st.integers(0, 99), max_size=30),
                          label="reads")

        def run(mode: str) -> Database:
            db = Database(fast_config(prefetch_mode=mode,
                                      restart_mode="on_demand",
                                      capacity_pages=1024,
                                      buffer_capacity=256))
            tree = db.create_index()
            txn = db.begin()
            for i in range(100):
                tree.insert(txn, key_of(i), value_of(i, 0))
            db.commit(txn)
            db.flush_everything()
            db.checkpoint()
            for i in reads:  # trains the semantic model; reads only
                tree.lookup(key_of(i))
            txn = db.begin()
            for i in wave:  # committed but never flushed
                tree.update(txn, key_of(i), value_of(i, 1))
            db.commit(txn)
            db.crash()
            db.restart(mode="on_demand")
            return db

        off_db = run("off")
        sem_db = run("semantic")
        off_db.finish_restart()
        # The semantic engine recovers the hard way: speculative ticks
        # plus budgeted ranked drains, then the finishing sweep.
        while sem_db.restart_pending:
            sem_db.prefetch_tick(4)
            pages, losers = sem_db.drain_restart(page_budget=3,
                                                 loser_budget=1)
            if pages == 0 and losers == 0:
                break
        sem_db.finish_restart()
        assert_identical_recovery(off_db, sem_db)
