"""Chaos testing for the sharded engine: crashes, partitions, 2PC.

The single-node harness (:mod:`repro.sim.harness`) proves the
durability oracle for one engine.  This harness proves the *sharded*
contract on top of it, with two additional event kinds and one
additional oracle:

* ``shard_crash`` — one shard's engine loses its volatile state.
  ``when="now"`` crashes it between events; the armed variants crash
  it **inside** a cross-shard commit, at a chosen protocol point
  (``after_one_prepare``, ``after_decision``, ``after_partial_commit``)
  via the router's commit hook — cutting the two-phase protocol
  mid-flight exactly where its correctness argument is least obvious.
  A crash before the decision is forced must abort everywhere
  (presumed abort, covering coordinator loss between prepare and
  decision); a crash after it must commit everywhere, however the
  remaining deliveries are interleaved with recoveries.
* ``shard_partition`` — a shard refuses traffic until healed; phase-two
  deliveries queue and must apply on reconnection.
* ``rebalance`` — one hash slot is moved to another shard online via
  :meth:`repro.shard.router.ShardRouter.move_slot` (backup-based
  snapshot, delta catch-up, epoch-logged cutover), optionally with
  committed traffic injected against the still-serving source between
  snapshot and catch-up.  The final oracles assert that no committed
  key was lost to a move, no key is served by two owners, the shards'
  slot views agree exactly with the routing table, and every lock in
  the fleet is released once partitions heal and branches resolve.

The **atomicity oracle** extends the durability model: every
cross-shard transaction's staged effects are either all in the final
state or all absent, with the coordinator's durable decision log as
the referee — and the run also asserts *availability*: while one shard
is down, a probe through a surviving shard must still be served
(``served_while_down``), because per-shard instant restart means a
shard failure degrades one key-range slice, not the service.

Schedules are pure functions of ``(seed, config)`` — same replay and
greedy event-deletion shrinking as the single-node harness.

Command line::

    PYTHONPATH=src python -m repro.sim.shard_harness --seed 7
    PYTHONPATH=src python -m repro.sim.shard_harness --campaign 50
"""

from __future__ import annotations

import argparse
import random
import sys
from collections import Counter
from dataclasses import dataclass, field

from repro.engine.config import EngineConfig
from repro.errors import (
    ReproError,
    ShardUnavailableError,
    TransactionError,
)
from repro.shard.config import ShardConfig
from repro.shard.router import ShardRouter
from repro.sim.scheduler import Event, EventScheduler
from repro.txn.locks import DeadlockError, LockConflict
from repro.workloads.fleet import ClientFleet

#: the two shard-level failure kinds (every generated schedule of
#: sufficient length contains each at least once)
SHARD_FAILURE_KINDS = ("shard_crash", "shard_partition")

#: protocol points an armed shard_crash can cut a 2PC commit at
FAILPOINTS = ("after_one_prepare", "after_decision", "after_partial_commit")

EVENT_MIX = (
    ("client", 44),
    ("xtxn", 20),
    ("shard_crash", 12),
    ("shard_partition", 6),
    ("rebalance", 5),
    ("drain", 5),
    ("checkpoint", 4),
)

VALUE_WIDTH = 24


class ShardChaosInterrupt(Exception):
    """Raised from the router's commit hook to cut a 2PC commit at an
    armed failpoint.  Not a :class:`ReproError`: nothing in the engine
    or router may catch it."""


@dataclass
class ShardChaosConfig:
    """Everything needed to reproduce one sharded chaos run."""

    seed: int = 0
    n_shards: int = 3
    n_events: int = 60
    n_clients: int = 4
    n_keys: int = 80
    restart_mode: str = "on_demand"
    shrink: bool = True
    max_shrink_runs: int = 120
    capacity_pages: int = 1024
    buffer_capacity: int = 48

    def shard_config(self) -> ShardConfig:
        return ShardConfig(
            n_shards=self.n_shards,
            transport="inproc",  # deterministic; process shards cannot
            # be crashed mid-protocol from the outside
            engine=EngineConfig(
                capacity_pages=self.capacity_pages,
                buffer_capacity=self.buffer_capacity,
                restart_mode=self.restart_mode,
            ),
            seed=self.seed,
        )


@dataclass
class ShardChaosResult:
    """Outcome of one executed schedule."""

    config: ShardChaosConfig
    events: list[Event]
    ok: bool = True
    violations: list[str] = field(default_factory=list)
    trace: list[str] = field(default_factory=list)
    event_counts: dict[str, int] = field(default_factory=dict)
    committed_txns: int = 0
    xtxn_committed: int = 0
    interrupted_commits: int = 0
    served_while_down: int = 0
    reopens: int = 0
    rebalances: int = 0
    shrunk: list[Event] | None = None

    def trace_text(self) -> str:
        header = (f"shard-chaos seed={self.config.seed} "
                  f"shards={self.config.n_shards} "
                  f"restart={self.config.restart_mode} "
                  f"events={len(self.events)}")
        lines = [header, *self.trace,
                 "RESULT " + ("PASS" if self.ok else "FAIL")]
        lines.extend(f"VIOLATION {v}" for v in self.violations)
        if self.shrunk is not None:
            lines.append(f"SHRUNK to {len(self.shrunk)} events:")
            lines.extend("  " + event.describe() for event in self.shrunk)
        return "\n".join(lines)


def key_of(i: int) -> bytes:
    return b"k%06d" % i


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------
def generate_schedule(config: ShardChaosConfig) -> list[Event]:
    """Expand ``(seed, config)`` into an ordered shard-chaos schedule;
    long enough schedules contain every shard failure kind and every
    2PC failpoint at least once."""
    rng = random.Random(f"shard-chaos/{config.seed}")
    kinds: list[str] = []
    if config.n_events >= 4 * len(SHARD_FAILURE_KINDS):
        kinds.extend(SHARD_FAILURE_KINDS)
        kinds.extend("shard_crash" for _ in FAILPOINTS)
        kinds.extend("xtxn" for _ in FAILPOINTS)  # fuel for the armed crashes
        kinds.extend(("rebalance", "rebalance"))  # at least two slot moves
    pool = [kind for kind, weight in EVENT_MIX for _ in range(weight)]
    while len(kinds) < config.n_events:
        kinds.append(rng.choice(pool))
    rng.shuffle(kinds)
    # Guaranteed failpoints ride the first three guaranteed crashes.
    forced_failpoints = list(FAILPOINTS)
    scheduler = EventScheduler()
    for step, kind in enumerate(kinds, start=1):
        params = _draw_params(kind, rng, config)
        if kind == "shard_crash" and forced_failpoints:
            params["when"] = forced_failpoints.pop()
        scheduler.schedule(float(step), kind, **params)
    return list(scheduler.drain())


def _draw_params(kind: str, rng: random.Random,
                 config: ShardChaosConfig) -> dict:
    if kind == "client":
        return {"client": rng.randrange(config.n_clients)}
    if kind == "xtxn":
        n_ops = rng.randrange(2, 6)
        keys = tuple(rng.sample(range(config.n_keys),
                                min(n_ops, config.n_keys)))
        return {"keys": keys,
                "rank": rng.randrange(1_000_000),
                "fate": "abort" if rng.random() < 0.1 else "commit"}
    if kind == "shard_crash":
        when = "now" if rng.random() < 0.55 else rng.choice(FAILPOINTS)
        return {"shard": rng.randrange(1_000_000), "when": when,
                "probe": rng.random() < 0.7}
    if kind == "shard_partition":
        return {"shard": rng.randrange(1_000_000)}
    if kind == "rebalance":
        return {"slot": rng.randrange(1_000_000),
                "dst": rng.randrange(1_000_000),
                "traffic": rng.random() < 0.5}
    if kind == "drain":
        return {"pages": rng.randrange(2, 11)}
    if kind == "checkpoint":
        return {"shard": rng.randrange(1_000_000)}
    return {}


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class _Run:
    """One deterministic execution of ``(config, events)``."""

    def __init__(self, config: ShardChaosConfig) -> None:
        self.config = config
        self.router = ShardRouter(config.shard_config())
        self.fleet = ClientFleet(n_clients=config.n_clients,
                                 seed=config.seed,
                                 key_space=config.n_keys)
        self.result = ShardChaosResult(config, [])
        #: committed key -> value shadow
        self.model: dict[bytes, bytes] = {}
        #: gtid -> staged effects of commits cut at a failpoint,
        #: settled from the coordinator's durable decisions at the end
        self.uncertain: dict[int, dict[bytes, bytes | None]] = {}
        #: xids of interrupted transactions whose unprepared branches
        #: still hold locks (released during finalize)
        self._orphan_xids: list[int] = []
        self._armed: tuple[str, int] | None = None  # (failpoint, rank)

    # -- plumbing ------------------------------------------------------
    def trace(self, line: str) -> None:
        self.result.trace.append(line)

    def violation(self, message: str) -> None:
        self.result.ok = False
        self.result.violations.append(message)

    def _crashed_shards(self) -> list[int]:
        return [i for i, shard in enumerate(self.router.shards)
                if shard.worker.db._crashed]

    def _healthy_shard(self, avoid: int) -> int | None:
        for i, shard in enumerate(self.router.shards):
            if i != avoid and not shard.partitioned \
                    and not shard.worker.db._crashed:
                return i
        return None

    # -- workload ------------------------------------------------------
    def _run_txn(self, staged_keys: list[tuple[bytes, bytes | None]],
                 fate: str, tag: str) -> None:
        """One transaction through the router; updates the model on a
        returned commit, tallies refusals and interrupts otherwise."""
        txn = self.router.txn()
        staged: dict[bytes, bytes | None] = {}
        gtid_before = self.router.coordinator._next_gtid
        try:
            for key, value in staged_keys:
                if value is None:
                    if txn.delete(key):
                        staged[key] = None
                else:
                    txn.put(key, value)
                    staged[key] = value
            if fate == "abort":
                txn.abort()
                return
            cross = len(txn.branches) > 1
            txn.commit()
        except ShardUnavailableError as exc:
            self.trace(f"  {tag} refused: {exc}")
            self._abandon(txn)
            return
        except (LockConflict, DeadlockError):
            self.trace(f"  {tag} lock conflict")
            self._abandon(txn)
            return
        except ShardChaosInterrupt:
            # The armed failpoint fired mid-commit.  The protocol's
            # fate is already sealed by the decision log: a durable
            # commit decision *will* apply (every branch holds its
            # locks until its resolution arrives, so no later writer
            # can slip in front), anything else is presumed abort.
            # Settling the model here keeps it in serialization order.
            gtid = gtid_before  # the gtid this commit allocated
            verdict = self.router.coordinator.decision_of(gtid)
            if verdict == "commit":
                for key, value in staged.items():
                    if value is None:
                        self.model.pop(key, None)
                    else:
                        self.model[key] = value
            self.uncertain[gtid] = staged
            self._orphan_xids.append(txn.xid)
            self.result.interrupted_commits += 1
            self.trace(f"  {tag} interrupted mid-2PC "
                       f"(gtid {gtid}: {verdict})")
            return
        if staged:
            for key, value in staged.items():
                if value is None:
                    self.model.pop(key, None)
                else:
                    self.model[key] = value
        self.result.committed_txns += 1
        if cross:
            self.result.xtxn_committed += 1

    def _abandon(self, txn) -> None:  # noqa: ANN001
        try:
            txn.abort()
        except (ReproError, TransactionError):
            pass  # unreachable branches get undone by analysis

    # -- event handlers ------------------------------------------------
    def _do_client(self, payload: dict) -> None:
        action = self.fleet.next_action(payload["client"])
        staged_keys: list[tuple[bytes, bytes | None]] = []
        for verb, key_index, value in action.ops:
            key = key_of(key_index)
            if verb == "lookup":
                continue  # reads don't stage anything in this harness
            if verb == "delete":
                staged_keys.append((key, None))
            else:
                staged_keys.append(
                    (key, value[:VALUE_WIDTH].ljust(VALUE_WIDTH, b".")))
        if not staged_keys:
            return
        self._run_txn(staged_keys, action.fate,
                      f"client{action.client}.{action.seq}")

    def _do_xtxn(self, payload: dict) -> None:
        value = (b"x%d" % payload["rank"])[:VALUE_WIDTH].ljust(
            VALUE_WIDTH, b".")
        staged_keys = [(key_of(i), value) for i in payload["keys"]]
        self._run_txn(staged_keys, payload["fate"], "xtxn")

    def _do_shard_crash(self, payload: dict) -> None:
        target = payload["shard"] % self.config.n_shards
        if payload["when"] == "now":
            # Through the worker, not the engine: a shard crash wipes
            # the whole worker's volatile state (live and prepared
            # branch tables included), like losing the process.
            self.router.shards[target].worker.execute(("crash",))
            self.trace(f"  shard {target} crashed")
            self._probe_availability(target, payload)
            return
        # Arm the failpoint; the next cross-shard commit trips it.
        self._armed = (payload["when"], target)
        self.router.commit_hook = self._hook
        self.trace(f"  armed {payload['when']} against shard {target}")

    def _hook(self, stage: str, shard_id: int | None) -> None:
        if self._armed is None:
            return
        when, rank = self._armed
        fire = ((when == "after_one_prepare" and stage == "after_prepare")
                or (when == "after_decision" and stage == "after_decision")
                or (when == "after_partial_commit"
                    and stage == "after_commit"))
        if not fire:
            return
        self._armed = None
        self.router.commit_hook = None
        # Crash the shard that just acted (or, at the decision point,
        # the armed target) — then cut the coordinator's protocol.
        target = shard_id if shard_id is not None \
            else rank % self.config.n_shards
        self.router.shards[target].worker.execute(("crash",))
        self.trace(f"  failpoint {when}: crashed shard {target}")
        raise ShardChaosInterrupt(when)

    def _probe_availability(self, down: int, payload: dict) -> None:
        """While ``down`` is down, a surviving shard must keep serving;
        optionally probe the crashed shard too, which must come back
        via on-demand reopen while the probe waits."""
        healthy = self._healthy_shard(avoid=down)
        if healthy is not None:
            try:
                self.router._call(healthy, "ping")
                self.result.served_while_down += 1
            except ReproError as exc:
                self.violation(
                    f"healthy shard {healthy} refused service while "
                    f"shard {down} was down: {exc}")
        if payload.get("probe"):
            # Probe with a key the crashed shard *owns* — a foreign
            # key would be refused on ownership grounds instead of
            # exercising the reopen path.
            probe_key = next(
                (key_of(i) for i in range(self.config.n_keys)
                 if self.router.shard_of(key_of(i)) == down), None)
            if probe_key is None:
                return  # rebalancing moved every live key elsewhere
            try:
                self.router._call(down, "get", probe_key)
            except ShardUnavailableError:
                pass  # partitioned at the same time; fine
            except ReproError as exc:
                self.violation(
                    f"on-demand reopen of shard {down} failed: {exc}")

    def _do_rebalance(self, payload: dict) -> None:
        """Move one slot online; optionally inject committed traffic
        against the still-serving source between the snapshot install
        and the delta catch-up (the window the log-chain delta must
        carry across the cutover)."""
        router = self.router
        slot = payload["slot"] % router.config.n_slots
        dst = payload["dst"] % self.config.n_shards
        src = router.routing.owner_of(slot)
        if src == dst:
            dst = (dst + 1) % self.config.n_shards
        hook = None
        if payload.get("traffic"):
            slot_keys = [key_of(i) for i in range(self.config.n_keys)
                         if router.slot_of(key_of(i)) == slot][:3]

            def hook() -> None:
                for j, key in enumerate(slot_keys):
                    value = (b"r%d.%d" % (slot, j))[:VALUE_WIDTH].ljust(
                        VALUE_WIDTH, b".")
                    router.put(key, value)
                    self.model[key] = value
        try:
            epoch = router.move_slot(slot, dst, copy_hook=hook)
        except ShardUnavailableError as exc:
            self.trace(f"  rebalance of slot {slot} refused: {exc}")
            return
        except (LockConflict, DeadlockError) as exc:
            self.trace(f"  rebalance of slot {slot} lock conflict: {exc}")
            return
        self.result.rebalances += 1
        self.trace(f"  slot {slot}: shard {src} -> shard {dst} "
                   f"(epoch {epoch})")

    def _do_shard_partition(self, payload: dict) -> None:
        partitioned = [i for i, s in enumerate(self.router.shards)
                       if s.partitioned]
        if partitioned:
            for i in partitioned:
                self.router.shards[i].partitioned = False
            self.trace(f"  healed partition of shards {partitioned}")
            return
        target = payload["shard"] % self.config.n_shards
        self.router.shards[target].partitioned = True
        self.trace(f"  partitioned shard {target}")

    def _do_drain(self, payload: dict) -> None:
        for i, shard in enumerate(self.router.shards):
            if shard.partitioned or shard.worker.db._crashed:
                continue
            self.router._call(i, "drain", payload["pages"], None)

    def _do_checkpoint(self, payload: dict) -> None:
        target = payload["shard"] % self.config.n_shards
        shard = self.router.shards[target]
        if shard.partitioned or shard.worker.db._crashed:
            return
        self.router._call(target, "checkpoint")

    # -- finalize: recover everything, settle 2PC, check ---------------
    def finalize(self) -> None:
        router = self.router
        # 1. Heal partitions and disarm any unfired failpoint.
        for shard in router.shards:
            shard.partitioned = False
        router.commit_hook = None
        self._armed = None
        # 2. Reopen every crashed shard (on-demand instant restart +
        #    decision-log resolution of recovered in-doubt branches).
        for i in self._crashed_shards():
            router._reopen(i)
        # 3. Release locks of interrupted transactions' unprepared
        #    branches (prepared ones are settled by the decisions).
        for xid in self._orphan_xids:
            for i in range(self.config.n_shards):
                try:
                    router._call(i, "txn_abort", xid)
                except (ReproError, TransactionError):
                    pass
        # 4. Coordinator recovery: re-deliver every durable decision
        #    (resolution is idempotent), then presumed-abort whatever
        #    is still in doubt anywhere.
        for i in range(self.config.n_shards):
            router._flush_pending(i)
        for decision in router.coordinator.durable_decisions():
            for i in decision.participants:
                router._call(i, "resolve", decision.gtid,
                             decision.verdict == "commit")
        for i in range(self.config.n_shards):
            for gtid in router._call(i, "indoubt"):
                verdict = router.coordinator.decision_of(gtid)
                router._call(i, "resolve", gtid, verdict == "commit")
        # 5. Atomicity check: after coordinator recovery nothing may
        #    remain in doubt anywhere (the model side — all-or-none
        #    visibility of each uncertain gtid's staged effects — was
        #    settled at interruption time and is enforced by the final
        #    state comparison below).
        for i in range(self.config.n_shards):
            leftover = router._call(i, "indoubt")
            if leftover:
                self.violation(
                    f"shard {i} still in doubt about {leftover} after "
                    f"coordinator recovery")
        # 5b. Finish pending on-demand restart work everywhere: loser
        #     undo is lock-driven and the oracle scan takes no locks,
        #     so un-drained losers would masquerade as durable state.
        for i in range(self.config.n_shards):
            router._call(i, "finish_restart")
        # 5c. Rebalancing oracles: with partitions healed and every
        #     branch resolved, no lock may survive anywhere in the
        #     fleet, and the shards' slot views must partition the
        #     slot space exactly as the routing table says.
        for i in range(self.config.n_shards):
            held = router._call(i, "locks")
            if held:
                self.violation(
                    f"shard {i} still holds locks {held[:5]} after "
                    f"full recovery")
        assignments = router.routing.assignments()
        for i in range(self.config.n_shards):
            owned = router._call(i, "owned_slots")
            expected = [s for s, owner in enumerate(assignments)
                        if owner == i]
            if owned != expected:
                self.violation(
                    f"shard {i} slot view disagrees with the routing "
                    f"table: {owned} != {expected}")
        # 6. The oracle: global visible state == the settled model —
        #    and single ownership: the merged scan may serve each
        #    committed key exactly once (a moved slot's leftovers must
        #    never surface from the old owner).
        merged = router.scan()
        if len(merged) != len({key for key, _ in merged}):
            seen: set[bytes] = set()
            dups = sorted({key for key, _ in merged
                           if key in seen or seen.add(key)})
            self.violation(
                f"keys served by two owners: {dups[:5]}")
        state = dict(merged)
        if state != self.model:
            missing = sorted(set(self.model) - set(state))[:5]
            extra = sorted(set(state) - set(self.model))[:5]
            wrong = sorted(k for k in set(state) & set(self.model)
                           if state[k] != self.model[k])[:5]
            self.violation(
                f"final state diverged from model: missing={missing} "
                f"extra={extra} wrong={wrong}")
        self.result.reopens = router.reopens

    # -- driver --------------------------------------------------------
    def run(self, events: list[Event]) -> ShardChaosResult:
        self.result.events = events
        self.result.event_counts = dict(Counter(e.kind for e in events))
        handlers = {
            "client": self._do_client,
            "xtxn": self._do_xtxn,
            "shard_crash": self._do_shard_crash,
            "shard_partition": self._do_shard_partition,
            "rebalance": self._do_rebalance,
            "drain": self._do_drain,
            "checkpoint": self._do_checkpoint,
        }
        try:
            for event in events:
                self.trace(event.describe())
                handlers[event.kind](dict(event.payload))
            self.finalize()
        except Exception as exc:  # noqa: BLE001 - any escape is a failure
            self.violation(f"harness exception: {type(exc).__name__}: {exc}")
        finally:
            try:
                self.router.close()
            except Exception:  # noqa: BLE001
                pass
        return self.result


def execute_schedule(config: ShardChaosConfig,
                     events: list[Event]) -> ShardChaosResult:
    """Pure function of ``(config, events)`` — bit-identical traces."""
    return _Run(config).run(events)


def shrink_schedule(config: ShardChaosConfig,
                    events: list[Event]) -> list[Event]:
    """Greedy event deletion: keep removals that still fail."""
    current = list(events)
    runs = 0
    improved = True
    while improved and runs < config.max_shrink_runs:
        improved = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            runs += 1
            if runs > config.max_shrink_runs:
                break
            if not execute_schedule(config, candidate).ok:
                current = candidate
                improved = True
                break
    return current


def run_chaos(config: ShardChaosConfig) -> ShardChaosResult:
    """Generate, execute, and (on failure) shrink one seed's schedule."""
    events = generate_schedule(config)
    result = execute_schedule(config, events)
    if not result.ok and config.shrink:
        result.shrunk = shrink_schedule(config, events)
    return result


@dataclass
class ShardCampaignResult:
    """Aggregate of a multi-seed campaign."""

    runs: int = 0
    failures: list[ShardChaosResult] = field(default_factory=list)
    committed_txns: int = 0
    xtxn_committed: int = 0
    interrupted_commits: int = 0
    served_while_down: int = 0
    reopens: int = 0
    rebalances: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_campaign(n_seeds: int, base: ShardChaosConfig | None = None,
                 start_seed: int = 0) -> ShardCampaignResult:
    campaign = ShardCampaignResult()
    template = base if base is not None else ShardChaosConfig()
    for seed in range(start_seed, start_seed + n_seeds):
        config = ShardChaosConfig(
            seed=seed, n_shards=template.n_shards,
            n_events=template.n_events, n_clients=template.n_clients,
            n_keys=template.n_keys, restart_mode=template.restart_mode,
            shrink=template.shrink,
            max_shrink_runs=template.max_shrink_runs,
            capacity_pages=template.capacity_pages,
            buffer_capacity=template.buffer_capacity)
        result = run_chaos(config)
        campaign.runs += 1
        campaign.committed_txns += result.committed_txns
        campaign.xtxn_committed += result.xtxn_committed
        campaign.interrupted_commits += result.interrupted_commits
        campaign.served_while_down += result.served_while_down
        campaign.reopens += result.reopens
        campaign.rebalances += result.rebalances
        if not result.ok:
            campaign.failures.append(result)
    return campaign


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded chaos harness (2PC + per-shard restart)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--events", type=int, default=60)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--restart", choices=("eager", "on_demand"),
                        default="on_demand")
    parser.add_argument("--campaign", type=int, default=0,
                        help="run this many seeds instead of one")
    parser.add_argument("--trace", action="store_true")
    args = parser.parse_args(argv)
    base = ShardChaosConfig(seed=args.seed, n_events=args.events,
                            n_shards=args.shards,
                            restart_mode=args.restart)
    if args.campaign:
        campaign = run_campaign(args.campaign, base, start_seed=args.seed)
        print(f"campaign: {campaign.runs} runs, "
              f"{campaign.committed_txns} commits "
              f"({campaign.xtxn_committed} cross-shard), "
              f"{campaign.interrupted_commits} interrupted mid-2PC, "
              f"{campaign.reopens} shard reopens, "
              f"{campaign.rebalances} slot moves, "
              f"{campaign.served_while_down} served-while-down probes, "
              f"{len(campaign.failures)} failures")
        for failure in campaign.failures:
            print(failure.trace_text())
        return 0 if campaign.ok else 1
    result = run_chaos(base)
    if args.trace or not result.ok:
        print(result.trace_text())
    else:
        print(f"seed {args.seed}: PASS "
              f"({result.committed_txns} commits, "
              f"{result.xtxn_committed} cross-shard, "
              f"{result.interrupted_commits} interrupted, "
              f"{result.reopens} reopens, "
              f"{result.rebalances} slot moves)")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
