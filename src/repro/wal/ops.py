"""Page operations: the redo/undo units carried by update log records.

Each operation knows how to apply itself to a page ("redo" is physical,
Section 5.1.2) and how to physically reverse itself ("undo" for pages
that have not structurally changed; logical undo through the index is
handled one level up, in the transaction manager).

Operations serialize to explicit byte formats — no pickling — so log
volume is measured honestly and the log could in principle be read by
another implementation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import LogError
from repro.page.page import Page, PageType
from repro.page.slotted import Record, SlottedPage


def _pack_bytes(buf: bytes) -> bytes:
    return struct.pack("<I", len(buf)) + buf


def _unpack_bytes(data: bytes, offset: int) -> tuple[bytes, int]:
    (length,) = struct.unpack_from("<I", data, offset)
    start = offset + 4
    return data[start:start + length], start + length


class PageOp:
    """Base class for operations applied to a single page."""

    kind: int = -1

    def apply_redo(self, page: Page) -> None:
        raise NotImplementedError

    def apply_undo(self, page: Page) -> None:
        raise NotImplementedError

    def encode(self) -> bytes:
        raise NotImplementedError

    @staticmethod
    def decode(data: bytes) -> "PageOp":
        if not data:
            raise LogError("empty page-op payload")
        kind = data[0]
        try:
            cls = _OP_REGISTRY[kind]
        except KeyError:
            raise LogError(f"unknown page-op kind {kind}") from None
        return cls._decode_body(data)

    @classmethod
    def _decode_body(cls, data: bytes) -> "PageOp":
        raise NotImplementedError


@dataclass(frozen=True)
class OpInsert(PageOp):
    """Insert a record at a slot position."""

    slot: int
    key: bytes
    value: bytes
    ghost: bool = False

    kind = 1

    def apply_redo(self, page: Page) -> None:
        SlottedPage(page).insert(self.slot, Record(self.key, self.value, self.ghost))

    def apply_undo(self, page: Page) -> None:
        SlottedPage(page).remove(self.slot)

    def encode(self) -> bytes:
        return (struct.pack("<BHB", self.kind, self.slot, int(self.ghost))
                + _pack_bytes(self.key) + _pack_bytes(self.value))

    @classmethod
    def _decode_body(cls, data: bytes) -> "OpInsert":
        _kind, slot, ghost = struct.unpack_from("<BHB", data, 0)
        key, pos = _unpack_bytes(data, 4)
        value, _pos = _unpack_bytes(data, pos)
        return cls(slot, key, value, bool(ghost))


@dataclass(frozen=True)
class OpDelete(PageOp):
    """Physically remove the record at a slot (stores it for undo)."""

    slot: int
    key: bytes
    value: bytes
    ghost: bool = False

    kind = 2

    def apply_redo(self, page: Page) -> None:
        SlottedPage(page).remove(self.slot)

    def apply_undo(self, page: Page) -> None:
        SlottedPage(page).insert(self.slot, Record(self.key, self.value, self.ghost))

    def encode(self) -> bytes:
        return (struct.pack("<BHB", self.kind, self.slot, int(self.ghost))
                + _pack_bytes(self.key) + _pack_bytes(self.value))

    @classmethod
    def _decode_body(cls, data: bytes) -> "OpDelete":
        _kind, slot, ghost = struct.unpack_from("<BHB", data, 0)
        key, pos = _unpack_bytes(data, 4)
        value, _pos = _unpack_bytes(data, pos)
        return cls(slot, key, value, bool(ghost))


@dataclass(frozen=True)
class OpUpdateValue(PageOp):
    """Replace the value of the record at a slot."""

    slot: int
    old_value: bytes
    new_value: bytes

    kind = 3

    def apply_redo(self, page: Page) -> None:
        SlottedPage(page).update_value(self.slot, self.new_value)

    def apply_undo(self, page: Page) -> None:
        SlottedPage(page).update_value(self.slot, self.old_value)

    def encode(self) -> bytes:
        return (struct.pack("<BH", self.kind, self.slot)
                + _pack_bytes(self.old_value) + _pack_bytes(self.new_value))

    @classmethod
    def _decode_body(cls, data: bytes) -> "OpUpdateValue":
        _kind, slot = struct.unpack_from("<BH", data, 0)
        old, pos = _unpack_bytes(data, 3)
        new, _pos = _unpack_bytes(data, pos)
        return cls(slot, old, new)


@dataclass(frozen=True)
class OpSetGhost(PageOp):
    """Toggle the ghost bit of the record at a slot.

    Logical deletion turns a record into a ghost; ghost removal (a
    system transaction) later reclaims the space with :class:`OpDelete`.
    """

    slot: int
    old_ghost: bool
    new_ghost: bool

    kind = 4

    def apply_redo(self, page: Page) -> None:
        SlottedPage(page).mark_ghost(self.slot, self.new_ghost)

    def apply_undo(self, page: Page) -> None:
        SlottedPage(page).mark_ghost(self.slot, self.old_ghost)

    def encode(self) -> bytes:
        return struct.pack("<BHBB", self.kind, self.slot,
                           int(self.old_ghost), int(self.new_ghost))

    @classmethod
    def _decode_body(cls, data: bytes) -> "OpSetGhost":
        _kind, slot, old, new = struct.unpack_from("<BHBB", data, 0)
        return cls(slot, bool(old), bool(new))


@dataclass(frozen=True)
class OpWriteBytes(PageOp):
    """Raw byte-range write within a page (header fields, fences...).

    Used for structural metadata that is not record-shaped, e.g. a
    B-tree node's fence keys or foster pointer.
    """

    offset: int
    old_bytes: bytes
    new_bytes: bytes

    kind = 5

    def __post_init__(self) -> None:
        if len(self.old_bytes) != len(self.new_bytes):
            raise ValueError("byte-range op must preserve length")

    def apply_redo(self, page: Page) -> None:
        end = self.offset + len(self.new_bytes)
        page.data[self.offset:end] = self.new_bytes

    def apply_undo(self, page: Page) -> None:
        end = self.offset + len(self.old_bytes)
        page.data[self.offset:end] = self.old_bytes

    def encode(self) -> bytes:
        return (struct.pack("<BH", self.kind, self.offset)
                + _pack_bytes(self.old_bytes) + _pack_bytes(self.new_bytes))

    @classmethod
    def _decode_body(cls, data: bytes) -> "OpWriteBytes":
        _kind, offset = struct.unpack_from("<BH", data, 0)
        old, pos = _unpack_bytes(data, 3)
        new, _pos = _unpack_bytes(data, pos)
        return cls(offset, old, new)


@dataclass(frozen=True)
class OpInitSlotted(PageOp):
    """Format a page as an empty slotted page of a given type.

    "When a data page is reformatted ... it has the same effect as a
    successful write operation: 'redo' for all prior log records is not
    required" (Section 5.1.2).  The formatting log record can also
    serve as the page's backup image (Section 5.2.1).
    """

    page_type: PageType

    kind = 6

    def apply_redo(self, page: Page) -> None:
        page.page_type = self.page_type
        slotted = SlottedPage(page)
        slotted.initialize()

    def apply_undo(self, page: Page) -> None:
        # Formatting runs in system transactions, which never undo
        # individual operations: they roll forward or vanish entirely.
        raise LogError("page formatting cannot be undone")

    def encode(self) -> bytes:
        return struct.pack("<BB", self.kind, int(self.page_type))

    @classmethod
    def _decode_body(cls, data: bytes) -> "OpInitSlotted":
        _kind, ptype = struct.unpack_from("<BB", data, 0)
        return cls(PageType(ptype))


@dataclass(frozen=True)
class OpInverse(PageOp):
    """The inverse of another operation, as a redo-only op.

    Compensation log records (CLRs) are redo-only: replaying a CLR must
    re-apply the *undo* of the original operation.  Wrapping the
    original op keeps CLRs in the same serialization scheme.
    """

    original: PageOp

    kind = 99

    def apply_redo(self, page: Page) -> None:
        self.original.apply_undo(page)

    def apply_undo(self, page: Page) -> None:
        raise LogError("compensation operations are never undone")

    def encode(self) -> bytes:
        return bytes([self.kind]) + self.original.encode()

    @classmethod
    def _decode_body(cls, data: bytes) -> "OpInverse":
        return cls(PageOp.decode(data[1:]))


_OP_REGISTRY: dict[int, type[PageOp]] = {
    cls.kind: cls
    for cls in (OpInsert, OpDelete, OpUpdateValue, OpSetGhost,
                OpWriteBytes, OpInitSlotted, OpInverse)
}
