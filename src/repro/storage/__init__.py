"""Simulated storage substrate.

The paper's failure class is defined by what the *storage stack* can do
to a page: latent sector errors (explicit read failures), silent bit
rot, lost writes, misdirected writes, and flash wear-out.  This package
provides a page-granular simulated device with deterministic, seeded
injection of all of those fault kinds, plus the composite devices the
paper's motivation discusses (mirrored pairs and RAID-5 arrays).

Every read and write charges its modeled cost to a shared
:class:`~repro.sim.SimClock`, so experiments can report the simulated
durations the paper reasons about.
"""

from repro.storage.badblocks import BadBlockList
from repro.storage.device import DeviceReadError, DeviceWriteError, StorageDevice
from repro.storage.faults import FaultInjector, FaultKind
from repro.storage.mirror import MirroredDevice
from repro.storage.raid import Raid5Array

__all__ = [
    "StorageDevice",
    "DeviceReadError",
    "DeviceWriteError",
    "FaultInjector",
    "FaultKind",
    "BadBlockList",
    "MirroredDevice",
    "Raid5Array",
]
