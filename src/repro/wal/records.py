"""Typed log records with explicit byte serialization.

Record header (45 bytes)::

    total_len      u32   length of the whole serialized record
    kind           u8    LogRecordKind
    txn_id         i64   owning transaction (0 = none)
    prev_lsn       i64   per-transaction chain (Section 5.1.1)
    page_id        i64   affected page (-1 = none)
    page_prev_lsn  i64   per-page chain (Section 5.1.4)
    index_id       i64   owning index/table (0 = none)

followed by a kind-specific payload.  The ``page_prev_lsn`` field is
the heart of the paper's recovery design: it lets single-page recovery
walk backwards from the current PageLSN to the last backup without
scanning the log.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import LogError
from repro.wal.ops import PageOp, _pack_bytes, _unpack_bytes

_HEADER = struct.Struct("<IBqqqqq")
HEADER_SIZE = _HEADER.size


class LogRecordKind(enum.IntEnum):
    """All record kinds written by the engine."""

    UPDATE = 1              #: page update by a user or system transaction
    COMPENSATION = 2        #: CLR written during rollback
    COMMIT = 3              #: user-transaction commit (forces the log)
    ABORT = 4               #: transaction rollback finished
    TXN_END = 5             #: transaction fully finished
    SYS_COMMIT = 6          #: system-transaction commit (no log force)
    FORMAT_PAGE = 7         #: page (re)formatted after allocation
    FULL_PAGE_IMAGE = 8     #: compressed full image (in-log page backup)
    PRI_UPDATE = 9          #: page-recovery-index update == completed write
    CHECKPOINT_BEGIN = 10
    CHECKPOINT_END = 11
    BACKUP_PAGE = 12        #: an explicit per-page backup copy was taken
    BACKUP_FULL = 13        #: a full database backup completed


class BackupRefKind(enum.IntEnum):
    """Where a page's most recent backup image lives (Figure 7)."""

    NONE = 0
    PAGE_COPY = 1      #: explicit page copy; value = backup-store location
    LOG_IMAGE = 2      #: full page image in the log; value = its LSN
    FULL_BACKUP = 3    #: member of a full database backup; value = backup id
    FORMAT_RECORD = 4  #: formatting log record; value = its LSN


@dataclass(frozen=True)
class BackupRef:
    """Reference to a page backup image (one of Figure 7's alternatives)."""

    kind: BackupRefKind
    value: int

    @classmethod
    def none(cls) -> "BackupRef":
        return cls(BackupRefKind.NONE, 0)

    @classmethod
    def page_copy(cls, location: int) -> "BackupRef":
        return cls(BackupRefKind.PAGE_COPY, location)

    @classmethod
    def log_image(cls, lsn: int) -> "BackupRef":
        return cls(BackupRefKind.LOG_IMAGE, lsn)

    @classmethod
    def full_backup(cls, backup_id: int) -> "BackupRef":
        return cls(BackupRefKind.FULL_BACKUP, backup_id)

    @classmethod
    def format_record(cls, lsn: int) -> "BackupRef":
        return cls(BackupRefKind.FORMAT_RECORD, lsn)


class UndoAction(enum.IntEnum):
    """Logical undo actions (compensation, Section 5.1.2: 'undo' is
    logical, i.e., applies to the same key values)."""

    NONE = 0
    DELETE_KEY = 1     #: compensate an insert
    INSERT_KEY = 2     #: compensate a delete
    RESTORE_VALUE = 3  #: compensate an update


@dataclass(frozen=True)
class LogicalUndo:
    """Key-level undo information carried by user-transaction updates."""

    action: UndoAction
    key: bytes
    value: bytes = b""

    def encode(self) -> bytes:
        return (struct.pack("<B", int(self.action))
                + _pack_bytes(self.key) + _pack_bytes(self.value))

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["LogicalUndo", int]:
        action = UndoAction(data[offset])
        key, pos = _unpack_bytes(data, offset + 1)
        value, pos = _unpack_bytes(data, pos)
        return cls(action, key, value), pos


@dataclass
class CheckpointData:
    """Payload of a CHECKPOINT_END record.

    The two ARIES checkpoint tables (dirty pages, active transactions)
    plus ``pri_images``: the LSNs of the full-page-image records the
    checkpoint wrote for each page-recovery-index region page — restart
    uses them to locate (and if necessary repair) the persisted PRI
    (Section 5.2.6).
    """

    dirty_pages: dict[int, int] = field(default_factory=dict)
    active_txns: list[tuple[int, int, bool]] = field(default_factory=list)
    pri_images: dict[int, int] = field(default_factory=dict)

    def encode(self) -> bytes:
        out = [struct.pack("<III", len(self.dirty_pages),
                           len(self.active_txns), len(self.pri_images))]
        for page_id, rec_lsn in sorted(self.dirty_pages.items()):
            out.append(struct.pack("<qq", page_id, rec_lsn))
        for txn_id, last_lsn, is_system in self.active_txns:
            out.append(struct.pack("<qqB", txn_id, last_lsn, int(is_system)))
        for page_id, lsn in sorted(self.pri_images.items()):
            out.append(struct.pack("<qq", page_id, lsn))
        return b"".join(out)

    @classmethod
    def decode(cls, data: bytes) -> "CheckpointData":
        n_dirty, n_txns, n_images = struct.unpack_from("<III", data, 0)
        pos = 12
        dirty = {}
        for _ in range(n_dirty):
            page_id, rec_lsn = struct.unpack_from("<qq", data, pos)
            dirty[page_id] = rec_lsn
            pos += 16
        txns = []
        for _ in range(n_txns):
            txn_id, last_lsn, is_system = struct.unpack_from("<qqB", data, pos)
            txns.append((txn_id, last_lsn, bool(is_system)))
            pos += 17
        images = {}
        for _ in range(n_images):
            page_id, lsn = struct.unpack_from("<qq", data, pos)
            images[page_id] = lsn
            pos += 16
        return cls(dirty, txns, images)


@dataclass
class LogRecord:
    """One recovery-log record.

    ``lsn`` is assigned by the log manager at append time.  Fields that
    do not apply to a given kind are left at their defaults.
    """

    kind: LogRecordKind
    txn_id: int = 0
    prev_lsn: int = 0
    page_id: int = -1
    page_prev_lsn: int = 0
    index_id: int = 0
    lsn: int = 0

    # Kind-specific payloads.
    op: PageOp | None = None                 #: UPDATE / COMPENSATION / FORMAT
    undo: LogicalUndo | None = None          #: UPDATE by user transactions
    undo_next_lsn: int = 0                   #: COMPENSATION
    image: bytes | None = None               #: FULL_PAGE_IMAGE (compressed)
    page_lsn: int = 0                        #: PRI_UPDATE / BACKUP_PAGE
    backup_ref: BackupRef | None = None      #: PRI_UPDATE / BACKUP_PAGE
    checkpoint: CheckpointData | None = None #: CHECKPOINT_END
    backup_id: int = 0                       #: BACKUP_FULL

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        payload = self._encode_payload()
        total = HEADER_SIZE + len(payload)
        header = _HEADER.pack(total, int(self.kind), self.txn_id,
                              self.prev_lsn, self.page_id,
                              self.page_prev_lsn, self.index_id)
        return header + payload

    def _encode_payload(self) -> bytes:
        kind = self.kind
        if kind in (LogRecordKind.UPDATE,):
            flags = (1 if self.op else 0) | (2 if self.undo else 0)
            out = [struct.pack("<B", flags)]
            if self.op:
                out.append(_pack_bytes(self.op.encode()))
            if self.undo:
                out.append(self.undo.encode())
            return b"".join(out)
        if kind == LogRecordKind.COMPENSATION:
            out = [struct.pack("<q", self.undo_next_lsn)]
            out.append(_pack_bytes(self.op.encode() if self.op else b""))
            return b"".join(out)
        if kind == LogRecordKind.FORMAT_PAGE:
            return _pack_bytes(self.op.encode() if self.op else b"")
        if kind == LogRecordKind.FULL_PAGE_IMAGE:
            return struct.pack("<q", self.page_lsn) + _pack_bytes(self.image or b"")
        if kind in (LogRecordKind.PRI_UPDATE, LogRecordKind.BACKUP_PAGE):
            ref = self.backup_ref or BackupRef.none()
            return struct.pack("<qBq", self.page_lsn, int(ref.kind), ref.value)
        if kind == LogRecordKind.CHECKPOINT_END:
            data = (self.checkpoint or CheckpointData()).encode()
            return _pack_bytes(data)
        if kind == LogRecordKind.BACKUP_FULL:
            return struct.pack("<q", self.backup_id)
        # COMMIT, ABORT, TXN_END, SYS_COMMIT, CHECKPOINT_BEGIN
        return b""

    @classmethod
    def decode(cls, data: bytes) -> "LogRecord":
        if len(data) < HEADER_SIZE:
            raise LogError("truncated log record header")
        total, kind_raw, txn_id, prev_lsn, page_id, page_prev_lsn, index_id = (
            _HEADER.unpack_from(data, 0))
        if total != len(data):
            raise LogError(f"log record length mismatch: {total} != {len(data)}")
        kind = LogRecordKind(kind_raw)
        record = cls(kind, txn_id, prev_lsn, page_id, page_prev_lsn, index_id)
        payload = data[HEADER_SIZE:]
        record._decode_payload(payload)
        return record

    def _decode_payload(self, payload: bytes) -> None:
        kind = self.kind
        if kind == LogRecordKind.UPDATE:
            flags = payload[0]
            pos = 1
            if flags & 1:
                op_bytes, pos = _unpack_bytes(payload, pos)
                self.op = PageOp.decode(op_bytes)
            if flags & 2:
                self.undo, pos = LogicalUndo.decode(payload, pos)
        elif kind == LogRecordKind.COMPENSATION:
            (self.undo_next_lsn,) = struct.unpack_from("<q", payload, 0)
            op_bytes, _pos = _unpack_bytes(payload, 8)
            if op_bytes:
                self.op = PageOp.decode(op_bytes)
        elif kind == LogRecordKind.FORMAT_PAGE:
            op_bytes, _pos = _unpack_bytes(payload, 0)
            if op_bytes:
                self.op = PageOp.decode(op_bytes)
        elif kind == LogRecordKind.FULL_PAGE_IMAGE:
            (self.page_lsn,) = struct.unpack_from("<q", payload, 0)
            self.image, _pos = _unpack_bytes(payload, 8)
        elif kind in (LogRecordKind.PRI_UPDATE, LogRecordKind.BACKUP_PAGE):
            page_lsn, ref_kind, ref_value = struct.unpack_from("<qBq", payload, 0)
            self.page_lsn = page_lsn
            self.backup_ref = BackupRef(BackupRefKind(ref_kind), ref_value)
        elif kind == LogRecordKind.CHECKPOINT_END:
            data, _pos = _unpack_bytes(payload, 0)
            self.checkpoint = CheckpointData.decode(data)
        elif kind == LogRecordKind.BACKUP_FULL:
            (self.backup_id,) = struct.unpack_from("<q", payload, 0)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def is_page_update(self) -> bool:
        """Does this record change page contents (i.e. has redo work)?"""
        return self.kind in (LogRecordKind.UPDATE, LogRecordKind.COMPENSATION,
                             LogRecordKind.FORMAT_PAGE,
                             LogRecordKind.FULL_PAGE_IMAGE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"lsn={self.lsn}", self.kind.name]
        if self.txn_id:
            bits.append(f"txn={self.txn_id}")
        if self.page_id >= 0:
            bits.append(f"page={self.page_id}<-{self.page_prev_lsn}")
        return f"LogRecord({', '.join(bits)})"


def compress_image(data: bytes | bytearray) -> bytes:
    """Compress a full page image for in-log storage (Section 5.2.1:
    'presumably compressed')."""
    return zlib.compress(bytes(data), level=1)


def decompress_image(blob: bytes) -> bytes:
    return zlib.decompress(blob)
