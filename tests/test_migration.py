"""Integration tests: B-tree page migration and the free-space pool.

Page migration is what the single-incoming-pointer discipline buys
(Sections 2, 5.1.3, 5.2.1): moving a node updates exactly one pointer,
and the move can leave behind a fresh backup image.
"""

import pytest

from repro.btree.node import BTreeNode
from repro.btree.verify import verify_tree
from repro.engine.database import Database
from repro.errors import BTreeError
from repro.wal.records import BackupRefKind
from tests.conftest import fast_config, key_of, value_of


@pytest.fixture
def db() -> Database:
    return Database(fast_config(capacity_pages=1024, buffer_capacity=128))


def load(db, n=500):
    tree = db.create_index()
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    return tree


def leaf_holding(db, tree, i):
    page, _node = tree._descend(key_of(i), for_write=False)
    pid = page.page_id
    db.unfix(pid)
    return pid


class TestMigration:
    def test_leaf_migrates_and_tree_still_works(self, db):
        tree = load(db)
        victim = leaf_holding(db, tree, 0)
        new_pid = tree.migrate_node(victim)
        assert new_pid != victim
        for i in range(500):
            assert tree.lookup(key_of(i)) == value_of(i, 0)
        assert verify_tree(tree).ok
        assert leaf_holding(db, tree, 0) == new_pid

    def test_migrated_node_contents_identical(self, db):
        tree = load(db)
        victim = leaf_holding(db, tree, 0)
        page = db.fix(victim)
        before = [(n.full_key(i), n.value(i), n.is_ghost(i))
                  for n in [BTreeNode(page)] for i in range(n.nrecs)]
        db.unfix(victim)
        new_pid = tree.migrate_node(victim)
        page = db.fix(new_pid)
        node = BTreeNode(page)
        after = [(node.full_key(i), node.value(i), node.is_ghost(i))
                 for i in range(node.nrecs)]
        db.unfix(new_pid)
        assert before == after

    def test_root_migration_updates_root_pointer(self, db):
        tree = load(db, n=20)  # single-leaf tree: the root is a leaf
        old_root = db.get_root(tree.index_id)
        new_pid = tree.migrate_node(old_root)
        assert db.get_root(tree.index_id) == new_pid
        assert tree.lookup(key_of(3)) == value_of(3, 0)
        assert verify_tree(tree).ok

    def test_branch_migration(self):
        # Small pages force a depth-3 tree so an inner branch exists.
        db = Database(fast_config(page_size=1024, capacity_pages=2048,
                                  buffer_capacity=256))
        tree = load(db, n=1600)
        root_pid = db.get_root(tree.index_id)
        root_page = db.fix(root_pid)
        root = BTreeNode(root_page)
        assert not root.is_leaf
        assert root.level > 1, "expected a depth-3 tree"
        branch_pid = root.child_pid(0)
        db.unfix(root_pid)
        new_pid = tree.migrate_node(branch_pid)
        assert new_pid != branch_pid
        assert verify_tree(tree).ok
        assert tree.count() == 1600

    def test_migration_retains_backup_image(self, db):
        tree = load(db)
        victim = leaf_holding(db, tree, 0)
        new_pid = tree.migrate_node(victim, retain_backup=True)
        entry = db.pri.lookup(new_pid)
        assert entry.backup_ref.kind == BackupRefKind.PAGE_COPY

    def test_migrated_page_recovers_from_retained_image(self, db):
        """The pre/post-move image drives single-page recovery with no
        chain replay at all."""
        tree = load(db)
        victim = leaf_holding(db, tree, 0)
        new_pid = tree.migrate_node(victim, retain_backup=True)
        db.flush_everything()
        db.evict_everything()
        db.device.inject_read_error(new_pid)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        result = db.single_page.history[-1]
        assert result.records_applied == 0  # image was current

    def test_old_page_returns_to_free_pool(self, db):
        tree = load(db)
        victim = leaf_holding(db, tree, 0)
        allocated_before = db.allocated_pages()
        tree.migrate_node(victim)
        # The next allocation reuses the freed page id instead of
        # growing the high-water mark.
        tree2 = db.create_index()
        assert db.get_root(tree2.index_id) == victim
        assert db.allocated_pages() == allocated_before + 1  # only migration's page

    def test_migration_survives_crash(self, db):
        tree = load(db)
        victim = leaf_holding(db, tree, 0)
        tree.migrate_node(victim)
        # Harden the (unforced) system transaction, then crash.
        db.log.force()
        db.crash()
        db.restart()
        tree = db.tree(1)
        for i in range(500):
            assert tree.lookup(key_of(i)) == value_of(i, 0)
        assert verify_tree(tree).ok

    def test_unreachable_page_rejected(self, db):
        tree = load(db)
        with pytest.raises(BTreeError):
            tree._find_incoming_pointer(999, BTreeNode(db.fix(
                leaf_holding(db, tree, 0))))


class TestWearLeveling:
    def test_hot_page_rotation(self, db):
        """Migrating a hot node spreads writes over sectors — the
        wear-levelling use the paper names in Section 5.2.1."""
        tree = load(db, n=100)
        sectors_seen = set()
        for _round in range(5):
            pid = leaf_holding(db, tree, 0)
            sectors_seen.add(db.device.sector_of(pid))
            txn = db.begin()
            for i in range(20):
                tree.update(txn, key_of(i), value_of(i, _round + 1))
            db.commit(txn)
            db.flush_everything()
            tree.migrate_node(pid)
        db.flush_everything()
        # With a LIFO free list the node alternates between (at least)
        # two physical locations, halving per-sector write pressure.
        assert len(sectors_seen) >= 2
        writes = [db.injector.write_count(s) for s in sectors_seen]
        assert max(writes) < sum(writes)
        assert tree.count() == 100
        assert verify_tree(tree).ok
