"""The base page: fixed-size buffer with a self-describing header.

Header layout (little-endian, 32 bytes)::

    offset  size  field
    0       4     magic        b"SPF1"
    4       4     checksum     CRC32 over page with this field zeroed
    8       8     page_id      the page's own identifier
    16      8     page_lsn     LSN of the most recent log record for
                               this page (anchor of the per-page chain)
    24      1     page_type    PageType tag
    25      1     flags        reserved
    26      2     update_count updates since the last page backup
                               (Section 6: "the number of updates can be
                               counted within the page, incremented
                               whenever the PageLSN changes")
    28      4     reserved

The ``update_count`` field implements the paper's backup-freshness
policy hook: a page backup can be triggered "after a number of updates"
counted within the page itself.
"""

from __future__ import annotations

import enum
import struct

from repro.errors import PageFailureKind, SinglePageFailure
from repro.page import checksum as _checksum

PAGE_MAGIC = b"SPF1"
HEADER_SIZE = 32

_HEADER_STRUCT = struct.Struct("<4sIqqBBHI")
assert _HEADER_STRUCT.size == HEADER_SIZE  # final "I" is 4 reserved bytes

# Precompiled header-field structs: the lsn/update-count accessors run
# on every logged operation, where struct's format-string cache lookup
# is measurable.
_I64 = struct.Struct("<q")
_U16 = struct.Struct("<H")

#: LSN value meaning "no log record has ever touched this page".
NULL_LSN = 0


class PageType(enum.IntEnum):
    """Type tag stored in every page header."""

    FREE = 0
    METADATA = 1
    BTREE_BRANCH = 2
    BTREE_LEAF = 3
    HEAP = 4
    RECOVERY_INDEX = 5
    ALLOCATION = 6


class PageHeader:
    """Decoded view of a page header."""

    __slots__ = ("magic", "checksum", "page_id", "page_lsn", "page_type",
                 "flags", "update_count")

    def __init__(self, magic: bytes, crc: int, page_id: int, page_lsn: int,
                 page_type: int, flags: int, update_count: int) -> None:
        self.magic = magic
        self.checksum = crc
        self.page_id = page_id
        self.page_lsn = page_lsn
        self.page_type = page_type
        self.flags = flags
        self.update_count = update_count

    @classmethod
    def unpack(cls, buf: bytes | bytearray | memoryview) -> "PageHeader":
        magic, crc, page_id, page_lsn, ptype, flags, ucount, _reserved = (
            _HEADER_STRUCT.unpack_from(bytes(buf[:HEADER_SIZE])))
        return cls(magic, crc, page_id, page_lsn, ptype, flags, ucount)


class Page:
    """A fixed-size page with header maintenance and self-checks.

    The page does not know about the buffer pool or the log; it only
    maintains its own header fields and checksum.  ``page_lsn`` updates
    also increment ``update_count``, the in-page counter the paper uses
    to drive the page-backup policy.
    """

    __slots__ = ("data", "size", "btree_cache")

    def __init__(self, size: int, data: bytes | bytearray | None = None) -> None:
        if size < HEADER_SIZE + 64:
            raise ValueError(f"page size {size} too small")
        self.size = size
        if data is None:
            self.data = bytearray(size)
        else:
            if len(data) != size:
                raise ValueError(f"buffer length {len(data)} != page size {size}")
            self.data = bytearray(data)
        # Slot for a parsed-view cache keyed by page_lsn (see
        # repro.btree.node.BTreeNode._parsed); owned by the view layer,
        # the page only guarantees a fresh copy starts empty.
        self.btree_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def format(cls, size: int, page_id: int,
               page_type: PageType = PageType.FREE) -> "Page":
        """Create a freshly formatted page with a valid header."""
        page = cls(size)
        _HEADER_STRUCT.pack_into(page.data, 0, PAGE_MAGIC, 0, page_id,
                                 NULL_LSN, int(page_type), 0, 0, 0)
        page.seal()
        return page

    def copy(self) -> "Page":
        """A deep copy (used for backups and buffer-pool frames)."""
        return Page(self.size, bytes(self.data))

    # ------------------------------------------------------------------
    # Header accessors
    # ------------------------------------------------------------------
    @property
    def page_id(self) -> int:
        return _I64.unpack_from(self.data, 8)[0]

    @page_id.setter
    def page_id(self, value: int) -> None:
        _I64.pack_into(self.data, 8, value)

    @property
    def page_lsn(self) -> int:
        return _I64.unpack_from(self.data, 16)[0]

    @page_lsn.setter
    def page_lsn(self, value: int) -> None:
        """Set the PageLSN and bump the in-page update counter."""
        _I64.pack_into(self.data, 16, value)
        count = _U16.unpack_from(self.data, 26)[0]
        if count < 0xFFFF:
            _U16.pack_into(self.data, 26, count + 1)

    @property
    def page_type(self) -> PageType:
        return PageType(self.data[24])

    @page_type.setter
    def page_type(self, value: PageType) -> None:
        self.data[24] = int(value)

    @property
    def update_count(self) -> int:
        """Updates applied since the counter was last reset.

        Reset whenever a page backup is taken; drives the
        backup-every-N-updates policy of Section 6.
        """
        return struct.unpack_from("<H", self.data, 26)[0]

    def reset_update_count(self) -> None:
        struct.pack_into("<H", self.data, 26, 0)

    @property
    def header(self) -> PageHeader:
        return PageHeader.unpack(self.data)

    # ------------------------------------------------------------------
    # Checksum and verification
    # ------------------------------------------------------------------
    def seal(self) -> int:
        """Recompute and store the checksum (done before every write)."""
        return _checksum.store_checksum(self.data)

    def checksum_ok(self) -> bool:
        return _checksum.verify_checksum(self.data)

    def verify(self, expected_page_id: int | None = None) -> None:
        """Run all in-page plausibility tests; raise on the first failure.

        This is the first two layers of the detection stack of
        Section 4.2: magic + checksum, then header plausibility, then
        the page-id cross-check against where the page was read from.
        """
        pid_for_error = expected_page_id if expected_page_id is not None else self.page_id
        if bytes(self.data[:4]) != PAGE_MAGIC:
            raise SinglePageFailure(pid_for_error, PageFailureKind.BAD_MAGIC,
                                    f"magic={bytes(self.data[:4])!r}")
        if not self.checksum_ok():
            raise SinglePageFailure(pid_for_error, PageFailureKind.CHECKSUM_MISMATCH)
        try:
            PageType(self.data[24])
        except ValueError:
            raise SinglePageFailure(
                pid_for_error, PageFailureKind.HEADER_IMPLAUSIBLE,
                f"unknown page type {self.data[24]}") from None
        if self.page_lsn < 0:
            raise SinglePageFailure(pid_for_error, PageFailureKind.HEADER_IMPLAUSIBLE,
                                    f"negative PageLSN {self.page_lsn}")
        if expected_page_id is not None and self.page_id != expected_page_id:
            raise SinglePageFailure(
                expected_page_id, PageFailureKind.WRONG_PAGE_ID,
                f"page claims to be {self.page_id}")

    # ------------------------------------------------------------------
    # Payload access
    # ------------------------------------------------------------------
    @property
    def payload(self) -> memoryview:
        """Writable view of the page body after the header."""
        return memoryview(self.data)[HEADER_SIZE:]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Page) and self.data == other.data

    def __hash__(self) -> int:  # pages are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Page(id={self.page_id}, type={self.page_type.name}, "
                f"lsn={self.page_lsn}, updates={self.update_count})")
