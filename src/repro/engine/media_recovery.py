"""Traditional media recovery (Section 5.1.3).

"Whereas system recovery scans the recovery log forward from the last
checkpoint and ensures 'redo' of all logged updates, media recovery
scans forward from the last backup of the failed media and ensures
updates for the failed media only.  Due to the effort of restoring a
backup copy, active transactions touching the failed media are
aborted."

The restore writes every backup page onto a *replacement device*; the
replay then applies the entire log tail since the backup.  This is the
expensive path whose duration Section 6 contrasts with single-page
recovery — the benchmarks measure both on the same simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.page.page import Page
from repro.sim.clock import StopWatch
from repro.storage.device import StorageDevice
from repro.storage.faults import FaultInjector
from repro.txn.transaction import Transaction
from repro.wal.records import BackupRef, LogRecord, LogRecordKind, decompress_image


@dataclass
class MediaRecoveryReport:
    """Cost breakdown of one media recovery."""

    pages_restored: int = 0
    bytes_restored: int = 0
    records_replayed: int = 0
    transactions_rolled_back: int = 0
    restore_seconds: float = 0.0
    replay_seconds: float = 0.0
    loser_txn_ids: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.restore_seconds + self.replay_seconds


def run_media_recovery(db, backup_id: int) -> MediaRecoveryReport:  # noqa: ANN001
    """Replace the device and rebuild it from backup + log."""
    report = MediaRecoveryReport()
    cfg = db.config

    # Find the backup's position via the log's backup-record index —
    # an O(1) lookup, not a scan of the whole log.
    backup_lsn = db.log.backup_full_lsn(backup_id)
    if backup_lsn is None:
        raise RecoveryError(f"no log record for full backup {backup_id}")

    # ------------------------------------------------------------------
    # Restore: install a replacement device and copy the backup onto it.
    # ------------------------------------------------------------------
    with StopWatch(db.clock) as watch:
        replacement = StorageDevice(
            f"{db.device.name}'", cfg.page_size, cfg.capacity_pages,
            db.clock, cfg.device_profile, db.stats,
            FaultInjector(seed=cfg.seed + 1),
            proof_read=cfg.proof_read_writes)
        images = db.backup_store.restore_full_backup(backup_id)
        pages: dict[int, Page] = {}
        for page_id, image in sorted(images.items()):
            pages[page_id] = Page(cfg.page_size, image)
            replacement.write(page_id, image, sequential=True)
            report.pages_restored += 1
            report.bytes_restored += len(image)
    report.restore_seconds = watch.elapsed

    # ------------------------------------------------------------------
    # Replay: the whole log tail since the backup, pages of this device.
    # ------------------------------------------------------------------
    with StopWatch(db.clock) as watch:
        att: dict[int, int] = {}
        for record in db.log_reader.scan_from(backup_lsn):
            if record.txn_id:
                if record.kind in (LogRecordKind.COMMIT, LogRecordKind.SYS_COMMIT,
                                   LogRecordKind.ABORT, LogRecordKind.TXN_END):
                    att.pop(record.txn_id, None)
                else:
                    att[record.txn_id] = record.lsn
            if not record.is_page_update or record.page_id < 0:
                continue
            page = pages.get(record.page_id)
            if record.kind == LogRecordKind.FORMAT_PAGE:
                page = Page.format(cfg.page_size, record.page_id)
                pages[record.page_id] = page
            if page is None:
                # Updated page missing from the backup: it must have
                # been formatted after the backup; the format record
                # creates it above.  Anything else is a broken backup.
                raise RecoveryError(
                    f"page {record.page_id} not in backup {backup_id} and "
                    f"no formatting record seen before LSN {record.lsn}")
            if record.kind == LogRecordKind.FULL_PAGE_IMAGE:
                as_of = record.page_lsn if record.page_lsn else record.lsn
                if page.page_lsn < as_of:
                    page.data[:] = decompress_image(record.image or b"")
                    if page.page_lsn != as_of:
                        page.page_lsn = as_of
                    report.records_replayed += 1
                continue
            if record.op is None or page.page_lsn >= record.lsn:
                continue
            record.op.apply_redo(page)
            page.page_lsn = record.lsn
            report.records_replayed += 1
        for page_id, page in sorted(pages.items()):
            page.seal()
            replacement.write(page_id, page.data, sequential=True)
    report.replay_seconds = watch.elapsed

    # ------------------------------------------------------------------
    # Swap in the replacement and rebuild the volatile stack.
    # ------------------------------------------------------------------
    db.device = replacement
    db.catalog.invalidate_volatile()
    db._build_recovery_stack()
    db.pool = db._build_pool(replacement)
    if cfg.spf_enabled:
        db.pri.set_range_backup(0, max(pages) + 1,
                                BackupRef.full_backup(backup_id),
                                backup_lsn, db.clock.now)
        for page_id, page in pages.items():
            db.pri.record_write(page_id, page.page_lsn)

    # ------------------------------------------------------------------
    # Roll back transactions that never committed (they were aborted by
    # the media failure, but their replayed updates must be undone).
    # ------------------------------------------------------------------
    for txn_id, last_lsn in sorted(att.items(), key=lambda kv: -kv[1]):
        txn = Transaction(txn_id)
        txn.last_lsn = last_lsn
        db.tm.rollback_work(txn, db)
        db.log.append(LogRecord(LogRecordKind.ABORT, txn_id=txn_id,
                                prev_lsn=txn.last_lsn))
        report.transactions_rolled_back += 1
        report.loser_txn_ids.append(txn_id)
    db.log.force()
    db.stats.bump("media_recoveries")
    return report
