"""Typed log records with explicit byte serialization.

Record header (45 bytes)::

    total_len      u32   length of the whole serialized record
    kind           u8    LogRecordKind
    txn_id         i64   owning transaction (0 = none)
    prev_lsn       i64   per-transaction chain (Section 5.1.1)
    page_id        i64   affected page (-1 = none)
    page_prev_lsn  i64   per-page chain (Section 5.1.4)
    index_id       i64   owning index/table (0 = none)

followed by a kind-specific payload.  The ``page_prev_lsn`` field is
the heart of the paper's recovery design: it lets single-page recovery
walk backwards from the current PageLSN to the last backup without
scanning the log.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import LogError
from repro.wal.ops import PageOp, _put_bytes, _unpack_bytes

_HEADER = struct.Struct("<IBqqqqq")
HEADER_SIZE = _HEADER.size

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_QQ = struct.Struct("<qq")
_QQB = struct.Struct("<qqB")
_QBQ = struct.Struct("<qBq")
_III = struct.Struct("<III")


class LogRecordKind(enum.IntEnum):
    """All record kinds written by the engine."""

    UPDATE = 1              #: page update by a user or system transaction
    COMPENSATION = 2        #: CLR written during rollback
    COMMIT = 3              #: user-transaction commit (forces the log)
    ABORT = 4               #: transaction rollback finished
    TXN_END = 5             #: transaction fully finished
    SYS_COMMIT = 6          #: system-transaction commit (no log force)
    FORMAT_PAGE = 7         #: page (re)formatted after allocation
    FULL_PAGE_IMAGE = 8     #: compressed full image (in-log page backup)
    PRI_UPDATE = 9          #: page-recovery-index update == completed write
    CHECKPOINT_BEGIN = 10
    CHECKPOINT_END = 11
    BACKUP_PAGE = 12        #: an explicit per-page backup copy was taken
    BACKUP_FULL = 13        #: a full database backup completed
    PREPARE = 14            #: 2PC participant vote: txn is in doubt


class BackupRefKind(enum.IntEnum):
    """Where a page's most recent backup image lives (Figure 7)."""

    NONE = 0
    PAGE_COPY = 1      #: explicit page copy; value = backup-store location
    LOG_IMAGE = 2      #: full page image in the log; value = its LSN
    FULL_BACKUP = 3    #: member of a full database backup; value = backup id
    FORMAT_RECORD = 4  #: formatting log record; value = its LSN


@dataclass(frozen=True, slots=True)
class BackupRef:
    """Reference to a page backup image (one of Figure 7's alternatives)."""

    kind: BackupRefKind
    value: int

    @classmethod
    def none(cls) -> "BackupRef":
        return cls(BackupRefKind.NONE, 0)

    @classmethod
    def page_copy(cls, location: int) -> "BackupRef":
        return cls(BackupRefKind.PAGE_COPY, location)

    @classmethod
    def log_image(cls, lsn: int) -> "BackupRef":
        return cls(BackupRefKind.LOG_IMAGE, lsn)

    @classmethod
    def full_backup(cls, backup_id: int) -> "BackupRef":
        return cls(BackupRefKind.FULL_BACKUP, backup_id)

    @classmethod
    def format_record(cls, lsn: int) -> "BackupRef":
        return cls(BackupRefKind.FORMAT_RECORD, lsn)


class UndoAction(enum.IntEnum):
    """Logical undo actions (compensation, Section 5.1.2: 'undo' is
    logical, i.e., applies to the same key values)."""

    NONE = 0
    DELETE_KEY = 1     #: compensate an insert
    INSERT_KEY = 2     #: compensate a delete
    RESTORE_VALUE = 3  #: compensate an update


@dataclass(frozen=True, slots=True)
class LogicalUndo:
    """Key-level undo information carried by user-transaction updates."""

    action: UndoAction
    key: bytes
    value: bytes = b""

    def encoded_size(self) -> int:
        return 9 + len(self.key) + len(self.value)

    def encode_into(self, buf: bytearray, pos: int) -> int:
        buf[pos] = int(self.action)
        pos = _put_bytes(buf, pos + 1, self.key)
        return _put_bytes(buf, pos, self.value)

    def encode(self) -> bytes:
        buf = bytearray(self.encoded_size())
        self.encode_into(buf, 0)
        return bytes(buf)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple["LogicalUndo", int]:
        action = UndoAction(data[offset])
        key, pos = _unpack_bytes(data, offset + 1)
        value, pos = _unpack_bytes(data, pos)
        return cls(action, key, value), pos


@dataclass(slots=True)
class CheckpointData:
    """Payload of a CHECKPOINT_END record.

    The two ARIES checkpoint tables (dirty pages, active transactions)
    plus ``pri_images``: the LSNs of the full-page-image records the
    checkpoint wrote for each page-recovery-index region page — restart
    uses them to locate (and if necessary repair) the persisted PRI
    (Section 5.2.6).
    """

    dirty_pages: dict[int, int] = field(default_factory=dict)
    active_txns: list[tuple[int, int, bool]] = field(default_factory=list)
    pri_images: dict[int, int] = field(default_factory=dict)

    def encoded_size(self) -> int:
        return (12 + 16 * len(self.dirty_pages)
                + 17 * len(self.active_txns) + 16 * len(self.pri_images))

    def encode_into(self, buf: bytearray, pos: int) -> int:
        _III.pack_into(buf, pos, len(self.dirty_pages),
                       len(self.active_txns), len(self.pri_images))
        pos += 12
        for page_id, rec_lsn in sorted(self.dirty_pages.items()):
            _QQ.pack_into(buf, pos, page_id, rec_lsn)
            pos += 16
        for txn_id, last_lsn, is_system in self.active_txns:
            _QQB.pack_into(buf, pos, txn_id, last_lsn, int(is_system))
            pos += 17
        for page_id, lsn in sorted(self.pri_images.items()):
            _QQ.pack_into(buf, pos, page_id, lsn)
            pos += 16
        return pos

    def encode(self) -> bytes:
        buf = bytearray(self.encoded_size())
        self.encode_into(buf, 0)
        return bytes(buf)

    @classmethod
    def decode(cls, data, offset: int = 0) -> "CheckpointData":
        n_dirty, n_txns, n_images = _III.unpack_from(data, offset)
        pos = offset + 12
        dirty = {}
        for _ in range(n_dirty):
            page_id, rec_lsn = _QQ.unpack_from(data, pos)
            dirty[page_id] = rec_lsn
            pos += 16
        txns = []
        for _ in range(n_txns):
            txn_id, last_lsn, is_system = _QQB.unpack_from(data, pos)
            txns.append((txn_id, last_lsn, bool(is_system)))
            pos += 17
        images = {}
        for _ in range(n_images):
            page_id, lsn = _QQ.unpack_from(data, pos)
            images[page_id] = lsn
            pos += 16
        return cls(dirty, txns, images)


@dataclass(slots=True)
class LogRecord:
    """One recovery-log record.

    ``lsn`` is assigned by the log manager at append time.  Fields that
    do not apply to a given kind are left at their defaults.
    """

    kind: LogRecordKind
    txn_id: int = 0
    prev_lsn: int = 0
    page_id: int = -1
    page_prev_lsn: int = 0
    index_id: int = 0
    lsn: int = 0

    # Kind-specific payloads.
    op: PageOp | None = None                 #: UPDATE / COMPENSATION / FORMAT
    undo: LogicalUndo | None = None          #: UPDATE by user transactions
    undo_next_lsn: int = 0                   #: COMPENSATION
    image: bytes | None = None               #: FULL_PAGE_IMAGE (compressed)
    page_lsn: int = 0                        #: PRI_UPDATE / BACKUP_PAGE
    backup_ref: BackupRef | None = None      #: PRI_UPDATE / BACKUP_PAGE
    checkpoint: CheckpointData | None = None #: CHECKPOINT_END
    backup_id: int = 0                       #: BACKUP_FULL
    gtid: int = 0                            #: PREPARE (global txn id)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def encoded_size(self) -> int:
        """Exact serialized length, computed without materializing bytes.

        The append hot path only needs the length (LSNs are byte
        offsets); keeping this in sync with :meth:`encode` is guarded
        by the serialization round-trip property tests.
        """
        return HEADER_SIZE + self._payload_size()

    def _payload_size(self) -> int:
        kind = self.kind
        if kind == LogRecordKind.UPDATE:
            size = 1
            if self.op:
                size += 4 + self.op.encoded_size()
            if self.undo:
                size += self.undo.encoded_size()
            return size
        if kind == LogRecordKind.COMPENSATION:
            return 12 + (self.op.encoded_size() if self.op else 0)
        if kind == LogRecordKind.FORMAT_PAGE:
            return 4 + (self.op.encoded_size() if self.op else 0)
        if kind == LogRecordKind.FULL_PAGE_IMAGE:
            return 12 + len(self.image or b"")
        if kind in (LogRecordKind.PRI_UPDATE, LogRecordKind.BACKUP_PAGE):
            return 17
        if kind == LogRecordKind.CHECKPOINT_END:
            return 4 + (self.checkpoint or CheckpointData()).encoded_size()
        if kind in (LogRecordKind.BACKUP_FULL, LogRecordKind.PREPARE):
            return 8
        # COMMIT, ABORT, TXN_END, SYS_COMMIT, CHECKPOINT_BEGIN
        return 0

    def encode(self) -> bytes:
        """Serialize into one preallocated buffer (no join of pieces)."""
        total = HEADER_SIZE + self._payload_size()
        buf = bytearray(total)
        _HEADER.pack_into(buf, 0, total, int(self.kind), self.txn_id,
                          self.prev_lsn, self.page_id,
                          self.page_prev_lsn, self.index_id)
        self._encode_payload_into(buf, HEADER_SIZE)
        return bytes(buf)

    def _encode_payload_into(self, buf: bytearray, pos: int) -> int:
        kind = self.kind
        if kind == LogRecordKind.UPDATE:
            flags = (1 if self.op else 0) | (2 if self.undo else 0)
            buf[pos] = flags
            pos += 1
            if self.op:
                _U32.pack_into(buf, pos, self.op.encoded_size())
                pos = self.op.encode_into(buf, pos + 4)
            if self.undo:
                pos = self.undo.encode_into(buf, pos)
            return pos
        if kind == LogRecordKind.COMPENSATION:
            _I64.pack_into(buf, pos, self.undo_next_lsn)
            pos += 8
            op_size = self.op.encoded_size() if self.op else 0
            _U32.pack_into(buf, pos, op_size)
            pos += 4
            return self.op.encode_into(buf, pos) if self.op else pos
        if kind == LogRecordKind.FORMAT_PAGE:
            op_size = self.op.encoded_size() if self.op else 0
            _U32.pack_into(buf, pos, op_size)
            pos += 4
            return self.op.encode_into(buf, pos) if self.op else pos
        if kind == LogRecordKind.FULL_PAGE_IMAGE:
            _I64.pack_into(buf, pos, self.page_lsn)
            return _put_bytes(buf, pos + 8, self.image or b"")
        if kind in (LogRecordKind.PRI_UPDATE, LogRecordKind.BACKUP_PAGE):
            ref = self.backup_ref or BackupRef.none()
            _QBQ.pack_into(buf, pos, self.page_lsn, int(ref.kind), ref.value)
            return pos + 17
        if kind == LogRecordKind.CHECKPOINT_END:
            checkpoint = self.checkpoint or CheckpointData()
            _U32.pack_into(buf, pos, checkpoint.encoded_size())
            return checkpoint.encode_into(buf, pos + 4)
        if kind == LogRecordKind.BACKUP_FULL:
            _I64.pack_into(buf, pos, self.backup_id)
            return pos + 8
        if kind == LogRecordKind.PREPARE:
            _I64.pack_into(buf, pos, self.gtid)
            return pos + 8
        return pos

    @classmethod
    def decode(cls, data) -> "LogRecord":
        if len(data) < HEADER_SIZE:
            raise LogError("truncated log record header")
        total, kind_raw, txn_id, prev_lsn, page_id, page_prev_lsn, index_id = (
            _HEADER.unpack_from(data, 0))
        if total != len(data):
            raise LogError(f"log record length mismatch: {total} != {len(data)}")
        kind = LogRecordKind(kind_raw)
        record = cls(kind, txn_id, prev_lsn, page_id, page_prev_lsn, index_id)
        record._decode_payload(data, HEADER_SIZE)
        return record

    def _decode_payload(self, data, pos: int) -> None:
        """Decode the payload reading ``data`` at absolute offsets.

        No intermediate payload slice is materialized; only the actual
        byte fields (keys, values, images) are copied out.
        """
        kind = self.kind
        if kind == LogRecordKind.UPDATE:
            flags = data[pos]
            pos += 1
            if flags & 1:
                (op_size,) = _U32.unpack_from(data, pos)
                pos += 4
                self.op = PageOp.decode(data, pos)
                pos += op_size
            if flags & 2:
                self.undo, pos = LogicalUndo.decode(data, pos)
        elif kind == LogRecordKind.COMPENSATION:
            (self.undo_next_lsn,) = _I64.unpack_from(data, pos)
            (op_size,) = _U32.unpack_from(data, pos + 8)
            if op_size:
                self.op = PageOp.decode(data, pos + 12)
        elif kind == LogRecordKind.FORMAT_PAGE:
            (op_size,) = _U32.unpack_from(data, pos)
            if op_size:
                self.op = PageOp.decode(data, pos + 4)
        elif kind == LogRecordKind.FULL_PAGE_IMAGE:
            (self.page_lsn,) = _I64.unpack_from(data, pos)
            self.image, _pos = _unpack_bytes(data, pos + 8)
        elif kind in (LogRecordKind.PRI_UPDATE, LogRecordKind.BACKUP_PAGE):
            page_lsn, ref_kind, ref_value = _QBQ.unpack_from(data, pos)
            self.page_lsn = page_lsn
            self.backup_ref = BackupRef(BackupRefKind(ref_kind), ref_value)
        elif kind == LogRecordKind.CHECKPOINT_END:
            self.checkpoint = CheckpointData.decode(data, pos + 4)
        elif kind == LogRecordKind.BACKUP_FULL:
            (self.backup_id,) = _I64.unpack_from(data, pos)
        elif kind == LogRecordKind.PREPARE:
            (self.gtid,) = _I64.unpack_from(data, pos)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def is_page_update(self) -> bool:
        """Does this record change page contents (i.e. has redo work)?"""
        return self.kind in (LogRecordKind.UPDATE, LogRecordKind.COMPENSATION,
                             LogRecordKind.FORMAT_PAGE,
                             LogRecordKind.FULL_PAGE_IMAGE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"lsn={self.lsn}", self.kind.name]
        if self.txn_id:
            bits.append(f"txn={self.txn_id}")
        if self.page_id >= 0:
            bits.append(f"page={self.page_id}<-{self.page_prev_lsn}")
        return f"LogRecord({', '.join(bits)})"


def compress_image(data: bytes | bytearray) -> bytes:
    """Compress a full page image for in-log storage (Section 5.2.1:
    'presumably compressed')."""
    return zlib.compress(bytes(data), level=1)


def decompress_image(blob: bytes) -> bytes:
    return zlib.decompress(blob)
