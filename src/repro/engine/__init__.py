"""The database engine facade.

:class:`repro.engine.Database` wires every substrate together: the
simulated device, the recovery log, the buffer pool, transactions,
Foster B-trees, the page recovery index, backups, detection, and the
three recovery procedures (single-page, system/restart, media).
"""

from repro.engine.config import EngineConfig
from repro.engine.database import Database

__all__ = ["Database", "EngineConfig"]
