#!/usr/bin/env python3
"""A year in the life of a database fleet with latent sector errors.

Bairavasundaram et al. (cited by the paper) measured that 9.5 % of
nearline disks develop latent sector errors each year, clustered in
bursts, and that most are found by scrubbing.  This example drives a
fleet of single-device database nodes through one simulated year of
those error arrivals and compares:

* a traditional fleet: every error escalates to a node outage;
* an SPF fleet with periodic scrubbing: errors are found cold and
  repaired before any query ever sees them.

Run:  python examples/scrubbing_fleet.py
"""

from repro import Database, EngineConfig
from repro.baselines.media_only import traditional_config
from repro.errors import MediaFailure, SystemFailure
from repro.sim.iomodel import NULL_PROFILE
from repro.workloads.fleet import FleetModel

N_NODES = 80


def build_node(spf: bool) -> tuple[Database, object]:
    if spf:
        cfg = EngineConfig(page_size=4096, capacity_pages=512,
                           buffer_capacity=64, single_device_node=True,
                           device_profile=NULL_PROFILE,
                           log_profile=NULL_PROFILE,
                           backup_profile=NULL_PROFILE)
    else:
        cfg = traditional_config(single_device_node=True,
                                 page_size=4096, capacity_pages=512,
                                 buffer_capacity=64,
                                 device_profile=NULL_PROFILE,
                                 log_profile=NULL_PROFILE,
                                 backup_profile=NULL_PROFILE)
    db = Database(cfg)
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, b"row:%06d" % i, b"payload-%d" % i)
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree


def run_fleet(spf: bool) -> dict:
    schedule = FleetModel(n_devices=N_NODES, pages_per_device=300,
                          years=1.0, seed=23).schedule()
    by_node: dict[int, list] = {}
    for fault in schedule:
        by_node.setdefault(fault.device_index, []).append(fault)

    outages = 0
    repaired_by_scrub = 0
    faults_total = 0
    for node_id, faults in by_node.items():
        db, tree = build_node(spf)
        data_pages = list(range(db.config.data_start, db.allocated_pages()))
        down = False
        for fault in faults:
            faults_total += 1
            if down:
                continue
            victim = data_pages[fault.page_id % len(data_pages)]
            if fault.kind == "read-error":
                db.device.inject_read_error(victim)
            else:
                db.device.inject_bit_rot(victim, nbits=4)
            # The periodic scrub pass (SPF nodes repair; traditional
            # nodes merely *find* the damage and then must escalate).
            try:
                report = db.scrub(repair=spf)
                if spf:
                    repaired_by_scrub += report.failures_repaired
                elif report.failures_found:
                    # A found failure on a traditional node: the page is
                    # unreadable and the node must be rebuilt.
                    raise MediaFailure(db.device.name, "unrepairable page")
            except (MediaFailure, SystemFailure):
                down = True
                outages += 1
    return {
        "faults": faults_total,
        "repaired_by_scrub": repaired_by_scrub,
        "outages": outages,
        "availability": 1.0 - outages / N_NODES,
    }


def main() -> None:
    print(f"{N_NODES} single-device nodes, one simulated year of latent "
          f"sector errors\n(arrival rates from Bairavasundaram et al., "
          f"SIGMETRICS 2007)\n")
    for spf in (True, False):
        label = ("SPF fleet with repairing scrubber" if spf
                 else "traditional fleet")
        result = run_fleet(spf)
        print(f"== {label} ==")
        print(f"  page faults over the year : {result['faults']}")
        print(f"  repaired cold by scrubbing: {result['repaired_by_scrub']}")
        print(f"  node outages              : {result['outages']}")
        print(f"  fleet availability        : "
              f"{100 * result['availability']:.1f}%")
        print()


if __name__ == "__main__":
    main()
