"""Integration tests: on-demand media restore and its state machine.

The restore registry mirrors the restart registry: pages restored on
first fix, losers undone on lock conflict, a budgeted background
drain, and a completion watermark that gates checkpointing, log
truncation, and backup retirement.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.errors import MediaFailure, RecoveryError
from tests.conftest import fast_config, key_of, value_of


def restorable_db(n=200, updates=60, **overrides):
    """A database with a full backup, an update wave since it, and one
    in-flight loser, ready to lose its device."""
    db = Database(fast_config(**overrides))
    tree = db.create_index()
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    backup_id = db.take_full_backup()
    txn = db.begin()
    for i in range(updates):
        tree.update(txn, key_of(i), value_of(i, 1))
    db.commit(txn)
    loser = db.begin()
    tree.update(loser, key_of(1), b"DOOMED")
    db.log.force()  # the loser's records survive to replay
    return db, tree, backup_id


def fail_media(db) -> None:
    db.device.fail_device("test media failure")
    db._on_media_failure(MediaFailure(db.device.name, "test media failure"))


class TestOnDemandRestore:
    def test_opens_immediately_with_pending_pages(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        report = db.recover_media(backup_id, mode="on_demand")
        assert report.pending_restore_pages > 0
        assert report.pending_undo_txns == 1
        assert db.restore_pending
        # Traffic flows before the drain ever runs.
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == value_of(0, 1)
        assert tree.lookup(key_of(150)) == value_of(150, 0)

    def test_first_fix_restores_exactly_that_page(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        before = db.restore_registry.pending_page_count
        restored_before = db.stats.get("restore_pages")
        tree = db.tree(1)
        assert tree.lookup(key_of(199)) == value_of(199, 0)
        # The lookup restored the metadata/root path plus one leaf —
        # a handful of pages, not the device.
        assert db.stats.get("restore_pages") - restored_before <= 6
        assert db.restore_registry.pending_page_count < before

    def test_budgeted_drain_respects_budget(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        pages, losers = db.drain_restore(page_budget=5, loser_budget=0)
        assert pages == 5
        assert losers == 0
        assert db.restore_pending

    def test_finish_restore_records_watermark(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        assert db.last_restore_completion_lsn is None
        db.finish_restore()
        assert not db.restore_pending
        assert db.last_restore_completion_lsn is not None
        assert db.stats.get("instant_restore_completions") == 1

    def test_loser_undone_on_lock_conflict(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        tree = db.tree(1)
        txn = db.begin()
        db.update(tree, key_of(1), b"fresh", txn=txn)
        db.commit(txn)
        assert db.stats.get("restore_undo_on_conflict") == 1
        assert tree.lookup(key_of(1)) == b"fresh"

    def test_eager_mode_is_drain_before_open(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        report = db.recover_media(backup_id, mode="eager")
        assert report.pending_restore_pages == 0
        assert report.pending_undo_txns == 0
        assert report.pages_restored > 0
        assert report.transactions_rolled_back == 1
        assert not db.restore_pending
        assert db.last_restore_completion_lsn is not None

    def test_unknown_backup_rejected(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        with pytest.raises(RecoveryError):
            db.recover_media(backup_id + 7, mode="on_demand")

    def test_bad_mode_rejected(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        with pytest.raises(ValueError):
            db.recover_media(backup_id, mode="lazy-ish")

    def test_failed_eager_restore_keeps_database_closed(self):
        """An eager restore that dies mid-drain must leave the
        database refusing traffic on the half-restored device."""
        db, tree, backup_id = restorable_db()
        page, _node = tree._descend(key_of(0), for_write=False)
        victim = page.page_id  # updated since the backup, so pending
        db.unfix(victim)
        fail_media(db)
        # Sabotage the backup medium: the victim's image is gone and
        # its first tail record is no formatting record.
        del db.backup_store._full_backups[backup_id][victim]
        del db.backup_store._full_backup_lsns[backup_id][victim]
        with pytest.raises(RecoveryError):
            db.recover_media(backup_id, mode="eager")
        with pytest.raises(MediaFailure):
            db.begin()

    def test_config_default_mode_used(self):
        db, tree, backup_id = restorable_db(restore_mode="on_demand")
        fail_media(db)
        report = db.recover_media(backup_id)
        assert report.mode == "on_demand"
        assert db.restore_pending
        db.finish_restore()


class TestRestoreGates:
    def test_checkpoint_drains_restore_first(self):
        db, tree, backup_id = restorable_db()
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        assert db.restore_pending
        db.checkpoint()
        assert not db.restore_pending

    def test_retention_bound_pinned_at_backup(self):
        db, tree, backup_id = restorable_db()
        backup_lsn = db.log.backup_full_lsn(backup_id)
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        assert db.log_retention_bound() <= backup_lsn
        db.finish_restore()
        # Once complete, the registry no longer pins anything (other
        # retention constraints — PRI backups etc. — still apply).
        assert db.restore_registry is None

    def test_backup_retirement_gated_on_watermark(self):
        """Restoring from an older backup while a newer one exists:
        the older backup must survive until the restore completes."""
        db, tree, old_backup = restorable_db()
        txn = db.begin()
        for i in range(20):
            tree.update(txn, key_of(i), value_of(i, 2))
        db.commit(txn)
        new_backup = db.take_full_backup()
        assert new_backup != old_backup
        fail_media(db)
        db.recover_media(old_backup, mode="on_demand")
        assert db.restore_pending
        retired = db.retire_backups()
        assert old_backup not in retired
        assert db.backup_store.has_full_backup(old_backup)
        db.finish_restore()
        # Still referenced by the PRI (it is the live backup source for
        # single-page recovery of the restored range) — a fresh full
        # backup supersedes it, then it may retire.
        db.take_full_backup()
        retired = db.retire_backups()
        assert old_backup in retired
        assert not db.backup_store.has_full_backup(old_backup)

    def test_retiring_missing_backup_raises(self):
        db, tree, backup_id = restorable_db()
        with pytest.raises(RecoveryError):
            db.backup_store.retire_full_backup(backup_id + 5)

    def test_restore_from_retired_backup_rejected(self):
        db, tree, old_backup = restorable_db()
        db.take_full_backup()
        retired = db.retire_backups()
        assert old_backup in retired
        fail_media(db)
        with pytest.raises(RecoveryError):
            db.recover_media(old_backup)


class TestRestoreSpfInterplay:
    def test_spf_protection_live_during_pending_restore(self):
        """A page restored on demand is immediately covered again: a
        later fault on it is absorbed by single-page recovery while
        the rest of the device is still pending."""
        db, tree, backup_id = restorable_db()
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == value_of(0, 1)  # restores path
        page, _node = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_read_error(victim)
        assert tree.lookup(key_of(0)) == value_of(0, 1)
        assert db.stats.get("single_page_recoveries") >= 1
        assert db.restore_pending  # rest of the device still pending

    def test_page_allocated_during_restore_supersedes_backup(self):
        db, tree, backup_id = restorable_db(n=60)
        # Free a leaf-sized hole is hard to arrange; instead allocate
        # fresh pages (beyond the backup) while the restore is pending
        # and make sure they never consult the backup.
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        tree = db.tree(1)
        txn = db.begin()
        for i in range(300, 420):
            db.insert(tree, key_of(i), value_of(i, 0), txn=txn)
        db.commit(txn)
        db.finish_restore()
        assert tree.lookup(key_of(300)) == value_of(300, 0)
        assert tree.lookup(key_of(0)) == value_of(0, 1)

    def test_spf_disabled_restore_still_works(self):
        """Media recovery predates single-page machinery: both modes
        must work with spf_enabled=False (the traditional baseline)."""
        db, tree, backup_id = restorable_db(spf_enabled=False)
        fail_media(db)
        db.recover_media(backup_id, mode="on_demand")
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == value_of(0, 1)
        db.finish_restore()
        assert tree.lookup(key_of(150)) == value_of(150, 0)
