"""Page formats: headers, checksums, and slotted pages.

Every database page carries a header with a magic number, its own page
id, a type tag, the PageLSN (the LSN of the most recent log record that
modified the page), and a CRC32 checksum over the rest of the page.
The header is what makes in-page failure detection (Section 4.2 of the
paper) possible: checksum mismatches catch bit rot, the embedded page
id catches misdirected writes, and the PageLSN anchors the per-page log
chain and the page-recovery-index cross-check.
"""

from repro.page.checksum import compute_checksum, verify_checksum
from repro.page.page import (
    HEADER_SIZE,
    PAGE_MAGIC,
    Page,
    PageHeader,
    PageType,
)
from repro.page.slotted import Record, SlottedPage

__all__ = [
    "Page",
    "PageHeader",
    "PageType",
    "PAGE_MAGIC",
    "HEADER_SIZE",
    "SlottedPage",
    "Record",
    "compute_checksum",
    "verify_checksum",
]
