"""B-tree node format over slotted pages.

A node is a slotted page with three bookkeeping records at fixed slots
followed by the data records::

    slot 0  (low fence)   key = low fence key,  value = metadata blob
    slot 1  (high fence)  key = high fence key, value = b""
    slot 2  (foster)      key = foster key,     value = foster child pid
    slot 3+ (data)        sorted records; keys stored prefix-truncated

Metadata blob (value of slot 0)::

    level   u16   0 = leaf
    flags   u16   bit 0: the high fence is +infinity
    prefix  rest  the prefix stripped from all stored data keys

Storing the fences and the foster pointer as ordinary records means
every structural change is expressible as ordinary record operations —
so the generic redo machinery replays node splits and adoptions with no
special cases, and the in-page plausibility checks cover the fences
too.  This mirrors the paper's Figure 2, where the fence keys are
records within the page (one of them possibly a ghost).

The symmetric-fence-key invariants (Section 4.2):

* every data key k satisfies ``low_fence <= k < high_fence``;
* in a branch, each record is ``(child low boundary, child pid)`` and
  the first record's key equals the node's low fence — hence the two
  key values adjacent to any child pointer are exactly the child's
  fence keys;
* a foster parent's own records are all ``< foster_key``; the foster
  child covers ``[foster_key, high_fence)``; every node of a foster
  chain carries the high fence of the *entire chain* (Figure 3).

Prefix truncation: the prefix is fixed when the node is initialized
(from the fences at that time) and remains *valid* — a prefix of every
data key — for the node's lifetime, even if later fence tightening
(adoption) would permit a longer one.
"""

from __future__ import annotations

import struct

from repro.errors import BTreeError
from repro.page.page import Page, PageType
from repro.page.slotted import Record, SlottedPage
from repro.wal.ops import (OpBulkDelete, OpBulkInsert, OpDelete, OpInsert,
                           OpSetGhost, OpUpdateValue, PageOp)

SLOT_LOW = 0
SLOT_HIGH = 1
SLOT_FOSTER = 2
DATA_START = 3

_META = struct.Struct("<HH")
FLAG_HIGH_INF = 1

#: pid value meaning "no foster child"
NO_FOSTER = 0


def encode_meta(level: int, high_inf: bool, prefix: bytes) -> bytes:
    flags = FLAG_HIGH_INF if high_inf else 0
    return _META.pack(level, flags) + prefix


def encode_pid(pid: int) -> bytes:
    return struct.pack("<q", pid)


def decode_pid(value: bytes) -> int:
    return struct.unpack("<q", value)[0]


class BTreeNode:
    """Read-mostly view of a B-tree node page.

    Mutations are *not* performed here: the tree constructs page
    operations (returned by the ``op_*`` helpers) and logs them through
    the transaction manager, which applies them — keeping every
    structural byte change in the recovery log.
    """

    __slots__ = ("page", "slotted")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.slotted = SlottedPage(page)
        if page.btree_cache is not None:
            # A cached parse proves the page validated as a B-tree node
            # since its last byte mutation (every mutator clears the
            # cache), so the structural checks below can be skipped.
            return
        if page.page_type not in (PageType.BTREE_BRANCH, PageType.BTREE_LEAF):
            raise BTreeError(
                f"page {page.page_id} is a {page.page_type.name}, not a B-tree node")
        if self.slotted.slot_count < DATA_START:
            raise BTreeError(f"page {page.page_id} lacks bookkeeping records")

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def _parsed(self) -> tuple:
        """Bookkeeping records parsed once per page version.

        The parse is cached on the *page* (so it survives across node
        constructions while the page sits in the buffer pool).  Cache
        coherence is event-based: every byte mutator — the slotted-page
        mutation methods, ``OpWriteBytes``, and the full-image restore
        paths — clears ``page.btree_cache``, so a stale parse can never
        be observed.  Cache tuple layout::

            (level, flags, prefix, low_fence, high_fence,
             foster_pid, foster_key)
        """
        page = self.page
        cache = page.btree_cache
        if cache is not None:
            return cache
        slotted = self.slotted
        low = slotted.read_record(SLOT_LOW)
        level, flags = _META.unpack_from(low.value, 0)
        foster = slotted.read_record(SLOT_FOSTER)
        cache = (level, flags, low.value[_META.size:], low.key,
                 slotted.record_key(SLOT_HIGH),
                 decode_pid(foster.value), foster.key)
        page.btree_cache = cache
        return cache

    @property
    def _meta(self) -> tuple[int, int, bytes]:
        parsed = self.page.btree_cache or self._parsed()
        return parsed[0], parsed[1], parsed[2]

    @property
    def level(self) -> int:
        return (self.page.btree_cache or self._parsed())[0]

    @property
    def is_leaf(self) -> bool:
        return (self.page.btree_cache or self._parsed())[0] == 0

    @property
    def high_inf(self) -> bool:
        return bool((self.page.btree_cache or self._parsed())[1]
                    & FLAG_HIGH_INF)

    @property
    def prefix(self) -> bytes:
        return (self.page.btree_cache or self._parsed())[2]

    @property
    def low_fence(self) -> bytes:
        """Low fence key; ``b""`` doubles as minus infinity."""
        return (self.page.btree_cache or self._parsed())[3]

    @property
    def high_fence(self) -> bytes:
        """High fence key; meaningless when :attr:`high_inf` is set."""
        return (self.page.btree_cache or self._parsed())[4]

    @property
    def foster_pid(self) -> int:
        return (self.page.btree_cache or self._parsed())[5]

    @property
    def foster_key(self) -> bytes:
        return (self.page.btree_cache or self._parsed())[6]

    @property
    def has_foster(self) -> bool:
        return (self.page.btree_cache or self._parsed())[5] != NO_FOSTER

    @classmethod
    def peek_foster(cls, page: Page) -> int | None:
        """Foster sibling's page id, or ``None`` — without raising.

        The prefetcher's hook (:mod:`repro.buffer.prefetch`): given any
        page, report the B-tree sibling its fence-key metadata points
        at.  Unlike the constructor this never raises — non-B-tree
        pages, torn pages, anything that fails to parse just yields
        ``None``, because a speculative hint must never fail the demand
        fix that produced it.  Reuses (and primes) ``page.btree_cache``
        like every other metadata read.
        """
        try:
            if page.page_type not in (PageType.BTREE_BRANCH,
                                      PageType.BTREE_LEAF):
                return None
            foster = cls(page).foster_pid
        except Exception:  # noqa: BLE001 - hints are strictly best-effort
            return None
        return foster if foster != NO_FOSTER else None

    # ------------------------------------------------------------------
    # Data records
    # ------------------------------------------------------------------
    @property
    def nrecs(self) -> int:
        return self.slotted.slot_count - DATA_START

    def stored_key(self, i: int) -> bytes:
        return self.slotted.record_key(DATA_START + i)

    def full_key(self, i: int) -> bytes:
        return self.prefix + self.stored_key(i)

    def value(self, i: int) -> bytes:
        return self.slotted.read_record(DATA_START + i).value

    def is_ghost(self, i: int) -> bool:
        return self.slotted.is_ghost(DATA_START + i)

    def child_pid(self, i: int) -> int:
        return decode_pid(self.value(i))

    def keys(self, include_ghosts: bool = False) -> list[bytes]:
        return [self.full_key(i) for i in range(self.nrecs)
                if include_ghosts or not self.is_ghost(i)]

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------
    def _strip(self, key: bytes) -> bytes:
        prefix = self.prefix
        if not key.startswith(prefix):
            raise BTreeError(
                f"key {key!r} outside node prefix {prefix!r} "
                f"(page {self.page.page_id})")
        return key[len(prefix):]

    def find(self, key: bytes) -> tuple[int, bool]:
        """Binary search for ``key`` among data records.

        Returns ``(index, found)`` where ``index`` is the insert
        position if not found.  The search itself runs inside the
        slotted page (one pass over the raw buffer, no per-probe
        record materialization) — this is the innermost loop of every
        descent.
        """
        prefix = (self.page.btree_cache or self._parsed())[2]
        if prefix:
            if not key.startswith(prefix):
                raise BTreeError(
                    f"key {key!r} outside node prefix {prefix!r} "
                    f"(page {self.page.page_id})")
            target = key[len(prefix):]
        else:
            target = key
        slotted = self.slotted
        slot = slotted.key_bisect_left(target, DATA_START)
        found = (slot < slotted.slot_count
                 and slotted.record_key(slot) == target)
        return slot - DATA_START, found

    def covers(self, key: bytes) -> bool:
        """Is ``key`` within this node's [low, high) fence range?

        With a foster child, the range still extends to the chain high
        fence; use :attr:`foster_key` to decide whether to follow the
        foster pointer.
        """
        if key < self.low_fence:
            return False
        return self.high_inf or key < self.high_fence

    def branch_child_index(self, key: bytes) -> int:
        """Index of the child record responsible for ``key``.

        Branch records hold each child's *low boundary*; the
        responsible child is the rightmost record with key <= ``key``.
        """
        if self.is_leaf:
            raise BTreeError("branch_child_index on a leaf")
        index, found = self.find(key)
        if not found:
            index -= 1
        if index < 0:
            raise BTreeError(
                f"key {key!r} below first child of page {self.page.page_id}")
        return index

    def child_boundaries(self, i: int) -> tuple[bytes, bytes, bool]:
        """(low, high, high_is_inf) boundaries of child ``i``.

        These are "the key values next to the pointer in the parent"
        that must equal the child's fence keys (Section 4.2).  The
        last child's high boundary is the foster key if a foster child
        exists (the foster chain covers the rest), else this node's
        high fence.
        """
        low = self.full_key(i)
        if i + 1 < self.nrecs:
            return low, self.full_key(i + 1), False
        if self.has_foster:
            return low, self.foster_key, False
        return low, self.high_fence, self.high_inf

    def foster_boundaries(self) -> tuple[bytes, bytes, bool]:
        """Expected fences of the foster child: [foster key, chain high)."""
        if not self.has_foster:
            raise BTreeError("node has no foster child")
        return self.foster_key, self.high_fence, self.high_inf

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def room_for(self, key: bytes, value: bytes) -> bool:
        record = Record(self._strip(key), value)
        return self.slotted.room_for(record)

    def room_for_branch_record(self, key: bytes) -> bool:
        if not key.startswith(self.prefix):
            # An adoption may post a key outside the stale prefix; the
            # caller must split first.
            return False
        record = Record(key[len(self.prefix):], encode_pid(0))
        return self.slotted.room_for(record)

    # ------------------------------------------------------------------
    # Operation builders (logged and applied by the tree)
    # ------------------------------------------------------------------
    def op_insert(self, index: int, key: bytes, value: bytes,
                  ghost: bool = False) -> PageOp:
        return OpInsert(DATA_START + index, self._strip(key), value, ghost)

    def op_delete(self, index: int) -> PageOp:
        rec = self.slotted.read_record(DATA_START + index)
        return OpDelete(DATA_START + index, rec.key, rec.value, rec.ghost)

    def record_entries(self, start: int, end: int) -> list[tuple[bytes, bytes, bool]]:
        """(full_key, value, ghost) for data records [start, end).

        One :meth:`SlottedPage.read_record` per record — the split path
        previously read every moved record three times.
        """
        prefix = self.prefix
        slotted = self.slotted
        out = []
        for i in range(DATA_START + start, DATA_START + end):
            rec = slotted.read_record(i)
            out.append((prefix + rec.key, rec.value, rec.ghost))
        return out

    def op_bulk_insert(self, index: int,
                       entries: list[tuple[bytes, bytes, bool]]) -> PageOp:
        """One op inserting ``entries`` (full keys) at data slot ``index``."""
        prefix = self.prefix
        plen = len(prefix)
        recs = []
        for key, value, ghost in entries:
            if plen and not key.startswith(prefix):
                raise BTreeError(
                    f"key {key!r} outside node prefix {prefix!r} "
                    f"(page {self.page.page_id})")
            recs.append((key[plen:], value, ghost))
        return OpBulkInsert(DATA_START + index, tuple(recs))

    def op_bulk_delete(self, start: int, end: int) -> PageOp:
        """One op removing this node's data records [start, end)."""
        slotted = self.slotted
        entries = []
        for i in range(DATA_START + start, DATA_START + end):
            rec = slotted.read_record(i)
            entries.append((rec.key, rec.value, rec.ghost))
        return OpBulkDelete(DATA_START + start, tuple(entries))

    def op_update_value(self, index: int, new_value: bytes) -> PageOp:
        old = self.value(index)
        return OpUpdateValue(DATA_START + index, old, new_value)

    def op_set_ghost(self, index: int, ghost: bool) -> PageOp:
        return OpSetGhost(DATA_START + index, self.is_ghost(index), ghost)

    def ops_set_foster(self, foster_key: bytes, foster_pid: int) -> list[PageOp]:
        """Replace the foster record (re-keying = delete + insert)."""
        old = self.slotted.read_record(SLOT_FOSTER)
        return [OpDelete(SLOT_FOSTER, old.key, old.value, old.ghost),
                OpInsert(SLOT_FOSTER, foster_key, encode_pid(foster_pid), True)]

    def ops_set_high_fence(self, high: bytes, high_inf: bool) -> list[PageOp]:
        """Replace the high fence and the flag bit in the metadata."""
        ops: list[PageOp] = []
        old_high = self.slotted.read_record(SLOT_HIGH)
        ops.append(OpDelete(SLOT_HIGH, old_high.key, old_high.value, old_high.ghost))
        ops.append(OpInsert(SLOT_HIGH, high, b"", True))
        level, flags, prefix = self._meta
        new_flags = (flags | FLAG_HIGH_INF) if high_inf else (flags & ~FLAG_HIGH_INF)
        if new_flags != flags:
            old_meta = self.slotted.read_record(SLOT_LOW).value
            new_meta = _META.pack(level, new_flags) + prefix
            ops.append(OpUpdateValue(SLOT_LOW, old_meta, new_meta))
        return ops

    def ops_reencode_prefix(self, new_prefix: bytes) -> list[PageOp]:
        """Re-encode stored keys under a longer truncation prefix.

        Adoption tightens a node's high fence, which usually permits a
        longer common prefix; re-encoding is contents-neutral and runs
        inside the same system transaction as the adoption.  Returns an
        empty list when nothing would change.
        """
        old_prefix = self.prefix
        if new_prefix == old_prefix:
            return []
        if not new_prefix.startswith(old_prefix):
            raise BTreeError("prefix can only be extended")
        extra = len(new_prefix) - len(old_prefix)
        ops: list[PageOp] = []
        level, flags, _prefix = self._meta
        old_meta = self.slotted.read_record(SLOT_LOW).value
        ops.append(OpUpdateValue(SLOT_LOW, old_meta,
                                 _META.pack(level, flags) + new_prefix))
        old_entries = []
        new_entries = []
        for i in range(self.nrecs):
            rec = self.slotted.read_record(DATA_START + i)
            if not (old_prefix + rec.key).startswith(new_prefix):
                raise BTreeError(
                    f"key {old_prefix + rec.key!r} outside new prefix")
            old_entries.append((rec.key, rec.value, rec.ghost))
            new_entries.append((rec.key[extra:], rec.value, rec.ghost))
        if old_entries:
            # Two bulk ops re-encode the whole run; per-record
            # delete/insert pairs made adoption cost scale with the
            # node's record count.
            ops.append(OpBulkDelete(DATA_START, tuple(old_entries)))
            ops.append(OpBulkInsert(DATA_START, tuple(new_entries)))
        return ops

    @staticmethod
    def ops_initialize(level: int, low: bytes, high: bytes, high_inf: bool,
                       foster_key: bytes = b"",
                       foster_pid: int = NO_FOSTER) -> list[PageOp]:
        """Bookkeeping-record inserts for a freshly formatted node.

        The prefix is fixed here: the common prefix of the fences (or
        empty when the high fence is infinite).
        """
        from repro.btree.keys import common_prefix
        prefix = b"" if high_inf else common_prefix(low, high)
        meta = encode_meta(level, high_inf, prefix)
        return [OpInsert(SLOT_LOW, low, meta, True),
                OpInsert(SLOT_HIGH, high, b"", True),
                OpInsert(SLOT_FOSTER, foster_key, encode_pid(foster_pid), True)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        high = "inf" if self.high_inf else repr(self.high_fence)
        foster = f", foster={self.foster_pid}@{self.foster_key!r}" if self.has_foster else ""
        return (f"BTreeNode(page={self.page.page_id}, level={self.level}, "
                f"[{self.low_fence!r}, {high}), {self.nrecs} recs{foster})")
