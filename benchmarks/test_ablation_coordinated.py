"""Ablation — coordinated vs independent multi-page recovery.

Section 5.2 predicts: "if all pages on a storage device require
recovery at the same time, and if their recovery is coordinated, then
access patterns and performance of the recovery process resemble those
of traditional media recovery."

The sweep grows the victim set from one page to every allocated data
page and compares independent (one cold chain walk per page) against
coordinated recovery (shared log access, sequential write-back).
"""

from __future__ import annotations

from benchmarks.common import key_of, print_table, value_of
from repro.core.backup import BackupPolicy
from repro.core.coordinated import CoordinatedRecovery
from repro.core.single_page import SinglePageRecovery
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import PageFailureKind, SinglePageFailure
from repro.sim.iomodel import HDD_PROFILE
from repro.wal.log_reader import LogReader

N_KEYS = 800


def build():
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=2048, buffer_capacity=64,
        device_profile=HDD_PROFILE, log_profile=HDD_PROFILE,
        backup_profile=HDD_PROFILE,
        backup_policy=BackupPolicy.disabled()))
    tree = db.create_index()
    txn = db.begin()
    for i in range(N_KEYS):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    # Interleaved update traffic so per-page chains span log pages.
    txn = db.begin()
    for v in range(1200):
        i = (v * 997) % N_KEYS
        tree.update(txn, key_of(i), value_of(i, v))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree


def victims_of(db, tree, count):
    all_pages = [pid for pid in range(db.config.data_start,
                                      db.allocated_pages())]
    step = max(1, len(all_pages) // count)
    return all_pages[::step][:count]


def run_independent(db, victims):
    t0 = db.clock.now
    pages_read = 0
    for pid in victims:
        reader = LogReader(db.log, db.clock, db.config.log_profile, db.stats)
        spr = SinglePageRecovery(db.pri, db.backup_store, reader,
                                 db.device, db.clock, db.stats)
        spr.recover(SinglePageFailure(pid, PageFailureKind.DEVICE_READ_ERROR))
        pages_read += reader.pages_read
    return pages_read, db.clock.now - t0


def run_coordinated(db, victims):
    coordinator = CoordinatedRecovery(db.pri, db.backup_store,
                                      db.log_reader, db.device,
                                      db.clock, db.stats)
    t0 = db.clock.now
    result = coordinator.recover_many(victims)
    return result.log_pages_read, db.clock.now - t0


def test_ablation_coordinated_recovery(benchmark):
    def run():
        rows = []
        for count in (1, 8, 32, "all"):
            db, tree = build()
            victims = (victims_of(db, tree, 10**9) if count == "all"
                       else victims_of(db, tree, count))
            ind_pages, ind_secs = run_independent(db, victims)
            db2, tree2 = build()
            victims2 = (victims_of(db2, tree2, 10**9) if count == "all"
                        else victims_of(db2, tree2, count))
            coord_pages, coord_secs = run_coordinated(db2, victims2)
            rows.append([len(victims), ind_pages, ind_secs,
                         coord_pages, coord_secs])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # Coordination never reads more log pages, and the gap widens with
    # the victim count (shared log pages amortize).
    for _n, ind_pages, _is, coord_pages, _cs in rows:
        assert coord_pages <= ind_pages
    big = rows[-1]
    assert big[3] < big[1]
    assert big[4] < big[2]
    # Per-victim coordinated cost falls as the batch grows — the
    # media-recovery-like regime the paper predicts.
    per_victim = [r[4] / r[0] for r in rows]
    assert per_victim[-1] < per_victim[0]

    print_table(
        "Ablation: independent vs coordinated multi-page recovery "
        "(HDD timings)",
        ["victims", "independent: log pages", "independent: sim s",
         "coordinated: log pages", "coordinated: sim s"],
        rows)
