"""Property: any single injected failure preserves every prefix of
committed transactions, in all four restart x restore mode combinations.

Hypothesis draws the workload shape, the failure kind (one of the five
classes the chaos harness composes), and the point in the commit
sequence where it strikes; the :class:`repro.sim.harness.
DurabilityOracle` then demands the surviving state equals exactly the
committed prefix — nothing lost, nothing resurrected, B-tree sound.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.errors import MediaFailure
from repro.sim.harness import MODE_COMBOS, DurabilityOracle
from tests.conftest import fast_config, key_of

EXAMPLES = max(1, int(os.environ.get("TORTURE_EXAMPLES_MULTIPLIER", "1")))

FAILURES = ["crash", "crash-mid-txn", "media", "corrupt-then-crash",
            "backup-loss-then-media"]


def _inject_and_recover(db: Database, tree, oracle: DurabilityOracle,
                        failure: str, restart_mode: str,
                        restore_mode: str, backup_id: int) -> int:
    """Inject one failure, recover, return the backup id to use next."""
    if failure == "crash-mid-txn":
        # An in-flight transaction dies with the crash: its effects
        # are uncertain until the durable log is consulted.
        txn = db.begin()
        key = key_of(7)
        db.locks.acquire(txn.txn_id, key)
        tree.update(txn, key, b"IN-FLIGHT")
        oracle.record_uncertain(txn.txn_id, {key: b"IN-FLIGHT"})
        failure = "crash"
    if failure == "corrupt-then-crash":
        victim = db.config.data_start
        db.flush_everything()
        db.device.inject_bit_rot(victim, nbits=5)
        failure = "crash"
    if failure == "backup-loss-then-media":
        fresh = db.take_full_backup()
        if backup_id != fresh:
            db.backup_store.retire_full_backup(backup_id)  # media loss
        backup_id = fresh
        failure = "media"

    if failure == "crash":
        db.crash()
        db.restart(mode=restart_mode)
        db.finish_restart()
    else:
        db.device.fail_device("property test")
        db._on_media_failure(MediaFailure(db.device.name, "property test"))
        db.recover_media(backup_id, mode=restore_mode)
        db.finish_restore()
    return backup_id


@pytest.mark.parametrize("modes", MODE_COMBOS,
                         ids=["/".join(m) for m in MODE_COMBOS])
class TestSingleFailurePrefixDurability:
    @settings(max_examples=8 * EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(data=st.data())
    def test_committed_prefix_survives(self, modes, data):
        restart_mode, restore_mode = modes
        db = Database(fast_config(restart_mode=restart_mode,
                                  restore_mode=restore_mode))
        tree = db.create_index()
        oracle = DurabilityOracle()
        txn = db.begin()
        for i in range(60):
            tree.insert(txn, key_of(i), b"base")
            oracle.model[key_of(i)] = b"base"
        db.commit(txn)
        backup_id = db.take_full_backup()

        n_txns = data.draw(st.integers(2, 6), label="txns")
        strike = data.draw(st.integers(0, n_txns), label="strike_after")
        failure = data.draw(st.sampled_from(FAILURES), label="failure")

        for batch in range(n_txns):
            if batch == strike:
                backup_id = _inject_and_recover(
                    db, tree, oracle, failure, restart_mode, restore_mode,
                    backup_id)
                tree = db.tree(1)
                # Every previously committed transaction must be intact
                # immediately after recovery...
                assert oracle.full_check(db, f"after-{failure}") == []
            txn = db.begin()
            staged = {}
            for i in data.draw(st.lists(st.integers(0, 80), min_size=1,
                                        max_size=5), label=f"ops{batch}"):
                key = key_of(i)
                value = b"b%d-%d" % (batch, i)
                db.locks.acquire(txn.txn_id, key)
                if key in oracle.model or key in staged:
                    tree.update(txn, key, value)
                else:
                    tree.insert(txn, key, value)
                staged[key] = value
            db.commit(txn)
            oracle.commit_applied(staged)
        if strike == n_txns:
            backup_id = _inject_and_recover(
                db, tree, oracle, failure, restart_mode, restore_mode,
                backup_id)
            tree = db.tree(1)
        # ... and the full history must be intact at the end.
        assert oracle.full_check(db, "end") == []


# ----------------------------------------------------------------------
# Replication (PR 7): the replicated_durable prefix survives the total
# loss of the primary.
# ----------------------------------------------------------------------
REPLICATION_COMBOS = [(ship, restart)
                      for ship in ("tail", "segment")
                      for restart in ("eager", "on_demand")]


@pytest.mark.parametrize("ship_mode,restart_mode", REPLICATION_COMBOS,
                         ids=["/".join(c) for c in REPLICATION_COMBOS])
class TestReplicatedPrefixSurvivesPrimaryLoss:
    @settings(max_examples=6 * EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(data=st.data())
    def test_acked_commits_survive_failover(self, ship_mode, restart_mode,
                                            data):
        """Every commit acknowledged under ``replicated_durable`` must be
        readable from the standby promoted after the primary is lost —
        device and log together, no recovery of the primary at all."""
        db = Database(fast_config())
        tree = db.create_index()
        oracle = DurabilityOracle()
        txn = db.begin()
        for i in range(40):
            tree.insert(txn, key_of(i), b"base")
            oracle.model[key_of(i)] = b"base"
        db.commit(txn)
        db.attach_standby(mode=ship_mode)
        db.tm.ack_mode = "replicated_durable"

        n_txns = data.draw(st.integers(1, 5), label="txns")
        for batch in range(n_txns):
            txn = db.begin()
            staged = {}
            for i in data.draw(st.lists(st.integers(0, 60), min_size=1,
                                        max_size=4), label=f"ops{batch}"):
                key = key_of(i)
                value = b"r%d-%d" % (batch, i)
                db.locks.acquire(txn.txn_id, key)
                if key in oracle.model or key in staged:
                    tree.update(txn, key, value)
                else:
                    tree.insert(txn, key, value)
                staged[key] = value
            db.commit(txn)  # acked: the standby has applied it
            oracle.commit_applied(staged)

        if data.draw(st.booleans(), label="in_flight_loser"):
            # An unacked in-flight transaction rides along; promotion
            # must roll it back, never expose it.
            loser = db.begin()
            db.locks.acquire(loser.txn_id, key_of(0))
            tree.update(loser, key_of(0), b"NEVER-ACKED")

        standby = db.standby
        db.detach_standby()
        db.device.fail_device("primary lost")  # total loss: no recovery
        promoted = standby.promote(restart_mode=restart_mode)
        promoted.finish_restart()
        assert oracle.full_check(promoted, "post-failover") == []


class TestReplicatedChaosCampaigns:
    """Seeded chaos campaigns with a live standby: every mode combo runs
    clean, including standby crashes, link loss, and failovers."""

    @pytest.mark.parametrize("ack_mode,ship_mode", [
        ("local_durable", "tail"),
        ("replicated_durable", "tail"),
        ("replicated_durable", "segment"),
    ], ids=lambda v: v)
    def test_campaign_clean(self, ack_mode, ship_mode):
        from repro.sim.harness import run_campaign

        campaign = run_campaign(4, base_seed=9100, n_events=28,
                                n_clients=3, n_keys=60,
                                differential=False, shrink=False,
                                standby=True, ack_mode=ack_mode,
                                ship_mode=ship_mode)
        assert campaign.ok, campaign.summary()
        assert campaign.recoveries > 0
