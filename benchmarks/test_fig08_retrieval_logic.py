"""Figure 8 — page retrieval logic after a buffer fault.

The flowchart's paths, measured on realistic disk timings:

1. read passes all consistency checks -> serve the page;
2. a check fails and single-page failures are supported -> single-page
   recovery, then serve the page (caller sees only a delay);
3. a check fails, no SPF support (or recovery impossible) -> declare a
   media failure.

The decisive numbers: the recovery path costs a handful of extra I/Os
(milliseconds to ~a second), while the escalation path costs a full
restore (orders of magnitude more).
"""

from __future__ import annotations

from benchmarks.common import key_of, leaf_of, print_table, timed_db
from repro.errors import MediaFailure


def measure_paths():
    rows = []

    # Path 1: clean read.
    db, tree = timed_db(400)
    victim = leaf_of(db, tree)
    t0 = db.clock.now
    db.pool.fix(victim)
    db.pool.unfix(victim)
    rows.append(["clean read", db.clock.now - t0, "page served"])
    clean_cost = db.clock.now - t0

    # Path 2: failure detected, SPF supported.
    db, tree = timed_db(400)
    victim = leaf_of(db, tree)
    db.device.inject_bit_rot(victim, nbits=4)
    t0 = db.clock.now
    db.pool.fix(victim)
    db.pool.unfix(victim)
    recovery_cost = db.clock.now - t0
    rows.append(["failure -> single-page recovery", recovery_cost,
                 "page served (delayed)"])

    # Path 3: failure detected, recovery unsupported -> media failure.
    from repro.baselines.media_only import traditional_config
    from repro.engine.database import Database
    from repro.sim.iomodel import HDD_PROFILE

    cfg = traditional_config(page_size=4096, capacity_pages=2048,
                             buffer_capacity=128,
                             device_profile=HDD_PROFILE,
                             log_profile=HDD_PROFILE,
                             backup_profile=HDD_PROFILE)
    db3 = Database(cfg)
    tree3 = db3.create_index()
    txn = db3.begin()
    # Page-dense records: the restore must rebuild hundreds of pages.
    for i in range(1200):
        tree3.insert(txn, key_of(i), b"v" * 420)
    db3.commit(txn)
    backup_id = db3.take_full_backup()
    db3.flush_everything()
    db3.evict_everything()
    victim3 = leaf_of(db3, tree3)
    db3.device.inject_bit_rot(victim3, nbits=4)
    t0 = db3.clock.now
    try:
        db3.pool.fix(victim3)
        raise AssertionError("expected escalation")
    except MediaFailure:
        pass
    report = db3.recover_media(backup_id)
    escalation_cost = db3.clock.now - t0
    rows.append(["failure -> media failure + restore", escalation_cost,
                 f"{report.pages_restored} pages restored"])
    return rows, clean_cost, recovery_cost, escalation_cost


def test_fig08_retrieval_paths(benchmark):
    rows, clean, recovery, escalation = benchmark.pedantic(
        measure_paths, rounds=1, iterations=1)

    # The recovery path is a small constant factor over a clean read...
    assert clean < recovery < 1.0
    # ... while escalation costs orders of magnitude more.
    assert escalation > 5 * recovery

    print_table(
        "Figure 8: page retrieval paths after a buffer fault (HDD timings)",
        ["path", "simulated seconds", "outcome"],
        rows)


def test_fig08_bench_clean_fetch(benchmark):
    """Wall time of the fully-checked read path (the common case)."""
    db, tree = timed_db(400)
    victim = leaf_of(db, tree)

    def fetch():
        page = db.recovery_manager.fetch_page(victim)
        return page

    page = benchmark(fetch)
    assert page.page_id == victim
