"""Media matrix: media failures injected at every crash-matrix point.

The crash matrix's protocol points (``tests/test_crash_matrix.py``)
describe the interesting mid-protocol states; this suite injects a
*media* failure at each of them and requires both restore modes to
converge to exactly the committed state, with a differential oracle
demanding byte-identical pages and an identical log from eager and
on-demand restore of the same failure image.

It also covers the paper's double-failure cells (the failure-class
matrix composes):

* **media failure during an on-demand restart** — the crash's pending
  redo/undo work is absorbed by the restore (chain replay from the
  backup subsumes every deferred redo; the restore analysis
  rediscovers every deferred loser);
* **system failure during an on-demand restore** — the half-restored
  replacement device is not a trustworthy redo substrate, so restart
  refuses and the restore re-runs from the same (retained) backup,
  already-restored pages replaying as no-ops.
"""

from __future__ import annotations

import pytest

from repro.btree.verify import verify_tree
from repro.errors import MediaFailure
from tests.conftest import (
    assert_identical_recovery,
    clone_crashed,
    key_of,
    value_of,
)
from tests.test_crash_matrix import LOSER_KEYS, PROTOCOL_POINTS, prepared


def media_fail(db) -> None:
    """Fail the device through the real escalation path: active user
    transactions are aborted, their locks released."""
    db.device.fail_device("injected media failure")
    db._on_media_failure(MediaFailure(db.device.name,
                                      "injected media failure"))


def prepared_media(**overrides):
    """The crash matrix's prepared state, with a full backup where the
    crash matrix takes its checkpoint."""
    db, tree, model = prepared(with_backup=True, **overrides)
    backup_id = db.backup_store.full_backup_ids()[-1]
    return db, tree, model, backup_id


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["eager", "on_demand"])
@pytest.mark.parametrize("point", sorted(PROTOCOL_POINTS))
class TestMediaMatrix:
    def test_converges_to_committed_state(self, point, mode):
        overrides, steps = PROTOCOL_POINTS[point]
        db, tree, model, backup_id = prepared_media(**overrides)
        steps(db, tree)
        media_fail(db)
        report = db.recover_media(backup_id, mode=mode)
        assert report.mode == mode
        tree = db.tree(1)
        # Committed keys are readable immediately in both modes (lazy
        # restore rides the fix path); loser keys only once undone —
        # and unlike a crash, a media failure does not erase an
        # unforced loser's records, so the mid-segment-seal bulk's
        # keys (60..129) count as loser keys here too.
        for i in (0, 2, 40, 140):
            assert tree.lookup(key_of(i)) == model[key_of(i)]
        if mode == "on_demand":
            assert report.pending_restore_pages > 0
            db.finish_restore()
            assert not db.restore_pending
            assert db.last_restore_completion_lsn is not None
        assert dict(tree.range_scan()) == model
        assert verify_tree(tree).ok

    def test_survives_repeated_media_failure(self, point, mode):
        """The replacement device fails too: recover again from the
        same retained backup."""
        overrides, steps = PROTOCOL_POINTS[point]
        db, tree, model, backup_id = prepared_media(**overrides)
        steps(db, tree)
        media_fail(db)
        db.recover_media(backup_id, mode=mode)
        if mode == "on_demand":
            db.drain_restore(page_budget=5)  # partial progress
        media_fail(db)
        db.recover_media(backup_id, mode=mode)
        if mode == "on_demand":
            db.finish_restore()
        tree = db.tree(1)
        assert dict(tree.range_scan()) == model
        assert verify_tree(tree).ok


# ----------------------------------------------------------------------
# The matrix with the prefetcher on (PR 9): speculative fetches of
# not-yet-restored pages ride the restore-on-fix hook, so they must
# neither double-restore a page nor corrupt the restore watermark.
# ----------------------------------------------------------------------
def prepared_media_prefetching(point):
    """The media matrix's prepared state with semantic prefetch on and
    the model warmed by real traffic."""
    overrides, steps = PROTOCOL_POINTS[point]
    db, tree, model, backup_id = prepared_media(prefetch_mode="semantic",
                                                **overrides)
    for i in range(0, 150, 3):
        tree.lookup(key_of(i))
    db.prefetch_tick(8)  # speculative frames resident at the failure
    return db, tree, model, backup_id, steps


@pytest.mark.parametrize("point", sorted(PROTOCOL_POINTS))
class TestMediaMatrixWithPrefetch:
    def test_converges_with_speculative_warmup(self, point):
        db, tree, model, backup_id, steps = prepared_media_prefetching(point)
        steps(db, tree)
        media_fail(db)
        db.recover_media(backup_id, mode="on_demand")
        tree = db.tree(1)
        # Speculative warmup interleaved with budgeted (ranked) drains:
        # a tick's fetch of a pending page restores it through the same
        # first-fix path a demand read would take.
        while db.restore_pending:
            db.prefetch_tick(4)
            pages, losers = db.drain_restore(page_budget=3, loser_budget=1)
            if pages == 0 and losers == 0:
                break
        db.finish_restore()
        assert not db.restore_pending
        assert db.last_restore_completion_lsn is not None
        assert dict(tree.range_scan()) == model
        assert verify_tree(tree).ok

    def test_media_failure_with_prefetched_unrestored_frames(self, point):
        """Lose the replacement device while speculative frames cover
        pages whose restore may not have run: the watermark never
        lifted early, and the re-run restore from the same retained
        backup converges on its own."""
        db, tree, model, backup_id, steps = prepared_media_prefetching(point)
        steps(db, tree)
        media_fail(db)
        db.recover_media(backup_id, mode="on_demand")
        db.prefetch_tick(6)
        assert (db.last_restore_completion_lsn is not None) == (
            not db.restore_pending)
        media_fail(db)
        db.recover_media(backup_id, mode="on_demand")
        db.finish_restore()
        tree = db.tree(1)
        assert dict(tree.range_scan()) == model
        assert verify_tree(tree).ok


@pytest.mark.parametrize("point", sorted(PROTOCOL_POINTS))
def test_modes_restore_identically(point):
    """The differential oracle: one media-failure image, two restores
    — byte-identical pages, identical log, identical committed state."""
    overrides, steps = PROTOCOL_POINTS[point]
    db, tree, _model, backup_id = prepared_media(**overrides)
    steps(db, tree)
    media_fail(db)
    eager_db = clone_crashed(db)
    lazy_db = clone_crashed(db)
    eager_db.recover_media(backup_id, mode="eager")
    lazy_db.recover_media(backup_id, mode="on_demand")
    lazy_db.finish_restore()
    assert_identical_recovery(eager_db, lazy_db)


# ----------------------------------------------------------------------
# Double failures (the failure-class matrix composes)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["eager", "on_demand"])
@pytest.mark.parametrize("point", sorted(PROTOCOL_POINTS))
class TestMediaFailureDuringOnDemandRestart:
    def test_restore_absorbs_pending_restart(self, point, mode):
        """Crash at the point, open with on-demand restart, then lose
        the device while redo/undo work is still pending: the restore
        must deliver exactly the committed state on its own."""
        overrides, steps = PROTOCOL_POINTS[point]
        db, tree, model, backup_id = prepared_media(**overrides)
        steps(db, tree)
        db.crash()
        db.restart(mode="on_demand")
        media_fail(db)
        db.recover_media(backup_id, mode=mode)
        # The restart registry's deferred work was absorbed.
        assert db.restart_registry is None
        if mode == "on_demand":
            db.finish_restore()
        tree = db.tree(1)
        assert dict(tree.range_scan()) == model
        assert verify_tree(tree).ok


@pytest.mark.parametrize("point", sorted(PROTOCOL_POINTS))
def test_double_failure_modes_restore_identically(point):
    """Differential oracle for the double failure: crash, on-demand
    restart, media failure mid-restart — both restore modes agree."""
    overrides, steps = PROTOCOL_POINTS[point]
    db, tree, _model, backup_id = prepared_media(**overrides)
    steps(db, tree)
    db.crash()
    db.restart(mode="on_demand")
    media_fail(db)
    eager_db = clone_crashed(db)
    lazy_db = clone_crashed(db)
    eager_db.recover_media(backup_id, mode="eager")
    lazy_db.recover_media(backup_id, mode="on_demand")
    lazy_db.finish_restore()
    assert_identical_recovery(eager_db, lazy_db)


class TestCrashDuringOnDemandRestore:
    def test_restart_refuses_half_restored_device(self):
        db, tree, model, backup_id = prepared_media()
        media_fail(db)
        db.recover_media(backup_id, mode="on_demand")
        db.drain_restore(page_budget=4)
        assert db.restore_pending
        db.crash()
        with pytest.raises(MediaFailure):
            db.restart()

    @pytest.mark.parametrize("rerun_mode", ["eager", "on_demand"])
    def test_rerun_restore_recovers_everything(self, rerun_mode):
        """Crash mid-drain, then re-run the restore from the same
        backup: restored pages replay as no-ops, unrestored pages are
        rebuilt, losers are rediscovered from the durable log."""
        db, tree, model, backup_id = prepared_media()
        media_fail(db)
        db.recover_media(backup_id, mode="on_demand")
        db.drain_restore(page_budget=4)
        db.crash()
        db.recover_media(backup_id, mode=rerun_mode)
        if rerun_mode == "on_demand":
            db.finish_restore()
        tree = db.tree(1)
        assert dict(tree.range_scan()) == model
        assert verify_tree(tree).ok
        for i in LOSER_KEYS:
            assert tree.lookup(key_of(i)) == model[key_of(i)]

    def test_crash_after_completion_is_a_plain_crash(self):
        """Once the watermark is recorded, a crash is just a crash:
        restart works and the restore does not re-run."""
        db, tree, model, backup_id = prepared_media()
        media_fail(db)
        db.recover_media(backup_id, mode="on_demand")
        db.finish_restore()
        assert not db.restore_pending
        db.crash()
        db.restart()
        tree = db.tree(1)
        assert dict(tree.range_scan()) == model
        assert verify_tree(tree).ok


class TestLoserPredatingBackup:
    """A transaction active *at backup time* whose records all precede
    the backup record: its uncommitted update sits inside the backup
    images (the backup's checkpoint flushed it), and the tail scan
    alone would never see it.  The loser set is seeded from the
    backup's checkpoint ATT, so it must still be rolled back."""

    @pytest.mark.parametrize("mode", ["eager", "on_demand"])
    def test_rolled_back_in_both_modes(self, mode):
        from repro.engine.database import Database
        from tests.conftest import fast_config

        db = Database(fast_config())
        tree = db.create_index()
        txn = db.begin()
        for i in range(100):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        loser = db.begin()
        tree.update(loser, key_of(5), b"DOOMED-PRE-BACKUP")
        backup_id = db.take_full_backup()  # checkpoint flushes the loser
        media_fail(db)
        report = db.recover_media(backup_id, mode=mode)
        assert loser.txn_id in report.loser_txn_ids
        if mode == "on_demand":
            db.finish_restore()
        tree = db.tree(1)
        assert tree.lookup(key_of(5)) == value_of(5, 0)
        assert verify_tree(tree).ok


class TestRestoreWithTraffic:
    def test_traffic_during_restore_converges(self):
        """Interleave reads, writes, and budgeted drains while the
        restore is pending; the end state is the committed model plus
        exactly the new traffic."""
        db, tree, model, backup_id = prepared_media()
        media_fail(db)
        db.recover_media(backup_id, mode="on_demand")
        tree = db.tree(1)
        probe = 0
        wave = 0
        while db.restore_pending:
            pages, losers = db.drain_restore(page_budget=3, loser_budget=1)
            key = key_of(probe % 150)
            if key not in (key_of(i) for i in LOSER_KEYS):
                assert tree.lookup(key) == model[key]
            txn = db.begin()
            new_key = key_of(500 + wave)
            db.insert(tree, new_key, b"during-restore-%d" % wave, txn=txn)
            db.commit(txn)
            model[new_key] = b"during-restore-%d" % wave
            probe += 37
            wave += 1
            if pages == 0 and losers == 0:
                break
        db.finish_restore()
        assert dict(tree.range_scan()) == model
        assert verify_tree(tree).ok

    def test_update_of_unrestored_page_restores_it_first(self):
        db, tree, model, backup_id = prepared_media()
        media_fail(db)
        db.recover_media(backup_id, mode="on_demand")
        pending_before = db.restore_registry.pending_page_count
        tree = db.tree(1)
        txn = db.begin()
        db.update(tree, key_of(100), b"updated-mid-restore", txn=txn)
        db.commit(txn)
        assert db.restore_registry.pending_page_count < pending_before
        assert tree.lookup(key_of(100)) == b"updated-mid-restore"
