"""SQL Server-style automatic page repair via database mirroring.

Section 2: "If a page within a mirror is found to be inconsistent, it
is automatically replaced by the corresponding page in the primary
copy.  If a page in the primary copy is inconsistent, it is frozen
until the mirror has applied the entire stream of log records,
whereupon the page is replaced by an up-to-date copy of the page from
the mirror.  Note that the recovery log is applied to the entire
mirror database, not just the individual page that requires repair,
and that the recovery process completely fails to exploit the per-page
log chain already present in the ... recovery log."

:class:`LogShippingMirror` models the mirror: a full second copy of
the database kept (lazily) current by replaying the shipped log.  Its
:meth:`repair_page` first forces the mirror to catch up on the *whole*
outstanding log stream — every record for every page, not just the
failed one — and only then serves the replacement page.  Contrast with
:class:`repro.core.single_page.SinglePageRecovery`, which reads only
the failed page's chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RecoveryError
from repro.page.page import Page
from repro.sim.clock import SimClock
from repro.sim.iomodel import IOProfile
from repro.sim.stats import Stats
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecordKind, decompress_image


@dataclass
class MirrorRepairResult:
    """Cost of one mirror-based page repair."""

    page_id: int
    records_applied_to_mirror: int
    mirror_pages_written: int
    elapsed_simulated: float


class LogShippingMirror:
    """A full mirror database maintained by log shipping."""

    def __init__(self, log: LogManager, clock: SimClock, profile: IOProfile,
                 stats: Stats, page_size: int) -> None:
        self.log = log
        self.clock = clock
        self.profile = profile
        self.stats = stats
        self.page_size = page_size
        self._pages: dict[int, Page] = {}
        self._applied_up_to = 0
        self.total_records_applied = 0

    def seed_from_images(self, images: dict[int, bytes], up_to_lsn: int) -> None:
        """Initialize the mirror from a database snapshot."""
        total = 0
        for page_id, image in images.items():
            self._pages[page_id] = Page(self.page_size, image)
            total += len(image)
        self.clock.advance(self.profile.write_cost(total, sequential=True))
        self._applied_up_to = up_to_lsn

    # ------------------------------------------------------------------
    # Log shipping
    # ------------------------------------------------------------------
    def catch_up(self, up_to_lsn: int | None = None) -> tuple[int, int]:
        """Apply the outstanding log stream to the mirror.

        Returns (records applied, pages written).  Charges a
        sequential log read for the span plus one random write per
        mirror page touched — the whole-database replay the paper
        contrasts with per-page recovery.
        """
        target = self.log.end_lsn if up_to_lsn is None else up_to_lsn
        if target <= self._applied_up_to:
            return 0, 0
        span = target - self._applied_up_to
        self.clock.advance(self.profile.read_cost(span, sequential=True))
        applied = 0
        touched: set[int] = set()
        for record in self.log.records_from(self._applied_up_to):
            if record.lsn >= target:
                break
            if not record.is_page_update or record.page_id < 0:
                continue
            page = self._pages.get(record.page_id)
            if record.kind == LogRecordKind.FORMAT_PAGE:
                page = Page.format(self.page_size, record.page_id)
                self._pages[record.page_id] = page
            if page is None:
                continue  # page outside the mirrored snapshot
            if record.kind == LogRecordKind.FULL_PAGE_IMAGE:
                as_of = record.page_lsn if record.page_lsn else record.lsn
                if page.page_lsn < as_of:
                    page.data[:] = decompress_image(record.image or b"")
                    page.btree_cache = None
                    if page.page_lsn != as_of:
                        page.page_lsn = as_of
                    applied += 1
                    touched.add(record.page_id)
                continue
            if record.op is None or page.page_lsn >= record.lsn:
                continue
            record.op.apply_redo(page)
            page.page_lsn = record.lsn
            applied += 1
            touched.add(record.page_id)
        for _page_id in touched:
            self.clock.advance(self.profile.write_cost(self.page_size))
        self._applied_up_to = target
        self.total_records_applied += applied
        self.stats.bump("mirror_records_applied", applied)
        return applied, len(touched)

    # ------------------------------------------------------------------
    # Page repair
    # ------------------------------------------------------------------
    def repair_page(self, page_id: int) -> tuple[Page, MirrorRepairResult]:
        """Serve a replacement page — after full catch-up.

        The failed page "is frozen until the mirror has applied the
        entire stream of log records".
        """
        start = self.clock.now
        applied, written = self.catch_up()
        page = self._pages.get(page_id)
        if page is None:
            raise RecoveryError(f"page {page_id} not present in the mirror")
        # Ship the page back to the primary (one read + transfer).
        self.clock.advance(self.profile.read_cost(self.page_size))
        self.stats.bump("mirror_page_repairs")
        result = MirrorRepairResult(
            page_id=page_id,
            records_applied_to_mirror=applied,
            mirror_pages_written=written,
            elapsed_simulated=self.clock.now - start,
        )
        return page.copy(), result
