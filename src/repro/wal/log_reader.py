"""Cost-accounted log reading, including per-page chain walks.

Reading the log during recovery is not free: the paper estimates that
single-page recovery "may take dozens of I/Os in order to read the
required log records" (Section 6).  :class:`LogReader` charges one
random read per *distinct log page* (8 KiB) it touches, with a small
cache so that clustered records cost a single I/O — the same accounting
a real implementation with a log-page buffer would see.
"""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.iomodel import IOProfile
from repro.sim.stats import Stats
from repro.wal.lsn import LOG_PAGE_SIZE, NULL_LSN, log_page_of
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


class LogReader:
    """Reads records from a :class:`LogManager`, charging I/O cost."""

    def __init__(self, log: LogManager, clock: SimClock, profile: IOProfile,
                 stats: Stats, cache_pages: int = 64) -> None:
        self.log = log
        self.clock = clock
        self.profile = profile
        self.stats = stats
        self.cache_pages = cache_pages
        self._cached: list[int] = []  # LRU of log page numbers
        self.pages_read = 0
        self.records_read = 0

    def _charge(self, lsn: int) -> None:
        page = log_page_of(lsn)
        if page in self._cached:
            self._cached.remove(page)
            self._cached.append(page)
            return
        self.clock.advance(self.profile.read_cost(LOG_PAGE_SIZE))
        self.stats.bump("log_page_reads")
        self.pages_read += 1
        self._cached.append(page)
        if len(self._cached) > self.cache_pages:
            self._cached.pop(0)

    def read(self, lsn: int) -> LogRecord:
        """Read one record, charging for its log page if uncached."""
        self._charge(lsn)
        self.records_read += 1
        return self.log.record_at(lsn)

    def walk_page_chain(self, start_lsn: int, stop_after_lsn: int) -> list[LogRecord]:
        """Walk the per-page chain backwards and return records oldest-first.

        Follows ``page_prev_lsn`` pointers from ``start_lsn`` back while
        record LSNs are greater than ``stop_after_lsn`` (the PageLSN of
        the backup image).  Records are pushed on a stack and popped in
        apply order, implementing the LIFO step of Figure 10.
        """
        stack: list[LogRecord] = []
        lsn = start_lsn
        while lsn != NULL_LSN and lsn > stop_after_lsn:
            record = self.read(lsn)
            stack.append(record)
            lsn = record.page_prev_lsn
        # Pop the stack: oldest record first.
        return list(reversed(stack))

    def scan_from(self, start_lsn: int) -> list[LogRecord]:
        """Sequential forward scan (analysis / redo passes).

        Sequential scans are charged at streaming cost for the byte
        range, not per-record random reads.
        """
        span = max(0, self.log.end_lsn - start_lsn)
        self.clock.advance(self.profile.read_cost(span, sequential=True))
        self.stats.bump("log_scans")
        records = self.log.records_from(start_lsn)
        self.records_read += len(records)
        return records
