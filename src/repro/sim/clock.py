"""A deterministic simulated clock.

Components that perform "expensive" operations (device reads and
writes, log forces, backup restores) advance the clock by the modeled
cost of the operation.  Experiments read elapsed simulated time in
seconds, which is the quantity the paper reasons about in Section 6.
"""

from __future__ import annotations

from repro.sync import Mutex


class SimClock:
    """Monotonic simulated clock measured in seconds.

    A single *deadline* can be armed on the clock (:meth:`arm`): the
    first :meth:`advance` that reaches it disarms it and invokes its
    callback.  Because every modeled device and log I/O advances the
    clock, an armed callback fires *in the middle* of whatever
    multi-step engine operation happens to cross the deadline — this is
    how the chaos harness injects failures at arbitrary protocol
    points rather than only between operations (the callback typically
    raises, unwinding the interrupted operation like a process crash
    would).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)
        self._deadline: float | None = None
        self._on_deadline = None  # Callable[[], None] | None
        # Concurrent sessions advance the clock from many threads; the
        # single-threaded chaos paths see only an uncontended acquire.
        self._mutex = Mutex()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        with self._mutex:
            self._now += seconds
            if self._deadline is not None and self._now >= self._deadline:
                callback = self._on_deadline
                self.disarm()
                callback()
            return self._now

    def arm(self, deadline: float, callback) -> None:  # noqa: ANN001
        """Arm ``callback`` to fire at the first advance reaching
        ``deadline``.  Only one deadline may be armed at a time."""
        with self._mutex:
            if self._on_deadline is not None:
                raise ValueError("a clock deadline is already armed")
            if callback is None:
                raise ValueError("deadline callback must be callable")
            self._deadline = float(deadline)
            self._on_deadline = callback

    def disarm(self) -> None:
        """Cancel the armed deadline, if any."""
        with self._mutex:
            self._deadline = None
            self._on_deadline = None

    @property
    def armed(self) -> bool:
        """Is a deadline currently armed?"""
        return self._on_deadline is not None

    def elapsed_since(self, mark: float) -> float:
        """Seconds elapsed since a previously recorded ``mark``."""
        return self._now - mark

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"


class StopWatch:
    """Measure a span of simulated time on a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "StopWatch":
        self._start = self._clock.now
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = self._clock.now - self._start
