"""Perf-snapshot entry point: ``python benchmarks/run_all.py``.

Runs the headline performance probes on the simulated substrate and
writes a ``BENCH_<tag>.json`` snapshot next to the repo root:

* **single-page recovery I/Os** at growing total log volume (the
  segmented-WAL acceptance check: reads stay O(chain length));
* **log append throughput** (records/s and MB/s, wall time) including
  chain-head index maintenance;
* **group-commit effect**: forces needed for a burst of small
  transactions, batched vs. unbatched;
* **instant restart**: time-to-first-transaction after a crash, eager
  vs. on-demand, as the dirty-page count grows 10x;
* **instant restore**: time-to-first-transaction after a media
  failure, eager vs. on-demand, as the device grows 10x — plus a
  byte-identical differential oracle across the two modes;
* **chaos scenario coverage**: a fixed-seed chaos campaign
  (``repro/sim/harness.py``) must cover all five failure-event kinds
  and all four restart x restore mode combinations with the
  durability oracle clean;
* **replication** (``benchmarks/test_ext_replication.py``): the warm
  replica as a repair source (zero backup fetches, zero chain replay)
  versus the backup + chain path, the simulated per-commit cost of
  ``local_durable`` vs. ``replicated_durable`` acks with and without
  group commit, and a replicated chaos campaign covering standby
  crashes, link loss, and failover — written to
  ``BENCH_replication.json``;
* **sharded throughput**: the same batched workload through
  ``repro.connect`` against one embedded engine and against four
  engine processes behind the sharded client — the 4-process run
  must clear >= 2.5x the single engine's ops/s — plus a fixed-seed
  sharded chaos campaign (``repro/sim/shard_harness.py``: shard
  crashes at 2PC failpoints, partitions, per-shard restart) with the
  cross-shard atomicity oracle clean — written to
  ``BENCH_sharding.json``;
* **online rebalancing**: a 90/10-skewed workload whose hot slots all
  start on shard 0, measured on simulated per-shard makespan before
  and after ``move_slot`` spreads them over the fleet (gated at
  >= 1.5x speedup with a no-lost-key scan diff), plus a fixed-seed
  chaos campaign where slot moves race crashes and partitions —
  written to ``BENCH_rebalance.json``;
* **per-operation latency** (``benchmarks/latency.py``): p50/p99/p999
  for insert, lookup and commit plus single-thread ops/s on the
  free-I/O profile, best-of-5, gated at >= 3x the pre-rewrite
  throughput — written to its own ``BENCH_latency.json``.

Every probe carries explicit pass criteria; the process exits
non-zero if any probe fails, so the CI benchmarks job cannot pass
vacuously.  All RNGs are seeded deterministically up front.  CI runs
this after the test suites so every build leaves a comparable perf
artifact (``benchmarks/check_regression.py`` diffs it against the
committed snapshot).  Usage::

    PYTHONPATH=src python benchmarks/run_all.py [output-dir]
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for path in (_ROOT, os.path.join(_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.common import fast_db, key_of, value_of  # noqa: E402
from benchmarks.test_ext_segmented_log import (  # noqa: E402
    CHAIN_LENGTH,
    run_recovery_with_foreign_traffic,
)
from repro.sim.clock import SimClock  # noqa: E402
from repro.sim.iomodel import NULL_PROFILE  # noqa: E402
from repro.sim.stats import Stats  # noqa: E402
from repro.wal.log_manager import LogManager  # noqa: E402
from repro.wal.lsn import NULL_LSN  # noqa: E402
from repro.wal.ops import OpInsert  # noqa: E402
from repro.wal.records import LogRecord, LogRecordKind  # noqa: E402


def bench_recovery_ios() -> dict:
    """Recovery log reads as the log grows (should stay flat)."""
    points = []
    for foreign in (0, 2000, 8000):
        result, log_bytes, segments = run_recovery_with_foreign_traffic(foreign)
        points.append({
            "foreign_updates": foreign,
            "log_bytes": log_bytes,
            "segments": segments,
            "log_pages_read": result.log_pages_read,
            "records_applied": result.records_applied,
            "total_random_ios": result.total_random_ios,
        })
    reads = [p["log_pages_read"] for p in points]
    return {
        "chain_length": CHAIN_LENGTH,
        "points": points,
        "reads_flat": max(reads) <= max(1, min(reads)) + 2,
    }


def bench_append_throughput(n_records: int = 50_000) -> dict:
    """Wall-time throughput of the segmented append path."""
    log = LogManager(SimClock(), NULL_PROFILE, Stats())
    prev = {pid: NULL_LSN for pid in range(128)}
    payload = b"v" * 48
    t0 = time.perf_counter()
    for i in range(n_records):
        pid = i % 128
        prev[pid] = log.append(LogRecord(
            LogRecordKind.UPDATE, txn_id=1, page_id=pid,
            page_prev_lsn=prev[pid], op=OpInsert(0, b"key", payload)))
    elapsed = time.perf_counter() - t0
    return {
        "records": n_records,
        "seconds": round(elapsed, 4),
        "records_per_second": round(n_records / elapsed),
        "mb_per_second": round(log.encoded_size() / elapsed / 1e6, 2),
        "segments": log.segment_count,
    }


def bench_group_commit(n_txns: int = 200) -> dict:
    """Log forces for a burst of one-op transactions, both flavours."""
    out = {}
    for label, batched in (("unbatched", False), ("batched", True)):
        db, tree = fast_db(50)
        before = db.stats.get("log_forces")
        if batched:
            with db.group_commit():
                for i in range(n_txns):
                    txn = db.begin()
                    tree.update(txn, key_of(i % 50), value_of(i, 1))
                    db.commit(txn)
        else:
            for i in range(n_txns):
                txn = db.begin()
                tree.update(txn, key_of(i % 50), value_of(i, 1))
                db.commit(txn)
        out[label] = {
            "commits": n_txns,
            "log_forces": db.stats.get("log_forces") - before,
        }
    return out


def seed_everything(seed: int = 0) -> None:
    """Deterministic runs: the engine's fault injectors already carry
    explicit seeds; this pins the remaining ambient RNGs.  (Hash
    randomization is fixed at interpreter startup and cannot be pinned
    here — no probe depends on dict/set iteration order.)"""
    random.seed(seed)
    try:
        import numpy

        numpy.random.seed(seed)
    except ImportError:
        pass


def bench_instant_restart() -> dict:
    """Time-to-first-transaction after a crash, both restart modes."""
    from benchmarks.test_ext_instant_restart import (
        crashed_db,
        time_to_first_transaction,
    )

    points = []
    for n_keys in (1200, 12000):
        row: dict = {"keys": n_keys}
        for mode in ("eager", "on_demand"):
            db = crashed_db(n_keys)
            seconds, report = time_to_first_transaction(db, mode)
            row[mode] = {
                "ttft_seconds": round(seconds, 4),
                "dirty_pages": report.dirty_pages_at_analysis_end,
                "pending_redo_pages": report.pending_redo_pages,
            }
        points.append(row)
    small, large = points
    return {
        "points": points,
        "eager_grows": (large["eager"]["ttft_seconds"]
                        >= 5 * small["eager"]["ttft_seconds"]),
        "on_demand_flat": (large["on_demand"]["ttft_seconds"]
                           <= 2 * small["on_demand"]["ttft_seconds"]),
    }


def bench_instant_restore() -> dict:
    """Time-to-first-transaction after a media failure, both restore
    modes, plus the eager-vs-on-demand differential oracle."""
    from benchmarks.test_ext_instant_restore import (
        failed_db,
        restore_both_modes,
        time_to_first_transaction,
    )
    from tests.conftest import assert_identical_recovery

    points = []
    for n_keys in (1200, 24000):
        row: dict = {"keys": n_keys}
        for mode in ("eager", "on_demand"):
            db, backup_id = failed_db(n_keys)
            seconds, report = time_to_first_transaction(db, backup_id, mode)
            row[mode] = {
                "ttft_seconds": round(seconds, 4),
                "pages_restored": report.pages_restored,
                "pending_restore_pages": report.pending_restore_pages,
            }
        points.append(row)
    small, large = points

    eager_db, lazy_db = restore_both_modes(1200)
    try:
        assert_identical_recovery(eager_db, lazy_db)
        byte_identical = True
    except AssertionError:
        byte_identical = False

    return {
        "points": points,
        "eager_grows": (large["eager"]["ttft_seconds"]
                        >= 5 * small["eager"]["ttft_seconds"]),
        "on_demand_flat": (large["on_demand"]["ttft_seconds"]
                           <= 2 * small["on_demand"]["ttft_seconds"]),
        "modes_byte_identical": byte_identical,
    }


def bench_commit_throughput(commits_per_thread: int = 120) -> dict:
    """Forces-per-commit as committing threads grow (cross-thread
    group commit).

    Each point runs N worker threads over Sessions against one engine,
    every thread committing single-update transactions on its own key
    range (no lock conflicts — the probe isolates the commit barrier).
    At one thread every commit leads its own force (forces/commit =
    1.0); as threads grow, committers ride the in-flight leader's
    force, so the ratio must collapse: the pass criterion is the
    8-thread value <= 0.5x the single-thread value.
    """
    import threading

    points = []
    for n_threads in (1, 4, 8):
        keys_per_thread = 200
        db, tree = fast_db(n_threads * keys_per_thread,
                           commit_window_seconds=0.003)
        barrier = threading.Barrier(n_threads)
        errors: list[BaseException] = []

        def worker(thread_no: int, db=db, tree=tree, barrier=barrier,
                   errors=errors) -> None:
            try:
                session = db.session()
                barrier.wait()
                base = thread_no * keys_per_thread
                for i in range(commits_per_thread):
                    session.begin()
                    session.update(tree, key_of(base + i % keys_per_thread),
                                   value_of(base + i % keys_per_thread, 1))
                    session.commit()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        db.session()  # arm the barrier before measuring
        before = db.stats.get("log_forces")
        t0 = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        elapsed = time.perf_counter() - t0
        commits = n_threads * commits_per_thread
        forces = db.stats.get("log_forces") - before
        points.append({
            "threads": n_threads,
            "commits": commits,
            "log_forces": forces,
            "forces_per_commit": round(forces / commits, 4),
            "group_commit_riders": db.stats.get("group_commit_riders"),
            "commits_per_second_wall": round(commits / elapsed),
        })
    single, eight = points[0], points[-1]
    return {
        "points": points,
        "amortization_ratio": round(
            eight["forces_per_commit"] / single["forces_per_commit"], 4),
        "amortizes": (eight["forces_per_commit"]
                      <= 0.5 * single["forces_per_commit"]),
        "riders_appear": eight["group_commit_riders"] > 0,
    }


def bench_chaos_coverage(n_schedules: int = 8) -> dict:
    """Scenario-coverage probe: a fixed-seed chaos campaign must cover
    all five failure-event kinds and all four restart x restore mode
    combinations, with the durability oracle clean throughout (see
    ``repro/sim/harness.py``)."""
    from repro.sim.harness import run_campaign

    campaign = run_campaign(n_schedules, base_seed=7000, n_events=35,
                            differential=True, shrink=False)
    summary = campaign.summary()
    summary["all_passed"] = campaign.ok
    summary["failing_seeds"] = [f.config.seed for f in campaign.failures]
    return summary


def bench_replication_chaos(n_schedules: int = 8) -> dict:
    """Replicated chaos coverage: a fixed-seed campaign with a live
    standby and ``replicated_durable`` acks must exercise every
    replication event kind (standby crash, link loss, failover) with
    the durability and replica-divergence oracles clean."""
    from repro.sim.harness import REPLICATION_FAILURE_KINDS, run_campaign

    campaign = run_campaign(n_schedules, base_seed=7100, n_events=35,
                            differential=False, shrink=False,
                            standby=True, ack_mode="replicated_durable",
                            ship_mode="tail")
    summary = campaign.summary()
    summary["all_passed"] = campaign.ok
    summary["failing_seeds"] = [f.config.seed for f in campaign.failures]
    summary["replication_kinds_covered"] = all(
        campaign.coverage.get(kind, 0) > 0
        for kind in REPLICATION_FAILURE_KINDS)
    return summary


def bench_sharded_throughput(n_txns: int = 1200, n_shards: int = 4) -> dict:
    """Commit throughput through the facade: one embedded engine vs.
    ``n_shards`` engine *processes* behind the sharded client.

    The workload is OLTP-shaped — ``n_txns`` independent single-key
    autocommit transactions, each forcing its own commit record — and
    identical per transaction on both backends.  The single engine
    serializes every force on one log device; the fleet hash-spreads
    the same transactions over ``n_shards`` processes, each with its
    own WAL device, so the fleet's makespan is the *slowest shard's*
    simulated time.  Commits/s is computed from simulated seconds
    (deterministic: the cost model, not the CI host's core count,
    decides it), with wall time reported informationally; the pass
    criterion is the scale-out claim itself — the 4-shard fleet must
    clear >= 2.5x the single engine's commits/s, with the gap to the
    ideal 4x set by hash skew.
    """
    import repro
    from repro.core.backup import BackupPolicy

    def engine_template():  # noqa: ANN202
        return repro.EngineConfig(
            buffer_capacity=512,
            backup_policy=BackupPolicy(every_n_updates=1_000_000))

    workload = [(b"s%07d" % i, b"v%07d|" % i + b"x" * 16)
                for i in range(n_txns)]

    single = repro.connect(engine_template())
    try:
        sim_before = single.db.clock.now
        t0 = time.perf_counter()
        for key, value in workload:
            single.put(key, value)
        single_wall = time.perf_counter() - t0
        single_sim = single.db.clock.now - sim_before
        if single.get(workload[-1][0]) != workload[-1][1]:
            raise AssertionError("throughput probe lost a write")
    finally:
        single.close()

    sharded = repro.connect(repro.ShardConfig(
        n_shards=n_shards, transport="process", engine=engine_template()))
    try:
        router = sharded.router
        before = [router._call(i, "stats")["sim_clock_seconds"]
                  for i in range(n_shards)]
        t0 = time.perf_counter()
        for key, value in workload:
            sharded.put(key, value)
        sharded_wall = time.perf_counter() - t0
        per_shard_sim = [
            router._call(i, "stats")["sim_clock_seconds"] - before[i]
            for i in range(n_shards)]
        if sharded.get(workload[-1][0]) != workload[-1][1]:
            raise AssertionError("throughput probe lost a write")
    finally:
        sharded.close()

    makespan = max(per_shard_sim)
    single_cps = n_txns / single_sim
    fleet_cps = n_txns / makespan
    speedup = fleet_cps / single_cps
    return {
        "txns": n_txns,
        "n_shards": n_shards,
        "single": {
            "sim_seconds": round(single_sim, 4),
            "commits_per_second_sim": round(single_cps, 1),
            "wall_seconds": round(single_wall, 4),
        },
        "sharded": {
            "sim_seconds_makespan": round(makespan, 4),
            "sim_seconds_per_shard": [round(s, 4) for s in per_shard_sim],
            "commits_per_second_sim": round(fleet_cps, 1),
            "wall_seconds": round(sharded_wall, 4),
        },
        "speedup": round(speedup, 3),
        "parallel_speedup_ok": speedup >= 2.5,
    }


def bench_shard_chaos(n_schedules: int = 8) -> dict:
    """Sharded chaos coverage: a fixed-seed campaign over the 2PC
    router (``repro/sim/shard_harness.py``) must keep the cross-shard
    atomicity and durability oracle clean while actually exercising
    the machinery — commits interrupted at 2PC failpoints, per-shard
    crash + on-demand reopen, surviving shards serving throughout."""
    from repro.sim.shard_harness import ShardChaosConfig
    from repro.sim.shard_harness import run_campaign as run_shard_campaign

    campaign = run_shard_campaign(n_schedules, ShardChaosConfig(n_events=50))
    return {
        "runs": campaign.runs,
        "committed_txns": campaign.committed_txns,
        "cross_shard_committed": campaign.xtxn_committed,
        "interrupted_commits": campaign.interrupted_commits,
        "shard_reopens": campaign.reopens,
        "served_while_down": campaign.served_while_down,
        "all_passed": campaign.ok,
        "failing_seeds": [f.config.seed for f in campaign.failures],
        "machinery_exercised": (campaign.xtxn_committed > 0
                                and campaign.interrupted_commits > 0
                                and campaign.reopens > 0
                                and campaign.served_while_down > 0),
    }


def bench_rebalance(n_ops: int = 1200, n_shards: int = 4) -> dict:
    """Online rebalancing pays on skewed workloads: a 90/10 workload
    whose hot keys all hash into four slots that the default routing
    table places on shard 0, measured before and after
    ``move_slot`` spreads three of those slots over shards 1-3.

    Both measurement windows run the identical op sequence (same RNG
    seed) of single-key autocommit puts, and both are scored on
    *simulated* per-shard time — the makespan is the hottest shard's
    sim-clock delta, so the number is the cost model's verdict on load
    placement, not the CI host's.  Before the moves the hot shard
    serializes ~92% of the work; after, the hot slots are spread
    evenly, so the ideal gain approaches 4x.  Pass criteria: >= 1.5x
    makespan speedup, and a full-scan key-set diff across the moves
    (the no-lost-key oracle over the backup + delta + cutover path).
    """
    import repro
    from repro.core.backup import BackupPolicy
    from repro.shard.routing import slot_of

    engine = repro.EngineConfig(
        buffer_capacity=512,
        backup_policy=BackupPolicy(every_n_updates=1_000_000))
    client = repro.connect(repro.ShardConfig(
        n_shards=n_shards, transport="inproc", engine=engine))
    router = client.router
    n_slots = router.config.n_slots

    # Four slots that epoch 0 (slot % n_shards) all places on shard 0.
    hot_slots = [s for s in range(0, n_slots, n_shards)][:4]
    hot_keys = []
    i = 0
    while len(hot_keys) < 16 * len(hot_slots):
        key = b"h%07d" % i
        if slot_of(key, n_slots) in hot_slots:
            hot_keys.append(key)
        i += 1
    cold_keys = [b"c%07d" % i for i in range(200)]

    rng = random.Random(0xB10C)
    ops = [rng.choice(hot_keys) if rng.random() < 0.9
           else rng.choice(cold_keys)
           for _ in range(n_ops)]

    def run_window() -> tuple[float, list[float]]:
        before = [router._call(i, "stats")["sim_clock_seconds"]
                  for i in range(n_shards)]
        for n, key in enumerate(ops):
            client.put(key, b"%s|%06d" % (key, n))
        deltas = [router._call(i, "stats")["sim_clock_seconds"] - before[i]
                  for i in range(n_shards)]
        return max(deltas), deltas

    try:
        for key in hot_keys + cold_keys:
            client.put(key, key + b"|seed")
        keys_before = {k for k, _ in client.scan()}

        skewed_makespan, skewed_per_shard = run_window()

        epochs = [client.rebalance_slot(slot, dst)
                  for slot, dst in zip(hot_slots[1:], range(1, n_shards))]
        keys_after = {k for k, _ in client.scan()}

        spread_makespan, spread_per_shard = run_window()
        last = ops[-1]
        if client.get(last) != b"%s|%06d" % (last, n_ops - 1):
            raise AssertionError("rebalance probe lost a write")
    finally:
        client.close()

    speedup = skewed_makespan / spread_makespan
    return {
        "ops": n_ops,
        "n_shards": n_shards,
        "hot_slots": hot_slots,
        "moves": len(epochs),
        "final_epoch": max(epochs),
        "skewed": {
            "sim_seconds_makespan": round(skewed_makespan, 4),
            "sim_seconds_per_shard": [round(s, 4)
                                      for s in skewed_per_shard],
        },
        "rebalanced": {
            "sim_seconds_makespan": round(spread_makespan, 4),
            "sim_seconds_per_shard": [round(s, 4)
                                      for s in spread_per_shard],
        },
        "speedup": round(speedup, 3),
        "speedup_ok": speedup >= 1.5,
        "no_keys_lost": keys_before == keys_after,
    }


def bench_rebalance_chaos(n_schedules: int = 4) -> dict:
    """Rebalance under fire: a fixed-seed campaign (distinct seed
    range from ``bench_shard_chaos``) where slot moves race crashes,
    partitions, and 2PC failpoints; the no-lost-key / single-owner /
    lock-drain oracles must stay clean while moves actually land."""
    from repro.sim.shard_harness import ShardChaosConfig
    from repro.sim.shard_harness import run_campaign as run_shard_campaign

    campaign = run_shard_campaign(
        n_schedules, ShardChaosConfig(n_events=50), start_seed=200)
    return {
        "runs": campaign.runs,
        "slot_moves": campaign.rebalances,
        "committed_txns": campaign.committed_txns,
        "shard_reopens": campaign.reopens,
        "all_passed": campaign.ok,
        "failing_seeds": [f.config.seed for f in campaign.failures],
        "machinery_exercised": (campaign.rebalances > 0
                                and campaign.reopens > 0
                                and campaign.committed_txns > 0),
    }


#: probe name -> (section key, list of boolean pass-criterion keys)
PROBE_CRITERIA = {
    "recovery_ios_vs_log_volume": ["reads_flat"],
    "instant_restart_ttft": ["eager_grows", "on_demand_flat"],
    "instant_restore_ttft": ["eager_grows", "on_demand_flat",
                             "modes_byte_identical"],
    "chaos_scenario_coverage": ["all_passed", "all_failure_kinds_covered",
                                "all_mode_combos_run"],
}


def check_snapshot(snapshot: dict) -> list[str]:
    """Evaluate every probe's pass criteria; returns failure strings."""
    failures = []
    for section, criteria in PROBE_CRITERIA.items():
        data = snapshot.get(section)
        if data is None:
            failures.append(f"{section}: probe missing from snapshot")
            continue
        for key in criteria:
            if not data.get(key):
                failures.append(f"{section}.{key} is falsy")
    group = snapshot.get("group_commit", {})
    batched = group.get("batched", {}).get("log_forces")
    unbatched = group.get("unbatched", {}).get("log_forces")
    if not (batched and unbatched and batched < unbatched):
        failures.append("group_commit: batched does not beat unbatched")
    append = snapshot.get("log_append_throughput", {})
    if not append.get("records_per_second", 0) > 0:
        failures.append("log_append_throughput: no throughput recorded")
    return failures


def check_replication_snapshot(snapshot: dict) -> list[str]:
    """Pass criteria of the replication snapshot."""
    failures = []
    repair = snapshot.get("repair_source", {})
    for key in ("replica_zero_replay", "chain_replays", "replica_fewer_ios"):
        if not repair.get(key):
            failures.append(f"repair_source.{key} is falsy")
    acks = snapshot.get("ack_modes", {})
    for key in ("replicated_costs_more", "ack_amortizes"):
        if not acks.get(key):
            failures.append(f"ack_modes.{key} is falsy")
    chaos = snapshot.get("replicated_chaos", {})
    for key in ("all_passed", "replication_kinds_covered"):
        if not chaos.get(key):
            failures.append(f"replicated_chaos.{key} is falsy")
    return failures


def check_concurrency_snapshot(snapshot: dict) -> list[str]:
    """Pass criteria of the concurrency snapshot."""
    failures = []
    data = snapshot.get("commit_throughput", {})
    for key in ("amortizes", "riders_appear"):
        if not data.get(key):
            failures.append(f"commit_throughput.{key} is falsy")
    points = data.get("points", [])
    if points and points[0].get("forces_per_commit", 0) > 1.0:
        failures.append("commit_throughput: single-thread forces/commit > 1")
    return failures


def check_sharding_snapshot(snapshot: dict) -> list[str]:
    """Pass criteria of the sharding snapshot."""
    failures = []
    data = snapshot.get("sharded_throughput", {})
    if not data.get("parallel_speedup_ok"):
        failures.append("sharded_throughput.parallel_speedup_ok is falsy "
                        f"(speedup={data.get('speedup')})")
    chaos = snapshot.get("shard_chaos", {})
    for key in ("all_passed", "machinery_exercised"):
        if not chaos.get(key):
            failures.append(f"shard_chaos.{key} is falsy")
    return failures


def check_rebalance_snapshot(snapshot: dict) -> list[str]:
    """Pass criteria of the rebalance snapshot."""
    failures = []
    data = snapshot.get("skewed_rebalance", {})
    for key in ("speedup_ok", "no_keys_lost"):
        if not data.get(key):
            failures.append(f"skewed_rebalance.{key} is falsy "
                            f"(speedup={data.get('speedup')})")
    chaos = snapshot.get("rebalance_chaos", {})
    for key in ("all_passed", "machinery_exercised"):
        if not chaos.get(key):
            failures.append(f"rebalance_chaos.{key} is falsy")
    return failures


def main() -> int:
    seed_everything(0)
    out_dir = sys.argv[1] if len(sys.argv) > 1 else _ROOT
    snapshot = {
        "generated_unix": int(time.time()),
        "python": sys.version.split()[0],
        "recovery_ios_vs_log_volume": bench_recovery_ios(),
        "log_append_throughput": bench_append_throughput(),
        "group_commit": bench_group_commit(),
        "instant_restart_ttft": bench_instant_restart(),
        "instant_restore_ttft": bench_instant_restore(),
        "chaos_scenario_coverage": bench_chaos_coverage(),
    }
    failures = check_snapshot(snapshot)
    snapshot["probe_failures"] = failures
    path = os.path.join(out_dir, "BENCH_segmented_wal.json")
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(snapshot, indent=2))

    # Concurrency snapshot: the cross-thread group-commit probe keeps
    # its own file so its (wall-clock-sensitive) numbers don't churn
    # the deterministic simulated-cost snapshot above.
    concurrency = {
        "generated_unix": int(time.time()),
        "python": sys.version.split()[0],
        "commit_throughput": bench_commit_throughput(),
    }
    concurrency_failures = check_concurrency_snapshot(concurrency)
    concurrency["probe_failures"] = concurrency_failures
    failures = failures + concurrency_failures
    path = os.path.join(out_dir, "BENCH_concurrency.json")
    with open(path, "w") as fh:
        json.dump(concurrency, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(concurrency, indent=2))

    # Replication snapshot (PR 7): deterministic simulated costs of
    # the replica repair source and the two commit-ack modes, plus the
    # replicated chaos campaign.
    from benchmarks.test_ext_replication import (
        run_ack_mode_costs,
        run_repair_source_comparison,
    )

    replication = {
        "generated_unix": int(time.time()),
        "python": sys.version.split()[0],
        "repair_source": run_repair_source_comparison(),
        "ack_modes": run_ack_mode_costs(),
        "replicated_chaos": bench_replication_chaos(),
    }
    replication_failures = check_replication_snapshot(replication)
    replication["probe_failures"] = replication_failures
    failures = failures + replication_failures
    path = os.path.join(out_dir, "BENCH_replication.json")
    with open(path, "w") as fh:
        json.dump(replication, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(replication, indent=2))

    # Sharding snapshot (PR 8): the multi-process speedup is wall
    # clock (it measures real cores), so it keeps its own file like
    # the concurrency probe; the chaos campaign is deterministic.
    sharding = {
        "generated_unix": int(time.time()),
        "python": sys.version.split()[0],
        "sharded_throughput": bench_sharded_throughput(),
        "shard_chaos": bench_shard_chaos(),
    }
    sharding_failures = check_sharding_snapshot(sharding)
    sharding["probe_failures"] = sharding_failures
    failures = failures + sharding_failures
    path = os.path.join(out_dir, "BENCH_sharding.json")
    with open(path, "w") as fh:
        json.dump(sharding, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(sharding, indent=2))

    # Rebalance snapshot (PR 10): both probes score on simulated
    # per-shard time, so the numbers are deterministic; the skewed
    # workload must speed up >= 1.5x after the hot slots move, and the
    # rebalance-heavy chaos campaign must keep its oracles clean.
    rebalance = {
        "generated_unix": int(time.time()),
        "python": sys.version.split()[0],
        "skewed_rebalance": bench_rebalance(),
        "rebalance_chaos": bench_rebalance_chaos(),
    }
    rebalance_failures = check_rebalance_snapshot(rebalance)
    rebalance["probe_failures"] = rebalance_failures
    failures = failures + rebalance_failures
    path = os.path.join(out_dir, "BENCH_rebalance.json")
    with open(path, "w") as fh:
        json.dump(rebalance, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(rebalance, indent=2))

    # Latency snapshot: wall-clock percentiles live in their own file
    # for the same reason as the concurrency probe.
    from benchmarks.latency import check_latency_snapshot, run_best_of

    latency = {
        "generated_unix": int(time.time()),
        "python": sys.version.split()[0],
        "latency": run_best_of("full", repeats=5),
    }
    latency_failures = check_latency_snapshot(latency["latency"])
    latency["probe_failures"] = latency_failures
    failures = failures + latency_failures
    path = os.path.join(out_dir, "BENCH_latency.json")
    with open(path, "w") as fh:
        json.dump(latency, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")
    print(json.dumps(latency, indent=2))

    if failures:
        print("PROBE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
