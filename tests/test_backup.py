"""Unit tests: backup sources (Section 5.2.1) and the backup policy."""

import pytest

from repro.core.backup import (
    BackupPolicy,
    BackupStore,
    fetch_backup_image,
)
from repro.errors import RecoveryError
from repro.page.page import Page, PageType
from repro.page.slotted import SlottedPage
from repro.sim.clock import SimClock
from repro.sim.iomodel import ARCHIVE_PROFILE, HDD_PROFILE, NULL_PROFILE
from repro.sim.stats import Stats
from repro.txn.manager import TransactionManager
from repro.wal.log_manager import LogManager
from repro.wal.log_reader import LogReader
from repro.wal.ops import OpInitSlotted
from repro.wal.records import (
    BackupRef,
    LogRecord,
    LogRecordKind,
    compress_image,
)

PAGE_SIZE = 1024


def make_store(profile=NULL_PROFILE, clock=None):
    clock = clock or SimClock()
    return BackupStore(clock, profile, Stats(), PAGE_SIZE), clock


def sealed_page(page_id: int, lsn: int = 0) -> Page:
    page = Page.format(PAGE_SIZE, page_id, PageType.HEAP)
    SlottedPage(page).initialize()
    if lsn:
        page.page_lsn = lsn
    page.seal()
    return page


class TestBackupPolicy:
    def test_update_count_trigger(self):
        policy = BackupPolicy(every_n_updates=100)
        assert not policy.due(update_count=99, age_seconds=1e9)
        assert policy.due(update_count=100, age_seconds=0)

    def test_age_trigger(self):
        policy = BackupPolicy(max_age_seconds=3600)
        assert not policy.due(update_count=10**6, age_seconds=3599)
        assert policy.due(update_count=0, age_seconds=3600)

    def test_either_trigger(self):
        policy = BackupPolicy(every_n_updates=10, max_age_seconds=60)
        assert policy.due(update_count=10, age_seconds=0)
        assert policy.due(update_count=0, age_seconds=60)

    def test_disabled_never_due(self):
        policy = BackupPolicy.disabled()
        assert not policy.due(update_count=10**9, age_seconds=1e12)


class TestPageCopies:
    def test_store_and_fetch(self):
        store, _clock = make_store()
        page = sealed_page(7, lsn=42)
        location = store.store_page_copy(bytes(page.data), 42)
        image, lsn = store.fetch_page_copy(location)
        assert image == bytes(page.data)
        assert lsn == 42

    def test_new_copy_never_overwrites_old(self):
        """Both copies exist until the old one is explicitly freed."""
        store, _clock = make_store()
        first = store.store_page_copy(bytes(sealed_page(7, 10).data), 10)
        second = store.store_page_copy(bytes(sealed_page(7, 20).data), 20)
        assert first != second
        assert store.live_page_copies == 2
        store.free_page_copy(first)
        assert store.live_page_copies == 1
        store.fetch_page_copy(second)
        with pytest.raises(RecoveryError):
            store.fetch_page_copy(first)

    def test_free_if_page_copy_ignores_other_kinds(self):
        store, _clock = make_store()
        location = store.store_page_copy(bytes(sealed_page(7).data), 0)
        store.free_if_page_copy(BackupRef.log_image(123))
        store.free_if_page_copy(None)
        assert store.live_page_copies == 1
        store.free_if_page_copy(BackupRef.page_copy(location))
        assert store.live_page_copies == 0


class TestFullBackups:
    def test_store_and_fetch_single_page(self):
        store, _clock = make_store()
        pages = {i: bytes(sealed_page(i, lsn=i * 10 or 1).data) for i in range(5)}
        lsns = {i: i * 10 or 1 for i in range(5)}
        backup_id = store.store_full_backup(pages, lsns)
        image, lsn = store.fetch_from_full_backup(backup_id, 3)
        assert image == pages[3]
        assert lsn == 30

    def test_missing_page_raises(self):
        store, _clock = make_store()
        backup_id = store.store_full_backup({}, {})
        with pytest.raises(RecoveryError):
            store.fetch_from_full_backup(backup_id, 9)
        with pytest.raises(RecoveryError):
            store.restore_full_backup(backup_id + 1)

    def test_restore_returns_all(self):
        store, _clock = make_store()
        pages = {i: bytes(sealed_page(i).data) for i in range(4)}
        backup_id = store.store_full_backup(pages, {i: 0 for i in range(4)})
        assert store.restore_full_backup(backup_id) == pages

    def test_archive_media_penalizes_single_page_fetch(self):
        """Section 5.2.1: a sequentially compressed archive backup 'is
        less than ideal' for single-page recovery."""
        disk_store, disk_clock = make_store(HDD_PROFILE)
        tape_store, tape_clock = make_store(ARCHIVE_PROFILE)
        pages = {0: bytes(sealed_page(0).data)}
        for store in (disk_store, tape_store):
            store.store_full_backup(pages, {0: 0})
        t0 = disk_clock.now
        disk_store.fetch_from_full_backup(1, 0)
        disk_cost = disk_clock.now - t0
        t0 = tape_clock.now
        tape_store.fetch_from_full_backup(1, 0)
        tape_cost = tape_clock.now - t0
        assert tape_cost > 100 * disk_cost


class TestFetchBackupImage:
    def make_log_rig(self):
        clock = SimClock()
        stats = Stats()
        log = LogManager(clock, NULL_PROFILE, stats)
        reader = LogReader(log, clock, NULL_PROFILE, stats)
        return log, reader

    def test_fetch_page_copy_ref(self):
        store, _clock = make_store()
        _log, reader = self.make_log_rig()
        page = sealed_page(7, lsn=33)
        location = store.store_page_copy(bytes(page.data), 33)
        fetched, lsn = fetch_backup_image(
            BackupRef.page_copy(location), 7, PAGE_SIZE, store, reader)
        assert fetched.page_id == 7
        assert lsn == 33

    def test_fetch_log_image_ref(self):
        store, _clock = make_store()
        log, reader = self.make_log_rig()
        page = sealed_page(7, lsn=55)
        lsn = log.append(LogRecord(LogRecordKind.FULL_PAGE_IMAGE, page_id=7,
                                   page_lsn=55,
                                   image=compress_image(page.data)))
        fetched, as_of = fetch_backup_image(
            BackupRef.log_image(lsn), 7, PAGE_SIZE, store, reader)
        assert as_of == 55
        assert fetched.page_lsn == 55

    def test_fetch_format_record_ref(self):
        """A formatting record substitutes for a backup (Section 5.2.1)."""
        store, _clock = make_store()
        log, reader = self.make_log_rig()
        stats = Stats()
        tm = TransactionManager(log, stats)
        txn = tm.begin(system=True)
        page = Page.format(PAGE_SIZE, 9)
        format_lsn = tm.log_format(txn, page, 0, OpInitSlotted(PageType.HEAP))
        tm.commit(txn)
        fetched, as_of = fetch_backup_image(
            BackupRef.format_record(format_lsn), 9, PAGE_SIZE, store, reader)
        assert as_of == format_lsn
        assert fetched.page_type == PageType.HEAP
        assert fetched.page_id == 9
        SlottedPage(fetched).check_plausible()

    def test_wrong_record_kind_rejected(self):
        store, _clock = make_store()
        log, reader = self.make_log_rig()
        lsn = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=1))
        with pytest.raises(RecoveryError):
            fetch_backup_image(BackupRef.log_image(lsn), 7, PAGE_SIZE,
                               store, reader)
        with pytest.raises(RecoveryError):
            fetch_backup_image(BackupRef.format_record(lsn), 7, PAGE_SIZE,
                               store, reader)

    def test_no_backup_rejected(self):
        store, _clock = make_store()
        _log, reader = self.make_log_rig()
        with pytest.raises(RecoveryError):
            fetch_backup_image(BackupRef.none(), 7, PAGE_SIZE, store, reader)
