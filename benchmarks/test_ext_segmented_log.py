"""Extension — segmented WAL: recovery log access is O(chain), not O(log).

The point of the per-page chain + segment directory is that single-page
recovery touches only the failed page's records, however large the log
has grown (Section 5.2.4: "only the log records pertaining to the
failed page are needed").  This experiment holds the victim page's
chain length constant while growing total log volume ~an order of
magnitude with foreign traffic, and checks that the recovery's log
reads do not grow with it.  A second benchmark measures raw append +
indexed-lookup throughput of the segmented log manager.
"""

from __future__ import annotations

from benchmarks.common import fast_db, key_of, leaf_of, print_table, value_of
from repro.core.backup import BackupPolicy
from repro.sim.clock import SimClock
from repro.sim.iomodel import NULL_PROFILE
from repro.sim.stats import Stats
from repro.wal.log_manager import LogManager
from repro.wal.lsn import NULL_LSN
from repro.wal.ops import OpInsert
from repro.wal.records import LogRecord, LogRecordKind

CHAIN_LENGTH = 24


def run_recovery_with_foreign_traffic(foreign_updates: int):
    """One single-page recovery with a fixed-length chain, after
    ``foreign_updates`` unrelated updates inflated the log."""
    db, tree = fast_db(400, backup_policy=BackupPolicy.disabled())
    victim = leaf_of(db, tree)
    page = db.pool.fix(victim)
    db.take_page_copy(page)
    from repro.btree.node import BTreeNode

    first_key = BTreeNode(page).full_key(0)
    db.pool.unfix(victim)
    # Fixed-size chain for the victim, then foreign traffic only.
    for version in range(CHAIN_LENGTH):
        txn = db.begin()
        tree.update(txn, first_key, b"version-%04d" % version)
        db.commit(txn)
    for i in range(foreign_updates):
        spread = 200 + i % 180
        txn = db.begin()
        tree.update(txn, key_of(spread), value_of(spread, i))
        db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    db.device.inject_read_error(victim)
    assert tree.lookup(first_key) == b"version-%04d" % (CHAIN_LENGTH - 1)
    result = db.single_page.history[-1]
    return result, db.log.encoded_size(), db.log.segment_count


def test_recovery_reads_independent_of_log_length(benchmark):
    def run():
        return [(n, *run_recovery_with_foreign_traffic(n))
                for n in (0, 1000, 4000, 8000)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for n, result, log_bytes, segments in results:
        assert result.records_applied == CHAIN_LENGTH
        rows.append([n, log_bytes, segments, result.log_pages_read,
                     result.records_applied, result.total_random_ios])

    # The log grows severalfold (~10x in record count)...
    assert rows[-1][1] > 5 * rows[0][1]
    # ...but recovery reads the same chain: identical record count and
    # no growth in log I/O beyond the chain's own footprint.
    reads = [row[3] for row in rows]
    assert max(reads) <= max(1, min(reads)) + 2

    print_table(
        "Segmented WAL: single-page recovery vs. total log volume "
        f"(chain length fixed at {CHAIN_LENGTH})",
        ["foreign updates", "log bytes", "segments", "log pages read",
         "records applied", "total random I/Os"],
        rows)


def test_bench_segmented_append_and_lookup(benchmark):
    """Wall time of the hot log path: append + chain-head lookup +
    indexed record_at over a multi-segment log."""
    def run():
        log = LogManager(SimClock(), NULL_PROFILE, Stats())
        prev = {pid: NULL_LSN for pid in range(64)}
        lsns = []
        for i in range(4000):
            pid = i % 64
            lsn = log.append(LogRecord(
                LogRecordKind.UPDATE, txn_id=1, page_id=pid,
                page_prev_lsn=prev[pid], op=OpInsert(0, b"k", b"v" * 32)))
            prev[pid] = lsn
            lsns.append(lsn)
        # Indexed point lookups across all segments.
        for lsn in lsns[::7]:
            log.record_at(lsn)
        for pid in range(64):
            assert log.page_chain_head(pid) == prev[pid]
        return log.segment_count

    segments = benchmark(run)
    assert segments > 1
