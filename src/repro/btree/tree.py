"""The Foster B-tree.

Structure-modifying operations (node split, adoption, root growth,
ghost removal) run as *system transactions*: contents-neutral, logged,
committed without forcing the log (Section 5.1.5).  User operations
(insert / delete / update) are logged with key-level logical undo so
that rollback works even after the touched page has split.

Every pointer traversal — parent to child *and* foster parent to foster
child — verifies that the child's fence keys equal the two adjacent key
values in the parent (Section 4.2).  A mismatch is a detected
single-page failure: the tree hands the page to the context's
``handle_invariant_failure``, which in the full engine performs
single-page recovery and returns the repaired page, letting the
traversal continue — the paper's "very early detection of page
corruptions" made operational.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.btree.keys import shortest_separator
from repro.btree.node import NO_FOSTER, BTreeNode, encode_pid
from repro.errors import (
    BTreeError,
    DuplicateKey,
    KeyNotFound,
    PageFailureKind,
    SinglePageFailure,
)
from repro.page.page import Page, PageType
from repro.sim.stats import Stats
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction
from repro.wal.records import LogicalUndo, UndoAction


class TreeContext(Protocol):
    """Engine services the tree depends on."""

    def fix(self, page_id: int) -> Page: ...
    def unfix(self, page_id: int) -> None: ...
    def mark_dirty(self, page_id: int, lsn: int) -> None: ...
    def allocate_page(self, txn: Transaction, page_type: PageType,
                      index_id: int) -> Page:
        """Allocate, format, and log a new pinned page."""
        ...
    def get_root(self, index_id: int) -> int: ...
    def set_root(self, txn: Transaction, index_id: int, root_pid: int) -> None: ...
    def handle_invariant_failure(self, failure: SinglePageFailure) -> Page:
        """Recover a page that failed cross-page verification.

        Returns the repaired page, re-fixed.  Raises (escalates) if
        recovery is impossible.
        """
        ...


class _Retry(Exception):
    """Internal: structural change performed; restart the descent."""


class FosterBTree:
    """A Foster B-tree bound to one index id within an engine."""

    def __init__(self, index_id: int, ctx: TreeContext,
                 tm: TransactionManager, stats: Stats,
                 adopt_every: int = 4) -> None:
        self.index_id = index_id
        self.ctx = ctx
        self.tm = tm
        self.stats = stats
        #: Adoption is opportunistic and amortized: only every N-th
        #: write that passes a foster chain performs the adoption.
        #: Chains are therefore short-lived but *observable* between
        #: operations, as in Figure 3 ("temporary!").  Set to 1 for
        #: fully eager adoption.
        self.adopt_every = max(1, adopt_every)
        self._adopt_opportunities = 0

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, index_id: int, ctx: TreeContext, tm: TransactionManager,
               stats: Stats) -> "FosterBTree":
        """Create an empty tree: a single leaf covering (-inf, +inf)."""
        tree = cls(index_id, ctx, tm, stats)
        sys_txn = tm.begin(system=True)
        root = ctx.allocate_page(sys_txn, PageType.BTREE_LEAF, index_id)
        for op in BTreeNode.ops_initialize(level=0, low=b"", high=b"",
                                           high_inf=True):
            tree._log(sys_txn, root, op)
        ctx.set_root(sys_txn, index_id, root.page_id)
        ctx.unfix(root.page_id)
        tm.commit(sys_txn)
        return tree

    # ------------------------------------------------------------------
    # Logging helper
    # ------------------------------------------------------------------
    def _log(self, txn: Transaction, page: Page, op, undo=None) -> int:  # noqa: ANN001
        lsn = self.tm.log_update(txn, page, self.index_id, op, undo)
        self.ctx.mark_dirty(page.page_id, lsn)
        return lsn

    def _log_clr(self, txn: Transaction, page: Page, op,  # noqa: ANN001
                 undo_next_lsn: int) -> int:
        lsn = self.tm.log_compensation(txn, page, self.index_id, op,
                                       undo_next_lsn)
        self.ctx.mark_dirty(page.page_id, lsn)
        return lsn

    # ------------------------------------------------------------------
    # Verified traversal
    # ------------------------------------------------------------------
    def _fix_node(self, page_id: int) -> tuple[Page, BTreeNode]:
        page = self.ctx.fix(page_id)
        try:
            return page, BTreeNode(page)
        except BTreeError as exc:
            self.ctx.unfix(page_id)
            failure = SinglePageFailure(page_id, PageFailureKind.BTREE_INVARIANT,
                                        str(exc))
            page = self.ctx.handle_invariant_failure(failure)
            return page, BTreeNode(page)

    def _fix_verified(self, page_id: int, exp_low: bytes, exp_high: bytes,
                      exp_inf: bool, exp_level: int) -> tuple[Page, BTreeNode]:
        """Fix a child and verify its fences against the parent's keys."""
        page, node = self._fix_node(page_id)
        problem = self._fence_mismatch(node, exp_low, exp_high, exp_inf, exp_level)
        if problem is None:
            self.stats.bump("btree_hops_verified")
            return page, node
        # Cross-page invariant violated: treat as a single-page failure
        # of the child and ask the engine to repair it (Figure 8 path).
        self.ctx.unfix(page_id)
        failure = SinglePageFailure(page_id, PageFailureKind.BTREE_INVARIANT, problem)
        self.stats.bump("btree_invariant_failures")
        page = self.ctx.handle_invariant_failure(failure)
        node = BTreeNode(page)
        problem = self._fence_mismatch(node, exp_low, exp_high, exp_inf, exp_level)
        if problem is not None:
            self.ctx.unfix(page_id)
            raise SinglePageFailure(page_id, PageFailureKind.BTREE_INVARIANT,
                                    f"unrepaired: {problem}")
        return page, node

    @staticmethod
    def _fence_mismatch(node: BTreeNode, exp_low: bytes, exp_high: bytes,
                        exp_inf: bool, exp_level: int) -> str | None:
        if node.level != exp_level:
            return f"level {node.level} != expected {exp_level}"
        if node.low_fence != exp_low:
            return f"low fence {node.low_fence!r} != parent key {exp_low!r}"
        if node.high_inf != exp_inf:
            return f"high-inf flag {node.high_inf} != expected {exp_inf}"
        if not exp_inf and node.high_fence != exp_high:
            return f"high fence {node.high_fence!r} != parent key {exp_high!r}"
        return None

    def _descend(self, key: bytes, for_write: bool) -> tuple[Page, BTreeNode]:
        """Root-to-leaf pass with continuous verification.

        Returns the pinned leaf whose range contains ``key``.  With
        ``for_write``, performs opportunistic maintenance (root growth,
        adoption) in system transactions; a structural change restarts
        the descent via :class:`_Retry`.
        """
        root_pid = self.ctx.get_root(self.index_id)
        page, node = self._fix_node(root_pid)
        if for_write and node.has_foster:
            self.ctx.unfix(page.page_id)
            self._grow_root(page.page_id)
            raise _Retry()
        while True:
            # Walk along the foster chain to the responsible node.
            while node.has_foster and key >= node.foster_key:
                exp_low, exp_high, exp_inf = node.foster_boundaries()
                child_page, child_node = self._fix_verified(
                    node.foster_pid, exp_low, exp_high, exp_inf, node.level)
                self.ctx.unfix(page.page_id)
                page, node = child_page, child_node
            if node.is_leaf:
                return page, node
            i = node.branch_child_index(key)
            child_pid = node.child_pid(i)
            exp_low, exp_high, exp_inf = node.child_boundaries(i)
            child_page, child_node = self._fix_verified(
                child_pid, exp_low, exp_high, exp_inf, node.level - 1)
            if for_write and child_node.has_foster:
                self._adopt_opportunities += 1
                if self._adopt_opportunities % self.adopt_every == 0:
                    adopted = self._try_adopt(page, node, child_page,
                                              child_node)
                    if adopted:
                        self.ctx.unfix(child_page.page_id)
                        self.ctx.unfix(page.page_id)
                        raise _Retry()
            self.ctx.unfix(page.page_id)
            page, node = child_page, child_node

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def insert(self, txn: Transaction, key: bytes, value: bytes) -> None:
        """Insert ``key`` -> ``value``; duplicate keys are rejected."""
        self._check_entry(key, value)
        while True:
            try:
                page, node = self._descend(key, for_write=True)
            except _Retry:
                continue
            try:
                i, found = node.find(key)
                if found and not node.is_ghost(i):
                    raise DuplicateKey(key)
                undo = LogicalUndo(UndoAction.DELETE_KEY, key)
                if found:
                    # Revive the ghost: restore value, then clear the
                    # bit.  The value write carries a *no-op logical
                    # undo*: rolling back the revive only needs to
                    # re-ghost the record (the DELETE_KEY below); a
                    # physical slot-indexed undo would be unsafe once
                    # later inserts have shifted the slots.
                    self._log(txn, page, node.op_update_value(i, value),
                              LogicalUndo(UndoAction.NONE, key))
                    self._log(txn, page, node.op_set_ghost(i, False), undo)
                    self.stats.bump("btree_inserts")
                    return
                if node.room_for(key, value):
                    self._log(txn, page, node.op_insert(i, key, value), undo)
                    self.stats.bump("btree_inserts")
                    return
            finally:
                self.ctx.unfix(page.page_id)
            # No room: split (system transaction) and try again.
            self._split(page.page_id)

    def delete(self, txn: Transaction, key: bytes) -> None:
        """Logical deletion: turn the record into a ghost."""
        while True:
            try:
                page, node = self._descend(key, for_write=True)
            except _Retry:
                continue
            try:
                i, found = node.find(key)
                if not found or node.is_ghost(i):
                    raise KeyNotFound(key)
                undo = LogicalUndo(UndoAction.INSERT_KEY, key, node.value(i))
                self._log(txn, page, node.op_set_ghost(i, True), undo)
                self.stats.bump("btree_deletes")
                return
            finally:
                self.ctx.unfix(page.page_id)

    def update(self, txn: Transaction, key: bytes, value: bytes) -> None:
        """Replace the value stored under ``key``."""
        self._check_entry(key, value)
        while True:
            try:
                page, node = self._descend(key, for_write=True)
            except _Retry:
                continue
            try:
                i, found = node.find(key)
                if not found or node.is_ghost(i):
                    raise KeyNotFound(key)
                old_value = node.value(i)
                undo = LogicalUndo(UndoAction.RESTORE_VALUE, key, old_value)
                self._log(txn, page, node.op_update_value(i, value), undo)
                self.stats.bump("btree_updates")
                return
            finally:
                self.ctx.unfix(page.page_id)

    def lookup(self, key: bytes) -> bytes:
        """Value stored under ``key``; raises :class:`KeyNotFound`."""
        while True:
            try:
                page, node = self._descend(key, for_write=False)
            except _Retry:  # pragma: no cover - read path never retries
                continue
            try:
                i, found = node.find(key)
                if not found or node.is_ghost(i):
                    raise KeyNotFound(key)
                self.stats.bump("btree_lookups")
                return node.value(i)
            finally:
                self.ctx.unfix(page.page_id)

    def contains(self, key: bytes) -> bool:
        try:
            self.lookup(key)
            return True
        except KeyNotFound:
            return False

    def range_scan(self, low: bytes = b"", high: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, value) pairs with ``low <= key`` and ``key < high``.

        Fence-key trees have no sibling pointers; the scan follows
        foster pointers within a chain and re-descends with the chain's
        high fence to reach the next leaf — each re-descent is another
        verified root-to-leaf pass.
        """
        key = low
        while True:
            try:
                page, node = self._descend(key, for_write=False)
            except _Retry:  # pragma: no cover - read path never retries
                continue
            batch, next_key = self._scan_leaf(page, node, key, high)
            yield from batch
            if next_key is None:
                return
            key = next_key

    def _scan_leaf(self, page: Page, node: BTreeNode, key: bytes,
                   high: bytes | None) -> tuple[list[tuple[bytes, bytes]], bytes | None]:
        try:
            out: list[tuple[bytes, bytes]] = []
            i, _found = node.find(key)
            for j in range(i, node.nrecs):
                full = node.full_key(j)
                if high is not None and full >= high:
                    return out, None
                if not node.is_ghost(j):
                    out.append((full, node.value(j)))
            if node.has_foster:
                next_key = node.foster_key
            elif node.high_inf:
                next_key = None
            else:
                next_key = node.high_fence
            if next_key is not None and high is not None and next_key >= high:
                next_key = None
            return out, next_key
        finally:
            self.ctx.unfix(page.page_id)

    def compensate(self, txn: Transaction, undo: LogicalUndo,
                   undo_next_lsn: int) -> None:
        """Key-level compensation during rollback (logged as CLRs)."""
        if undo.action == UndoAction.NONE:
            return  # value write whose effect the re-ghosting covers
        key = undo.key
        while True:
            try:
                page, node = self._descend(key, for_write=True)
            except _Retry:
                continue
            need_split = False
            try:
                i, found = node.find(key)
                if undo.action == UndoAction.DELETE_KEY:
                    # Undo an insert: ghost the record.
                    if found and not node.is_ghost(i):
                        self._log_clr(txn, page, node.op_set_ghost(i, True),
                                      undo_next_lsn)
                elif undo.action == UndoAction.INSERT_KEY:
                    # Undo a delete: revive the ghost (or re-insert).
                    if found:
                        self._log_clr(txn, page,
                                      node.op_update_value(i, undo.value),
                                      undo_next_lsn)
                        self._log_clr(txn, page, node.op_set_ghost(i, False),
                                      undo_next_lsn)
                    elif node.room_for(key, undo.value):
                        self._log_clr(txn, page,
                                      node.op_insert(i, key, undo.value),
                                      undo_next_lsn)
                    else:
                        need_split = True
                elif undo.action == UndoAction.RESTORE_VALUE:
                    if not found:
                        raise BTreeError(
                            f"compensation target {key!r} disappeared")
                    self._log_clr(txn, page, node.op_update_value(i, undo.value),
                                  undo_next_lsn)
                if not need_split:
                    self.stats.bump("btree_compensations")
                    return
            finally:
                self.ctx.unfix(page.page_id)
            self._split_for_key(key)

    def _split_for_key(self, key: bytes) -> None:
        while True:
            try:
                page, node = self._descend(key, for_write=True)
            except _Retry:
                continue
            pid = page.page_id
            self.ctx.unfix(pid)
            self._split(pid)
            return

    # ------------------------------------------------------------------
    # Structural maintenance (system transactions)
    # ------------------------------------------------------------------
    def _split(self, page_id: int) -> None:
        """Split a node: the upper half becomes its foster child."""
        sys_txn = self.tm.begin(system=True)
        page = self.ctx.fix(page_id)
        try:
            node = BTreeNode(page)
            n = node.nrecs
            if n < 2:
                raise BTreeError(
                    f"page {page_id} cannot split with {n} records")
            mid = n // 2
            if node.is_leaf:
                separator = shortest_separator(node.full_key(mid - 1),
                                               node.full_key(mid))
            else:
                # Branch separators must equal a child's low boundary.
                separator = node.full_key(mid)
            foster_page = self.ctx.allocate_page(
                sys_txn,
                PageType.BTREE_LEAF if node.is_leaf else PageType.BTREE_BRANCH,
                self.index_id)
            try:
                high_key = b"" if node.high_inf else node.high_fence
                for op in BTreeNode.ops_initialize(
                        node.level, separator, high_key, node.high_inf,
                        node.foster_key if node.has_foster else b"",
                        node.foster_pid if node.has_foster else NO_FOSTER):
                    self._log(sys_txn, foster_page, op)
                foster_node = BTreeNode(foster_page)
                # Copy the upper half into the foster child and remove
                # it from the foster parent — one bulk op each, so a
                # split costs two data log records regardless of how
                # many records move.
                moving = node.record_entries(mid, n)
                self._log(sys_txn, foster_page,
                          foster_node.op_bulk_insert(0, moving))
                self._log(sys_txn, page, node.op_bulk_delete(mid, n))
                # ... and link the chain: this node becomes the foster
                # parent, keeping the chain-high fence (Figure 3).
                for op in node.ops_set_foster(separator, foster_page.page_id):
                    self._log(sys_txn, page, op)
            finally:
                self.ctx.unfix(foster_page.page_id)
            self.tm.commit(sys_txn)
            self.stats.bump("btree_splits")
        except BaseException:
            if sys_txn.active:
                self.tm.commit(sys_txn)  # contents-neutral; safe to keep
            raise
        finally:
            self.ctx.unfix(page_id)

    def _try_adopt(self, parent_page: Page, parent: BTreeNode,
                   child_page: Page, child: BTreeNode) -> bool:
        """Move one foster child up into the permanent parent.

        Returns True if the adoption happened (descent must restart).
        If the parent lacks room, the parent is split instead (also a
        structural change, also True).
        """
        separator = child.foster_key
        foster_pid = child.foster_pid
        if not parent.room_for_branch_record(separator):
            self.ctx.unfix(child_page.page_id)
            self.ctx.unfix(parent_page.page_id)
            self._split(parent_page.page_id)
            # Signal a restart; re-fix happens in the caller's retry.
            self.ctx.fix(parent_page.page_id)
            self.ctx.fix(child_page.page_id)
            return True
        sys_txn = self.tm.begin(system=True)
        i, found = parent.find(separator)
        if found:
            raise BTreeError(f"separator {separator!r} already in parent")
        self._log(sys_txn, parent_page,
                  parent.op_insert(i, separator, encode_pid(foster_pid)))
        for op in child.ops_set_high_fence(separator, high_inf=False):
            self._log(sys_txn, child_page, op)
        for op in child.ops_set_foster(b"", NO_FOSTER):
            self._log(sys_txn, child_page, op)
        self._maybe_extend_prefix(sys_txn, child_page, child)
        self.tm.commit(sys_txn)
        self.stats.bump("btree_adoptions")
        return True

    def _maybe_extend_prefix(self, sys_txn: Transaction, page: Page,
                             node: BTreeNode) -> None:
        """Tightened fences may permit a longer truncation prefix."""
        from repro.btree.keys import common_prefix

        if node.high_inf:
            return
        new_prefix = common_prefix(node.low_fence, node.high_fence)
        if len(new_prefix) <= len(node.prefix):
            return
        for op in node.ops_reencode_prefix(new_prefix):
            self._log(sys_txn, page, op)

    def _grow_root(self, old_root_pid: int) -> None:
        """The root has a foster child: grow the tree by one level."""
        sys_txn = self.tm.begin(system=True)
        old_root_page = self.ctx.fix(old_root_pid)
        try:
            old_root = BTreeNode(old_root_page)
            separator = old_root.foster_key
            foster_pid = old_root.foster_pid
            new_root_page = self.ctx.allocate_page(
                sys_txn, PageType.BTREE_BRANCH, self.index_id)
            try:
                for op in BTreeNode.ops_initialize(
                        old_root.level + 1, b"", b"", high_inf=True):
                    self._log(sys_txn, new_root_page, op)
                new_root = BTreeNode(new_root_page)
                self._log(sys_txn, new_root_page,
                          new_root.op_insert(0, b"", encode_pid(old_root_pid)))
                self._log(sys_txn, new_root_page,
                          new_root.op_insert(1, separator, encode_pid(foster_pid)))
                for op in old_root.ops_set_high_fence(separator, high_inf=False):
                    self._log(sys_txn, old_root_page, op)
                for op in old_root.ops_set_foster(b"", NO_FOSTER):
                    self._log(sys_txn, old_root_page, op)
                self._maybe_extend_prefix(sys_txn, old_root_page, old_root)
                self.ctx.set_root(sys_txn, self.index_id, new_root_page.page_id)
            finally:
                self.ctx.unfix(new_root_page.page_id)
            self.tm.commit(sys_txn)
            self.stats.bump("btree_root_growths")
        finally:
            self.ctx.unfix(old_root_pid)

    def migrate_node(self, page_id: int, retain_backup: bool = True) -> int:
        """Move a node to a freshly allocated page id (system txn).

        This is the page migration that write-optimized B-trees and
        wear levelling rely on (Sections 2 and 5.2.1): because every
        node has exactly one incoming pointer, the move updates one
        parent record (or the root pointer).  With ``retain_backup``,
        an image of the migrated node is retained as its page backup —
        the paper's "the old, pre-move image might be retained and
        serve as single-page backup".

        Returns the new page id.  The old page id is released to the
        engine's free list.
        """
        sys_txn = self.tm.begin(system=True)
        page = self.ctx.fix(page_id)
        try:
            node = BTreeNode(page)
            pointer = self._find_incoming_pointer(page_id, node)
            new_page = self.ctx.allocate_page(
                sys_txn,
                PageType.BTREE_LEAF if node.is_leaf else PageType.BTREE_BRANCH,
                self.index_id)
            try:
                high_key = b"" if node.high_inf else node.high_fence
                for op in BTreeNode.ops_initialize(
                        node.level, node.low_fence, high_key, node.high_inf,
                        node.foster_key if node.has_foster else b"",
                        node.foster_pid if node.has_foster else NO_FOSTER):
                    self._log(sys_txn, new_page, op)
                new_node = BTreeNode(new_page)
                n = node.nrecs
                if n:
                    self._log(sys_txn, new_page,
                              new_node.op_bulk_insert(
                                  0, node.record_entries(0, n)))
                self._repoint(sys_txn, pointer, page_id, new_page.page_id)
                if retain_backup:
                    take_copy = getattr(self.ctx, "take_page_copy", None)
                    if take_copy is not None:
                        take_copy(new_page)
                new_pid = new_page.page_id
            finally:
                self.ctx.unfix(new_page.page_id)
            self.tm.commit(sys_txn)
        finally:
            self.ctx.unfix(page_id)
        free = getattr(self.ctx, "free_page", None)
        if free is not None:
            free(page_id)
        self.stats.bump("btree_migrations")
        return new_pid

    def _find_incoming_pointer(self, target_pid: int, target: BTreeNode):
        """Locate the single incoming pointer of ``target_pid``.

        Returns ("root", None, None), ("branch", parent_pid, slot), or
        ("foster", parent_pid, None).
        """
        root_pid = self.ctx.get_root(self.index_id)
        if root_pid == target_pid:
            return ("root", None, None)
        key = target.low_fence
        pid = root_pid
        while True:
            page, node = self._fix_node(pid)
            try:
                if node.has_foster and node.foster_pid == target_pid:
                    return ("foster", pid, None)
                if node.has_foster and key >= node.foster_key:
                    next_pid = node.foster_pid
                elif node.is_leaf:
                    raise BTreeError(
                        f"page {target_pid} unreachable from the root")
                else:
                    i = node.branch_child_index(key)
                    if node.child_pid(i) == target_pid:
                        return ("branch", pid, i)
                    next_pid = node.child_pid(i)
            finally:
                self.ctx.unfix(pid)
            pid = next_pid

    def _repoint(self, sys_txn: Transaction, pointer, old_pid: int,
                 new_pid: int) -> None:
        kind, parent_pid, slot = pointer
        if kind == "root":
            self.ctx.set_root(sys_txn, self.index_id, new_pid)
            return
        parent_page = self.ctx.fix(parent_pid)
        try:
            parent = BTreeNode(parent_page)
            if kind == "branch":
                if parent.child_pid(slot) != old_pid:
                    raise BTreeError("incoming pointer moved during migration")
                self._log(sys_txn, parent_page,
                          parent.op_update_value(slot, encode_pid(new_pid)))
            else:
                if parent.foster_pid != old_pid:
                    raise BTreeError("foster pointer moved during migration")
                for op in parent.ops_set_foster(parent.foster_key, new_pid):
                    self._log(sys_txn, parent_page, op)
        finally:
            self.ctx.unfix(parent_pid)

    def remove_ghosts(self, page_id: int) -> int:
        """Physically remove ghost records from a leaf (system txn).

        Contents-neutral space reclamation (Section 5.1.5).  Returns
        the number of ghosts removed.
        """
        sys_txn = self.tm.begin(system=True)
        page = self.ctx.fix(page_id)
        removed = 0
        try:
            node = BTreeNode(page)
            if not node.is_leaf:
                raise BTreeError("ghost removal applies to leaves")
            j = 0
            while j < node.nrecs:
                if node.is_ghost(j):
                    self._log(sys_txn, page, node.op_delete(j))
                    removed += 1
                else:
                    j += 1
            self.tm.commit(sys_txn)
            if removed:
                self.stats.bump("btree_ghosts_removed", removed)
            return removed
        finally:
            self.ctx.unfix(page_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _check_entry(self, key: bytes, value: bytes) -> None:
        if not key:
            raise BTreeError("empty keys are reserved for -infinity fences")
        # Guarantee splittability: any two data records plus the
        # bookkeeping records must fit a page.
        limit = self.ctx.fix(self.ctx.get_root(self.index_id)).size // 8
        self.ctx.unfix(self.ctx.get_root(self.index_id))
        if len(key) + len(value) > limit:
            raise BTreeError(
                f"entry of {len(key) + len(value)} bytes exceeds limit {limit}")

    def depth(self) -> int:
        """Number of levels (1 = a single leaf)."""
        pid = self.ctx.get_root(self.index_id)
        page, node = self._fix_node(pid)
        levels = node.level + 1
        self.ctx.unfix(pid)
        return levels

    def count(self) -> int:
        """Number of live (non-ghost) records."""
        return sum(1 for _ in self.range_scan())
