"""Integration tests: coordinated multi-page recovery (Section 5.2).

"In the case of multiple single-page failures, their recovery might be
coordinated, e.g., with respect to access to the recovery log."
"""

import pytest

from repro.core.backup import BackupPolicy
from repro.core.coordinated import CoordinatedRecovery
from repro.engine.database import Database
from repro.errors import RecoveryError
from tests.conftest import fast_config, key_of, value_of


def loaded(n=600, **overrides):
    db = Database(fast_config(capacity_pages=2048, buffer_capacity=64,
                              backup_policy=BackupPolicy.disabled(),
                              **overrides))
    tree = db.create_index()
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree


def coordinator(db) -> CoordinatedRecovery:
    return CoordinatedRecovery(db.pri, db.backup_store, db.log_reader,
                               db.device, db.clock, db.stats)


def data_leaves(db, tree, keys):
    pages = []
    for i in keys:
        page, _n = tree._descend(key_of(i), for_write=False)
        if page.page_id not in pages:
            pages.append(page.page_id)
        db.unfix(page.page_id)
    db.evict_everything()
    return pages


class TestCoordinatedRecovery:
    def test_recovers_all_victims_correctly(self):
        db, tree = loaded()
        victims = data_leaves(db, tree, [0, 200, 400, 599])
        for pid in victims:
            db.device.inject_read_error(pid)
        result = coordinator(db).recover_many(victims)
        assert result.pages_recovered == len(victims)
        db.evict_everything()
        for i in range(600):
            assert tree.lookup(key_of(i)) == value_of(i, 0)

    def test_per_page_record_counts_reported(self):
        db, tree = loaded()
        victims = data_leaves(db, tree, [0, 300])
        result = coordinator(db).recover_many(victims)
        assert set(result.per_page_records) == set(victims)
        assert result.records_applied == sum(result.per_page_records.values())

    def test_duplicates_collapsed(self):
        db, tree = loaded()
        victims = data_leaves(db, tree, [0])
        result = coordinator(db).recover_many(victims * 3)
        assert result.pages_recovered == 1

    def test_shared_log_cache_saves_reads(self):
        """Coordinated chain walks fetch each distinct log page once;
        independent recoveries with cold caches fetch them repeatedly."""
        db, tree = loaded()
        victims = data_leaves(db, tree, [0, 150, 300, 450, 599])
        assert len(victims) >= 3

        # Independent recoveries, each with a cold reader.
        from repro.wal.log_reader import LogReader
        from repro.core.single_page import SinglePageRecovery

        independent_pages = 0
        for pid in victims:
            reader = LogReader(db.log, db.clock, db.config.log_profile,
                               db.stats)
            spr = SinglePageRecovery(db.pri, db.backup_store, reader,
                                     db.device, db.clock, db.stats)
            from repro.errors import PageFailureKind, SinglePageFailure

            spr.recover(SinglePageFailure(
                pid, PageFailureKind.DEVICE_READ_ERROR))
            independent_pages += reader.pages_read

        # The same victims, coordinated (fresh engine for a fair start).
        db2, tree2 = loaded()
        victims2 = data_leaves(db2, tree2, [0, 150, 300, 450, 599])
        result = coordinator(db2).recover_many(victims2)
        assert result.log_pages_read <= independent_pages

    def test_all_pages_failing_resembles_media_recovery(self):
        """The paper's limit case: every page at once."""
        db, tree = loaded(n=400)
        victims = list(range(db.config.data_start, db.allocated_pages()))
        for pid in victims:
            db.device.inject_read_error(pid)
        result = coordinator(db).recover_many(victims)
        assert result.pages_recovered == len(victims)
        db.evict_everything()
        for i in range(400):
            assert tree.lookup(key_of(i)) == value_of(i, 0)

    def test_uncovered_page_raises(self):
        db, tree = loaded()
        with pytest.raises(RecoveryError):
            coordinator(db).recover_many([db.config.capacity_pages - 1])
