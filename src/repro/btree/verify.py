"""B-tree verification: in-node checks and whole-tree structural checks.

Two flavours, mirroring the paper's Section 4:

* :func:`verify_node` — everything checkable from one node plus the
  expectations propagated from its parent (the checks that run as a
  side effect of every root-to-leaf pass).  "The fence keys contain
  all information required for all structural verification of the
  B-tree."
* :func:`verify_tree` — an exhaustive offline pass: every seam, every
  foster chain, level consistency, and completeness of the key-space
  partition from -infinity to +infinity.  This is what a traditional
  offline utility (DBCC, db2dart, ...) would do; here it reads each
  node exactly once.

Verification failures are reported, not raised, so scrubbing can
enumerate all damage before recovery decides what to repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.btree.node import BTreeNode
from repro.errors import BTreeError


@dataclass
class VerificationReport:
    """Outcome of a structural verification pass."""

    nodes_verified: int = 0
    records_verified: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def complain(self, page_id: int, message: str) -> None:
        self.problems.append(f"page {page_id}: {message}")


def verify_node(node: BTreeNode, exp_low: bytes, exp_high: bytes,
                exp_inf: bool, exp_level: int,
                report: VerificationReport) -> None:
    """All checks local to one node given parent expectations."""
    pid = node.page.page_id
    report.nodes_verified += 1
    if node.level != exp_level:
        report.complain(pid, f"level {node.level}, expected {exp_level}")
    if node.low_fence != exp_low:
        report.complain(pid, f"low fence {node.low_fence!r} != {exp_low!r}")
    if node.high_inf != exp_inf:
        report.complain(pid, f"high-inf {node.high_inf} != {exp_inf}")
    if not exp_inf and node.high_fence != exp_high:
        report.complain(pid, f"high fence {node.high_fence!r} != {exp_high!r}")
    if not node.high_inf and not node.low_fence <= node.high_fence:
        report.complain(pid, "fences out of order")
    # Keys sorted, unique, and within the fences.
    previous: bytes | None = None
    upper = node.foster_key if node.has_foster else node.high_fence
    upper_inf = node.high_inf and not node.has_foster
    for i in range(node.nrecs):
        key = node.full_key(i)
        report.records_verified += 1
        if previous is not None and key <= previous:
            report.complain(pid, f"keys out of order at slot {i}")
        previous = key
        if key < node.low_fence:
            report.complain(pid, f"key {key!r} below low fence")
        if not upper_inf and key >= upper:
            bound = "foster key" if node.has_foster else "high fence"
            report.complain(pid, f"key {key!r} at/above {bound}")
    if not node.is_leaf and node.nrecs > 0:
        if node.full_key(0) != node.low_fence:
            report.complain(
                pid, f"first branch key {node.full_key(0)!r} != low fence")
    if node.has_foster:
        fkey = node.foster_key
        if fkey < node.low_fence or (not node.high_inf and fkey > node.high_fence):
            report.complain(pid, f"foster key {fkey!r} outside fences")


def verify_tree(tree, report: VerificationReport | None = None) -> VerificationReport:  # noqa: ANN001
    """Exhaustive structural verification; reads each node once.

    ``tree`` is a :class:`~repro.btree.tree.FosterBTree`; the traversal
    uses its context for page access.
    """
    from repro.btree.tree import FosterBTree

    assert isinstance(tree, FosterBTree)
    report = report or VerificationReport()
    ctx = tree.ctx
    root_pid = ctx.get_root(tree.index_id)

    def visit(pid: int, exp_low: bytes, exp_high: bytes, exp_inf: bool,
              exp_level: int) -> None:
        page = ctx.fix(pid)
        try:
            try:
                node = BTreeNode(page)
            except BTreeError as exc:
                report.complain(pid, f"not a B-tree node: {exc}")
                return
            verify_node(node, exp_low, exp_high, exp_inf, exp_level, report)
            # Children: each child's expected fences are the adjacent
            # key values in this node (the seam invariant).
            if not node.is_leaf:
                for i in range(node.nrecs):
                    low, high, inf = node.child_boundaries(i)
                    visit(node.child_pid(i), low, high, inf, node.level - 1)
            # The foster chain: same level, low = foster key, high =
            # the chain high fence carried by this foster parent.
            if node.has_foster:
                low, high, inf = node.foster_boundaries()
                visit(node.foster_pid, low, high, inf, node.level)
        finally:
            ctx.unfix(pid)

    visit(root_pid, b"", b"", True, _root_level(tree, root_pid))
    return report


def _root_level(tree, root_pid: int) -> int:  # noqa: ANN001
    page = tree.ctx.fix(root_pid)
    try:
        try:
            return BTreeNode(page).level
        except BTreeError:
            return 0
    finally:
        tree.ctx.unfix(root_pid)


def collect_leaf_coverage(tree) -> list[tuple[bytes, bytes, bool]]:  # noqa: ANN001
    """(low, high, high_inf) of every leaf in key order.

    A correct tree yields contiguous ranges from -infinity to
    +infinity; used by property-based tests.
    """
    from repro.btree.tree import FosterBTree

    assert isinstance(tree, FosterBTree)
    ctx = tree.ctx
    out: list[tuple[bytes, bytes, bool]] = []

    def visit(pid: int) -> None:
        page = ctx.fix(pid)
        try:
            node = BTreeNode(page)
            if node.is_leaf:
                if node.has_foster:
                    out.append((node.low_fence, node.foster_key, False))
                else:
                    out.append((node.low_fence, node.high_fence, node.high_inf))
            else:
                for i in range(node.nrecs):
                    visit(node.child_pid(i))
            if node.has_foster:
                visit(node.foster_pid)
        finally:
            ctx.unfix(pid)

    visit(ctx.get_root(tree.index_id))
    out.sort(key=lambda entry: entry[0])
    return out
