"""Fixed-size in-memory log segments and their directory.

The recovery log is held as a sequence of **segments**, each bounded by
an encoded-byte budget.  A segment owns the records whose LSNs fall in
``[base_lsn, end_lsn)`` plus per-record encoded sizes, so log-volume
accounting is exact without retaining the encoded bytes themselves.

The :class:`SegmentDirectory` maps an LSN to its segment with one
bisection over segment base LSNs — O(log #segments), independent of the
number of records — after which the record lookup is a dict hit.  The
directory is *truncation-aware*: reclaiming the log head drops whole
segments in one slice and filters only the single boundary segment, and
``truncated_below`` records the reclaimed prefix so range scans start
at the right place.

This layer is pure bookkeeping: LSN assignment, durability, chains and
cost accounting live in :class:`repro.wal.log_manager.LogManager`.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.wal.records import LogRecord

#: Default encoded-byte budget of one in-memory segment.  Small enough
#: that the boundary-segment work of truncation and crash stays cheap,
#: large enough that the directory's bisect stays shallow.
DEFAULT_SEGMENT_BYTES = 1 << 16


class LogSegment:
    """One fixed-size run of consecutive log records.

    Records are kept in an insertion-ordered dict keyed by LSN —
    appends arrive in LSN order, truncation removes a prefix and crash
    removes a suffix, so the dict stays sorted without ever re-sorting.
    """

    __slots__ = ("base_lsn", "end_lsn", "records", "sizes", "encoded_bytes")

    def __init__(self, base_lsn: int) -> None:
        self.base_lsn = base_lsn
        self.end_lsn = base_lsn
        self.records: dict[int, LogRecord] = {}
        self.sizes: dict[int, int] = {}
        self.encoded_bytes = 0

    def add(self, lsn: int, record: LogRecord, size: int) -> None:
        self.records[lsn] = record
        self.sizes[lsn] = size
        self.encoded_bytes += size
        self.end_lsn = lsn + size

    def remove(self, lsn: int) -> int:
        """Drop one record; returns its encoded size."""
        del self.records[lsn]
        size = self.sizes.pop(lsn)
        self.encoded_bytes -= size
        return size

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LogSegment([{self.base_lsn}, {self.end_lsn}), "
                f"{len(self.records)} records, {self.encoded_bytes} B)")


class SegmentDirectory:
    """Ordered collection of segments with bisect-indexed lookup."""

    def __init__(self, segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        if segment_bytes < 1:
            raise ValueError("segment size must be positive")
        self.segment_bytes = segment_bytes
        self._segments: list[LogSegment] = []
        self._starts: list[int] = []  # base_lsn per segment, sorted
        self._total_bytes = 0
        self._record_count = 0
        self.truncated_below = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, lsn: int, record: LogRecord, size: int) -> None:
        """Place one record; opens a new segment when the current one
        has exhausted its encoded-byte budget."""
        if (not self._segments
                or self._segments[-1].encoded_bytes >= self.segment_bytes):
            self._segments.append(LogSegment(lsn))
            self._starts.append(lsn)
        self._segments[-1].add(lsn, record, size)
        self._total_bytes += size
        self._record_count += 1

    def sealed_below(self) -> int:
        """The LSN below which every segment is sealed (budget full).

        Segment-granular log shipping uses this as its shipping
        horizon: the newest segment still accepting appends is not
        shipped until it seals.  With no open segment the horizon is
        the log end; with no segments at all it is the truncation
        point.
        """
        if not self._segments:
            return self.truncated_below
        newest = self._segments[-1]
        if newest.encoded_bytes >= self.segment_bytes:
            return newest.end_lsn
        return newest.base_lsn

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _segment_index(self, lsn: int) -> int | None:
        pos = bisect.bisect_right(self._starts, lsn) - 1
        if pos < 0 or lsn >= self._segments[pos].end_lsn:
            return None
        return pos

    def get(self, lsn: int) -> LogRecord | None:
        """The record at ``lsn``: one bisect + one dict hit."""
        pos = self._segment_index(lsn)
        if pos is None:
            return None
        return self._segments[pos].records.get(lsn)

    def size_of(self, lsn: int) -> int | None:
        pos = self._segment_index(lsn)
        if pos is None:
            return None
        return self._segments[pos].sizes.get(lsn)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_from(self, start_lsn: int) -> Iterator[LogRecord]:
        """Records with ``lsn >= start_lsn`` in log order.

        Only the segment containing ``start_lsn`` is filtered; every
        later segment streams whole — no full-log scan.
        """
        pos = bisect.bisect_right(self._starts, start_lsn) - 1
        if pos < 0:
            pos = 0
        for i in range(pos, len(self._segments)):
            segment = self._segments[i]
            if segment.base_lsn >= start_lsn:
                yield from segment.records.values()
            else:
                for lsn, record in segment.records.items():
                    if lsn >= start_lsn:
                        yield record

    def iter_all(self) -> Iterator[LogRecord]:
        for segment in self._segments:
            yield from segment.records.values()

    # ------------------------------------------------------------------
    # Truncation (head reclamation) and crash (tail loss)
    # ------------------------------------------------------------------
    def truncate_below(self, limit: int) -> int:
        """Discard records with ``lsn < limit``; returns bytes freed.

        Whole segments below the limit are dropped in one step; only
        the boundary segment is filtered record by record.
        """
        removed_bytes = 0
        drop = 0
        while (drop < len(self._segments)
               and self._segments[drop].end_lsn <= limit):
            removed_bytes += self._segments[drop].encoded_bytes
            self._record_count -= len(self._segments[drop])
            drop += 1
        if drop:  # one slice, not per-segment pop(0) shifts
            del self._segments[:drop]
            del self._starts[:drop]
        if self._segments and self._segments[0].base_lsn < limit:
            boundary = self._segments[0]
            for lsn in [l for l in boundary.records if l < limit]:
                removed_bytes += boundary.remove(lsn)
                self._record_count -= 1
            if boundary.records:
                boundary.base_lsn = next(iter(boundary.records))
                self._starts[0] = boundary.base_lsn
            else:
                self._segments.pop(0)
                self._starts.pop(0)
        self._total_bytes -= removed_bytes
        self.truncated_below = max(self.truncated_below, limit)
        return removed_bytes

    def discard_from(self, lsn: int) -> list[LogRecord]:
        """Drop records with LSN >= ``lsn`` (crash: the unforced tail).

        Returns the lost records newest-first so the caller can unwind
        derived indexes (per-page chain heads) against them.
        """
        lost: list[LogRecord] = []
        while self._segments:
            segment = self._segments[-1]
            if segment.base_lsn >= lsn:
                for victim in reversed(list(segment.records.values())):
                    lost.append(victim)
                self._total_bytes -= segment.encoded_bytes
                self._record_count -= len(segment)
                self._segments.pop()
                self._starts.pop()
                continue
            if segment.end_lsn <= lsn:
                break
            for victim_lsn in [l for l in reversed(segment.records) if l >= lsn]:
                lost.append(segment.records[victim_lsn])
                self._total_bytes -= segment.remove(victim_lsn)
                self._record_count -= 1
            segment.end_lsn = lsn
            break
        return lost

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def __len__(self) -> int:
        return self._record_count
