"""Foster B-tree with symmetric fence keys.

This package implements the index structure the paper uses to make
*continuous* failure detection a side effect of normal query
processing (Section 4.2, Figures 2 and 3):

* every node carries a **low and a high fence key** — copies of the
  separator keys posted in the parent when the node was split;
* branch records hold the *low* boundary of each child, so that the two
  key values adjacent to a child pointer are exactly the child's fence
  keys, verified on every root-to-leaf pass;
* node splits are local: the split-off right half becomes a **foster
  child** of the original node (the temporary *foster parent*), later
  *adopted* by the permanent parent; each foster parent carries the
  high fence of the entire chain;
* every node has exactly **one incoming pointer** at all times
  (write-optimized-B-tree style), enabling cheap page migration;
* structural changes (split, adoption, ghost removal) run as system
  transactions.
"""

from repro.btree.keys import common_prefix, shortest_separator
from repro.btree.node import BTreeNode, DATA_START
from repro.btree.tree import FosterBTree, TreeContext
from repro.btree.verify import VerificationReport, verify_node, verify_tree

__all__ = [
    "FosterBTree",
    "TreeContext",
    "BTreeNode",
    "DATA_START",
    "common_prefix",
    "shortest_separator",
    "verify_tree",
    "verify_node",
    "VerificationReport",
]
