"""A slotted-page heap file.

Records are byte strings addressed by RID = (page id, slot).  Deleted
slots become ghosts first (so undo can revive them) and are reclaimed
by a system transaction, mirroring the B-tree's ghost discipline.

Design notes:

* the set of pages belonging to the heap is kept in the engine's
  metadata page (key ``heap:<id>``), updated under the allocating
  transaction, so it is crash-consistent;
* free-space hints are volatile (rebuilt lazily); correctness never
  depends on them;
* RIDs are stable: records never move between slots, so a RID stored
  elsewhere (e.g. as a B-tree value, secondary-index style) stays valid
  until the record is deleted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import KeyNotFound, ReproError
from repro.page.page import Page
from repro.page.slotted import PageFullError, Record, SlottedPage
from repro.sim.stats import Stats
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction
from repro.wal.ops import OpInsert, OpSetGhost, OpUpdateValue
from repro.wal.records import LogicalUndo, UndoAction


@dataclass(frozen=True, order=True)
class RID:
    """Stable record identifier: (page id, slot index)."""

    page_id: int
    slot: int

    def encode(self) -> bytes:
        return struct.pack("<qH", self.page_id, self.slot)

    @classmethod
    def decode(cls, data: bytes) -> "RID":
        page_id, slot = struct.unpack("<qH", data)
        return cls(page_id, slot)


class HeapFile:
    """A heap of byte-string records over the engine's substrate.

    ``ctx`` is the same engine context the B-tree uses (fix/unfix,
    allocation, dirty marking); ``heap_id`` namespaces the page list in
    the metadata page.
    """

    def __init__(self, heap_id: int, ctx, tm: TransactionManager,  # noqa: ANN001
                 stats: Stats) -> None:
        self.heap_id = heap_id
        self.ctx = ctx
        self.tm = tm
        self.stats = stats

    # ------------------------------------------------------------------
    # Page-list bookkeeping (crash-consistent via the metadata page)
    # ------------------------------------------------------------------
    def _pages(self) -> list[int]:
        raw = self.ctx.get_heap_pages(self.heap_id)
        return raw

    def _log(self, txn: Transaction, page: Page, op, undo=None) -> int:  # noqa: ANN001
        lsn = self.tm.log_update(txn, page, self._index_tag(), op, undo)
        self.ctx.mark_dirty(page.page_id, lsn)
        return lsn

    def _index_tag(self) -> int:
        # Heap ids share the index-id namespace, offset to avoid clashes.
        return 1_000_000 + self.heap_id

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def insert(self, txn: Transaction, payload: bytes) -> RID:
        """Store ``payload``; returns its stable RID.

        The insert's logical undo *ghosts* the slot rather than
        removing it: physically removing a slot would shift the slots
        behind it and invalidate other transactions' RIDs and physical
        undo information.
        """
        if not payload:
            raise ReproError("empty heap records are not supported")
        record = Record(b"", payload)
        for page_id in self._pages():
            page = self.ctx.fix(page_id)
            try:
                slotted = SlottedPage(page)
                if slotted.room_for(record):
                    slot = slotted.slot_count
                    rid = RID(page_id, slot)
                    self._log(txn, page, OpInsert(slot, b"", payload),
                              undo=LogicalUndo(UndoAction.DELETE_KEY,
                                               rid.encode()))
                    self.stats.bump("heap_inserts")
                    return rid
            finally:
                self.ctx.unfix(page_id)
        # No room anywhere: grow the heap by one page.
        page = self.ctx.allocate_heap_page(txn, self.heap_id)
        try:
            rid = RID(page.page_id, 0)
            self._log(txn, page, OpInsert(0, b"", payload),
                      undo=LogicalUndo(UndoAction.DELETE_KEY, rid.encode()))
            self.stats.bump("heap_inserts")
            return rid
        finally:
            self.ctx.unfix(page.page_id)

    def compensate(self, txn: Transaction, undo, undo_next_lsn: int) -> None:  # noqa: ANN001
        """RID-level compensation: undo an insert by ghosting its slot."""
        if undo.action != UndoAction.DELETE_KEY:
            raise ReproError(f"heap cannot compensate {undo.action}")
        rid = RID.decode(undo.key)
        page = self.ctx.fix(rid.page_id)
        try:
            slotted = SlottedPage(page)
            if rid.slot < slotted.slot_count and not slotted.is_ghost(rid.slot):
                lsn = self.tm.log_compensation(
                    txn, page, self._index_tag(),
                    OpSetGhost(rid.slot, False, True), undo_next_lsn)
                self.ctx.mark_dirty(rid.page_id, lsn)
        finally:
            self.ctx.unfix(rid.page_id)

    def fetch(self, rid: RID) -> bytes:
        """The payload stored at ``rid``; raises if absent or deleted."""
        page = self.ctx.fix(rid.page_id)
        try:
            slotted = SlottedPage(page)
            if rid.slot >= slotted.slot_count or slotted.is_ghost(rid.slot):
                raise KeyNotFound(rid.encode())
            self.stats.bump("heap_fetches")
            return slotted.read_record(rid.slot).value
        finally:
            self.ctx.unfix(rid.page_id)

    def update(self, txn: Transaction, rid: RID, payload: bytes) -> None:
        """Replace the payload at ``rid`` in place (RID unchanged)."""
        page = self.ctx.fix(rid.page_id)
        try:
            slotted = SlottedPage(page)
            if rid.slot >= slotted.slot_count or slotted.is_ghost(rid.slot):
                raise KeyNotFound(rid.encode())
            old = slotted.read_record(rid.slot).value
            new_record = Record(b"", payload)
            if not (slotted.room_for(new_record)
                    or new_record.stored_length <= len(old) + 2):
                raise PageFullError(
                    f"no room to grow record at {rid} in place")
            self._log(txn, page, OpUpdateValue(rid.slot, old, payload))
            self.stats.bump("heap_updates")
        finally:
            self.ctx.unfix(rid.page_id)

    def delete(self, txn: Transaction, rid: RID) -> None:
        """Logical deletion: the slot becomes a ghost."""
        page = self.ctx.fix(rid.page_id)
        try:
            slotted = SlottedPage(page)
            if rid.slot >= slotted.slot_count or slotted.is_ghost(rid.slot):
                raise KeyNotFound(rid.encode())
            self._log(txn, page, OpSetGhost(rid.slot, False, True))
            self.stats.bump("heap_deletes")
        finally:
            self.ctx.unfix(rid.page_id)

    def scan(self) -> list[tuple[RID, bytes]]:
        """All live records in RID order."""
        out: list[tuple[RID, bytes]] = []
        for page_id in self._pages():
            page = self.ctx.fix(page_id)
            try:
                slotted = SlottedPage(page)
                for slot in range(slotted.slot_count):
                    if not slotted.is_ghost(slot):
                        out.append((RID(page_id, slot),
                                    slotted.read_record(slot).value))
            finally:
                self.ctx.unfix(page_id)
        self.stats.bump("heap_scans")
        return out

    def vacuum(self) -> int:
        """Reclaim ghost slots' space (a system transaction per page).

        Slots are *kept* (RID stability): the record bytes shrink to an
        empty tombstone rather than disappearing, and the space returns
        to the page.  Returns tombstoned slot count.
        """
        reclaimed = 0
        for page_id in self._pages():
            sys_txn = self.tm.begin(system=True)
            page = self.ctx.fix(page_id)
            try:
                slotted = SlottedPage(page)
                for slot in range(slotted.slot_count):
                    if not slotted.is_ghost(slot):
                        continue
                    old = slotted.read_record(slot).value
                    if old:
                        self._log(txn=sys_txn, page=page,
                                  op=OpUpdateValue(slot, old, b""))
                        reclaimed += 1
                self.tm.commit(sys_txn)
            finally:
                self.ctx.unfix(page_id)
        if reclaimed:
            self.stats.bump("heap_slots_vacuumed", reclaimed)
        return reclaimed

    def count(self) -> int:
        return len(self.scan())
