"""The shard layer: partitioning, RPC framing, worker, transports."""

import pickle
import socket

import pytest

from repro.engine.config import EngineConfig
from repro.errors import (
    ShardError,
    ShardUnavailableError,
    SystemFailure,
    TransactionError,
)
from repro.shard.config import ShardConfig
from repro.shard.router import ShardRouter, shard_of
from repro.shard.rpc import (
    MAX_MESSAGE_BYTES,
    marshal_error,
    recv_msg,
    send_msg,
    unmarshal_error,
)
from repro.shard.worker import ShardWorker


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartitioning:
    def test_stable_across_calls(self):
        for key in (b"a", b"hello", b"k%06d" % 123456):
            assert shard_of(key, 4) == shard_of(key, 4)

    def test_known_values_pinned(self):
        # CRC-32 is standardized: these must never change, or every
        # persisted deployment would re-route its keys.
        assert shard_of(b"hello", 4) == 907060870 % 4
        assert shard_of(b"", 7) == 0

    def test_covers_all_shards(self):
        n = 8
        hit = {shard_of(b"k%06d" % i, n) for i in range(2000)}
        assert hit == set(range(n))


# ----------------------------------------------------------------------
# RPC framing
# ----------------------------------------------------------------------
class TestRpcFraming:
    def roundtrip(self, obj):
        a, b = socket.socketpair()
        try:
            send_msg(a, obj)
            return recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_roundtrip_objects(self):
        for obj in [("get", b"key"), ("ok", None), ("ok", [(b"a", b"b")]),
                    ("err", "KeyNotFound", "k"), 42]:
            assert self.roundtrip(obj) == obj

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        assert recv_msg(b) is None
        b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        a.sendall(b"\x10\x00\x00\x00abc")  # promises 16 bytes, sends 3
        a.close()
        with pytest.raises(ConnectionError):
            recv_msg(b)
        b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        a.sendall((MAX_MESSAGE_BYTES + 1).to_bytes(4, "little"))
        with pytest.raises(ConnectionError):
            recv_msg(b)
        a.close()
        b.close()

    def test_error_marshalling_taxonomy(self):
        name, message = marshal_error(SystemFailure("crashed"))
        err = unmarshal_error(name, message)
        assert isinstance(err, SystemFailure)
        assert "crashed" in str(err)

    def test_error_marshalling_unknown_class(self):
        err = unmarshal_error("SomethingWeird", "detail")
        assert isinstance(err, ShardError)
        assert "SomethingWeird" in str(err)

    def test_error_marshalling_structured_ctor_falls_back(self):
        # ShardUnavailableError wants (shard, reason); rehydration by
        # message alone must not crash, it degrades to ShardError.
        name, message = marshal_error(ShardUnavailableError(3, "gone"))
        err = unmarshal_error(name, message)
        assert isinstance(err, ShardError)


# ----------------------------------------------------------------------
# The worker
# ----------------------------------------------------------------------
class TestShardWorker:
    @pytest.fixture
    def worker(self):
        return ShardWorker(0, EngineConfig())

    def test_autocommit_roundtrip(self, worker):
        assert worker.execute(("put", b"k", b"v")) is None
        assert worker.execute(("get", b"k")) == b"v"
        assert worker.execute(("delete", b"k")) is True
        assert worker.execute(("get", b"k")) is None

    def test_batch(self, worker):
        ops = [("put", b"a", b"1"), ("put", b"b", b"2"), ("delete", b"a")]
        assert worker.execute(("batch", ops)) == 3
        assert worker.execute(("scan", b"", None)) == [(b"b", b"2")]

    def test_txn_branch_lifecycle(self, worker):
        worker.execute(("txn_begin", 9))
        worker.execute(("txn_put", 9, b"k", b"v"))
        assert worker.execute(("txn_get", 9, b"k")) == b"v"
        worker.execute(("txn_commit", 9))
        assert worker.execute(("get", b"k")) == b"v"

    def test_txn_abort_rolls_back(self, worker):
        worker.execute(("txn_begin", 9))
        worker.execute(("txn_put", 9, b"k", b"v"))
        worker.execute(("txn_abort", 9))
        assert worker.execute(("get", b"k")) is None

    def test_unknown_xid_raises(self, worker):
        with pytest.raises(TransactionError):
            worker.execute(("txn_put", 404, b"k", b"v"))

    def test_duplicate_xid_raises(self, worker):
        worker.execute(("txn_begin", 9))
        with pytest.raises(TransactionError):
            worker.execute(("txn_begin", 9))

    def test_unknown_verb_raises(self, worker):
        with pytest.raises(ShardError):
            worker.execute(("frobnicate",))

    def test_crash_wipes_branches_and_restart_reports_indoubt(self, worker):
        worker.execute(("txn_begin", 1))
        worker.execute(("txn_put", 1, b"p", b"v"))
        worker.execute(("prepare", 1, 77))
        worker.execute(("txn_begin", 2))
        worker.execute(("txn_put", 2, b"loser", b"v"))
        worker.execute(("crash",))
        assert worker._live == {} and worker._prepared == {}
        assert worker.execute(("restart", None)) == [77]
        worker.execute(("resolve", 77, True))
        assert worker.execute(("get", b"p")) == b"v"
        assert worker.execute(("get", b"loser")) is None

    def test_resolve_is_idempotent(self, worker):
        worker.execute(("txn_begin", 1))
        worker.execute(("txn_put", 1, b"k", b"v"))
        worker.execute(("prepare", 1, 5))
        worker.execute(("resolve", 5, True))
        worker.execute(("resolve", 5, True))  # re-delivery: no-op
        assert worker.execute(("get", b"k")) == b"v"

    def test_crashed_engine_raises_system_failure(self, worker):
        worker.execute(("crash",))
        with pytest.raises(SystemFailure):
            worker.execute(("get", b"k"))

    def test_stats_include_shard_counters(self, worker):
        worker.execute(("put", b"k", b"v"))
        stats = worker.execute(("stats",))
        assert stats["shard_ops_served"] >= 1


# ----------------------------------------------------------------------
# The router over inproc shards
# ----------------------------------------------------------------------
class TestRouterInproc:
    @pytest.fixture
    def router(self):
        built = ShardRouter(ShardConfig(n_shards=4, transport="inproc"))
        yield built
        built.close()

    def test_routes_match_partitioner(self, router):
        for i in range(32):
            key = b"k%06d" % i
            router.put(key, b"v")
            idx = router.shard_of(key)
            assert router.shards[idx].worker.execute(("get", key)) == b"v"

    def test_partitioned_shard_refuses(self, router):
        key = b"somekey"
        idx = router.shard_of(key)
        router.shards[idx].partitioned = True
        with pytest.raises(ShardUnavailableError):
            router.get(key)
        router.shards[idx].partitioned = False
        assert router.get(key) is None

    def test_crashed_shard_reopens_on_demand(self, router):
        router.put(b"k", b"v")
        idx = router.shard_of(b"k")
        router.shards[idx].worker.execute(("crash",))
        assert router.get(b"k") == b"v"
        assert router.reopens == 1

    def test_other_shards_serve_while_one_down(self, router):
        keys = [b"key%06d" % i for i in range(40)]
        for key in keys:
            router.put(key, b"v")
        down = router.shard_of(keys[0])
        router.shards[down].worker.execute(("crash",))
        for key in keys:
            if router.shard_of(key) != down:
                assert router.get(key) == b"v"
        assert router.reopens == 0  # never touched the crashed one

    def test_single_shard_txn_has_no_coordinator_state(self, router):
        txn = router.txn()
        key = b"solo"
        txn.put(key, b"v")
        assert len(txn.branches) == 1
        txn.commit()
        assert len(router.coordinator) == 0
        assert router.get(key) == b"v"

    def test_finished_txn_rejects_further_use(self, router):
        txn = router.txn()
        txn.put(b"k", b"v")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.put(b"k2", b"v")
        with pytest.raises(TransactionError):
            txn.commit()

    def test_read_only_shards_do_not_enlist(self, router):
        router.put(b"read-me", b"x")
        txn = router.txn()
        assert txn.get(b"read-me") == b"x"
        txn.put(b"write-me", b"y")
        assert len(txn.branches) == 1
        txn.commit()


# ----------------------------------------------------------------------
# The process transport (forked workers over sockets)
# ----------------------------------------------------------------------
class TestProcessTransport:
    def test_end_to_end(self):
        router = ShardRouter(ShardConfig(n_shards=2, transport="process"))
        try:
            router.put(b"k1", b"v1")
            assert router.get(b"k1") == b"v1"
            txn = router.txn()
            txn.put(b"a1", b"x")
            txn.put(b"b2", b"y")
            txn.put(b"c3", b"z")
            txn.commit()
            state = dict(router.scan())
            assert state[b"a1"] == b"x" and state[b"c3"] == b"z"
        finally:
            router.close()

    def test_worker_errors_cross_the_boundary_typed(self):
        router = ShardRouter(ShardConfig(n_shards=1, transport="process"))
        try:
            with pytest.raises(TransactionError):
                router._call(0, "txn_put", 404, b"k", b"v")
        finally:
            router.close()

    def test_close_terminates_workers(self):
        router = ShardRouter(ShardConfig(n_shards=2, transport="process"))
        procs = [shard._proc for shard in router.shards]
        router.close()
        assert all(not proc.is_alive() for proc in procs)
