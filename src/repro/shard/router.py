"""The shard router: hash partitioning, transports, and 2PC driving.

The router is the single coordinator of a sharded deployment.  Keys
are partitioned with a *stable* hash (CRC-32 — never Python's
``hash()``, which is randomized per process and would scatter a key
across restarts).  Each partition is reached through a transport:

* :class:`LocalShard` — the worker lives in the router's process and
  commands are direct calls.  Deterministic, so the chaos harness and
  the differential suite run here; a ``partitioned`` flag models a
  network partition by refusing every command.
* :class:`ProcessShard` — the worker is a forked child serving the
  length-prefixed socket protocol.  N shards then run on N real
  cores: the multi-process path the throughput benchmark measures.

Cross-shard transactions commit with WAL-logged two-phase commit
(participant PREPARE records + the router's forced decision log).  The
router also implements *per-shard instant restart*: when a command
hits a crashed shard it re-opens just that shard on demand — restart
analysis reports the gtids the log left in doubt and the router
resolves them straight from the decision log — while every other shard
keeps serving untouched.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import zlib

from repro.errors import (
    ReproError,
    ShardError,
    ShardUnavailableError,
    SystemFailure,
    TransactionAborted,
    TransactionError,
)
from repro.shard.config import ShardConfig
from repro.shard.rpc import recv_msg, send_msg, unmarshal_error
from repro.shard.twopc import CoordinatorLog
from repro.shard.worker import ShardWorker, worker_main


def shard_of(key: bytes, n_shards: int) -> int:
    """Stable partition of ``key`` (CRC-32 mod N)."""
    return zlib.crc32(key) % n_shards


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
class LocalShard:
    """In-process transport: direct calls into a :class:`ShardWorker`.

    Exposes the worker (and its engine) for the chaos harness, which
    needs to crash shards and inspect their logs mid-protocol.
    """

    def __init__(self, shard_id: int, config) -> None:  # noqa: ANN001
        self.shard_id = shard_id
        self.worker = ShardWorker(shard_id, config)
        #: network partition switch (the harness flips it)
        self.partitioned = False

    def call(self, command: tuple):  # noqa: ANN201
        if self.partitioned:
            raise ShardUnavailableError(self.shard_id, "network partition")
        return self.worker.execute(command)

    def close(self) -> None:
        if not self.partitioned:
            try:
                self.worker.execute(("close",))
            except ReproError:
                pass  # a crashed shard has nothing to close


class ProcessShard:
    """Multi-process transport: a forked worker behind a socketpair.

    Fork (not spawn) on purpose: the child inherits the already-built
    configuration objects, and the engine itself is constructed *in the
    child*, so no device or pool state is ever shared.  One lock per
    shard serializes request/reply pairs on the connection; different
    shards proceed fully in parallel.
    """

    def __init__(self, shard_id: int, config) -> None:  # noqa: ANN001
        import multiprocessing
        import socket

        self.shard_id = shard_id
        ctx = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        self._sock = parent_sock
        self._lock = threading.Lock()
        self._proc = ctx.Process(
            target=worker_main, args=(shard_id, config, child_sock),
            daemon=True, name=f"shard-{shard_id}")
        self._proc.start()
        child_sock.close()  # the child holds its own copy

    def call(self, command: tuple):  # noqa: ANN201
        with self._lock:
            try:
                send_msg(self._sock, command)
                reply = recv_msg(self._sock)
            except (ConnectionError, OSError) as exc:
                raise ShardUnavailableError(
                    self.shard_id, f"worker connection lost: {exc}") from exc
        if reply is None:
            raise ShardUnavailableError(self.shard_id, "worker process exited")
        if reply[0] == "ok":
            return reply[1]
        raise unmarshal_error(reply[1], reply[2])

    def close(self) -> None:
        try:
            self.call(("close",))
        except (ReproError, ShardUnavailableError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._proc.join(timeout=5)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5)


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class ShardRouter:
    """Routes keys, drives transactions, recovers shards on demand."""

    def __init__(self, config: ShardConfig | None = None,
                 coordinator: CoordinatorLog | None = None) -> None:
        self.config = (config if config is not None
                       else ShardConfig()).validate()
        self.coordinator = coordinator if coordinator is not None \
            else CoordinatorLog()
        transport = (LocalShard if self.config.transport == "inproc"
                     else ProcessShard)
        self.shards = [
            transport(i, self.config.shard_engine_config(i))
            for i in range(self.config.n_shards)
        ]
        #: undeliverable phase-two messages, queued per shard until it
        #: is reachable again (command tuples, replayed in order)
        self._pending: dict[int, list[tuple]] = {
            i: [] for i in range(self.config.n_shards)}
        self._next_xid = itertools.count(1)
        self._closed = False
        self.reopens = 0
        #: 2PC failpoint hook: ``hook(stage, shard_id)`` is called at
        #: ``"after_prepare"``/``"after_commit"`` (per participant) and
        #: ``"after_decision"`` (shard_id ``None``).  The chaos harness
        #: raises from it to crash the protocol mid-flight.
        self.commit_hook = None

    # -- partitioning --------------------------------------------------
    def shard_of(self, key: bytes) -> int:
        return shard_of(key, self.config.n_shards)

    # -- plumbing ------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ShardError("router is closed")

    def _call(self, idx: int, *command):  # noqa: ANN201
        """One command to shard ``idx``, with on-demand reopen: a
        crashed shard is restarted (and its in-doubt branches resolved
        from the decision log) transparently, then the command retried
        once.  A partitioned shard raises without retry."""
        self._require_open()
        self._flush_pending(idx)
        try:
            return self.shards[idx].call(tuple(command))
        except SystemFailure:
            self._reopen(idx)
            return self.shards[idx].call(tuple(command))

    def _reopen(self, idx: int) -> list[int]:
        """Instant restart of one shard while the others keep serving.

        Restart analysis reports the gtids still in doubt; each is
        resolved immediately from the coordinator's durable decisions
        (absent decision = presumed abort).  Anything queued for the
        shard is superseded by this resolution and dropped.
        """
        shard = self.shards[idx]
        indoubt = shard.call(("restart", None))
        self._pending[idx].clear()
        for gtid in indoubt:
            verdict = self.coordinator.decision_of(gtid)
            shard.call(("resolve", gtid, verdict == "commit"))
        self.reopens += 1
        return list(indoubt)

    def _flush_pending(self, idx: int) -> None:
        """Deliver queued phase-two messages once ``idx`` is back."""
        queue = self._pending[idx]
        while queue:
            try:
                self.shards[idx].call(queue[0])
            except ShardUnavailableError:
                return  # still partitioned; keep the queue
            except SystemFailure:
                self._reopen(idx)  # reopen resolves and clears the queue
                return
            queue.pop(0)

    def _fire_hook(self, stage: str, shard_id: int | None) -> None:
        if self.commit_hook is not None:
            self.commit_hook(stage, shard_id)

    # -- autocommit operations -----------------------------------------
    def get(self, key: bytes) -> bytes | None:
        return self._call(self.shard_of(key), "get", key)

    def put(self, key: bytes, value: bytes) -> None:
        self._call(self.shard_of(key), "put", key, value)

    def delete(self, key: bytes) -> bool:
        return self._call(self.shard_of(key), "delete", key)

    def scan(self, low: bytes = b"",
             high: bytes | None = None) -> list[tuple[bytes, bytes]]:
        """Global key order across all shards (k-way merge of the
        per-shard sorted scans)."""
        per_shard = [self._call(i, "scan", low, high)
                     for i in range(self.config.n_shards)]
        return list(heapq.merge(*per_shard))

    def apply_batch(self, idx: int, ops: list[tuple]) -> int:
        """One shard-local bulk transaction (the benchmark path)."""
        return self._call(idx, "batch", ops)

    def partition_batches(self, ops: list[tuple]) -> dict[int, list[tuple]]:
        """Split ``[("put", k, v) | ("delete", k), ...]`` by shard."""
        batches: dict[int, list[tuple]] = {}
        for op in ops:
            batches.setdefault(self.shard_of(op[1]), []).append(op)
        return batches

    # -- transactions --------------------------------------------------
    def txn(self) -> "RouterTxn":
        self._require_open()
        return RouterTxn(self, next(self._next_xid))

    # -- maintenance ---------------------------------------------------
    def checkpoint_all(self) -> list[int]:
        return [self._call(i, "checkpoint")
                for i in range(self.config.n_shards)]

    def stats(self) -> dict[int, dict]:
        return {i: self._call(i, "stats")
                for i in range(self.config.n_shards)}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()


class RouterTxn:
    """One router-level transaction, possibly spanning shards.

    Branches are opened lazily on first *write* to a shard; reads do
    not enlist (the read-only participant optimization — a branch with
    nothing to undo or redo has no business in phase one).  Commit is
    a local passthrough for 0/1 participants and WAL-logged 2PC for
    more.
    """

    def __init__(self, router: ShardRouter, xid: int) -> None:
        self.router = router
        self.xid = xid
        self.branches: set[int] = set()
        self._done = False

    # -- operations ----------------------------------------------------
    def _require_active(self) -> None:
        if self._done:
            raise TransactionError(
                f"transaction {self.xid} is already finished")

    def _enlist(self, idx: int) -> None:
        if idx not in self.branches:
            self.router._call(idx, "txn_begin", self.xid)
            self.branches.add(idx)

    def get(self, key: bytes) -> bytes | None:
        self._require_active()
        idx = self.router.shard_of(key)
        if idx in self.branches:
            return self.router._call(idx, "txn_get", self.xid, key)
        return self.router._call(idx, "get", key)

    def put(self, key: bytes, value: bytes) -> None:
        self._require_active()
        idx = self.router.shard_of(key)
        self._enlist(idx)
        self.router._call(idx, "txn_put", self.xid, key, value)

    def delete(self, key: bytes) -> bool:
        self._require_active()
        idx = self.router.shard_of(key)
        self._enlist(idx)
        return self.router._call(idx, "txn_delete", self.xid, key)

    # -- finish --------------------------------------------------------
    def commit(self) -> None:
        self._require_active()
        self._done = True
        participants = sorted(self.branches)
        if not participants:
            return
        if len(participants) == 1:
            # Single-shard passthrough: the branch's own COMMIT record
            # is the commit point; no coordinator state at all.
            self.router._call(participants[0], "txn_commit", self.xid)
            return
        self._commit_two_phase(participants)

    def _commit_two_phase(self, participants: list[int]) -> None:
        router = self.router
        gtid = router.coordinator.allocate_gtid()

        # Phase one: force a PREPARE record on every participant.  Any
        # refusal (or unreachable shard) before the decision is logged
        # aborts the whole transaction — presumed abort.
        prepared: list[int] = []
        for idx in participants:
            try:
                router._call(idx, "prepare", self.xid, gtid)
            except ReproError as exc:
                self._abort_after_failed_prepare(gtid, prepared,
                                                 participants)
                raise TransactionAborted(
                    self.xid,
                    f"prepare failed on shard {idx}: {exc}") from exc
            prepared.append(idx)
            router._fire_hook("after_prepare", idx)

        # The commit point: the decision is forced to the coordinator
        # log.  From here the transaction *will* commit everywhere,
        # however many crashes intervene.
        router.coordinator.log_decision(gtid, "commit", participants)
        router._fire_hook("after_decision", None)

        # Phase two: deliver the decision.  An unreachable participant
        # gets its resolution queued; a crashed one is reopened by
        # _call, which resolves it from the decision log before the
        # explicit resolve arrives (making it a no-op).
        for idx in participants:
            try:
                router._call(idx, "resolve", gtid, True)
            except ShardUnavailableError:
                router._pending[idx].append(("resolve", gtid, True))
            router._fire_hook("after_commit", idx)

    def _abort_after_failed_prepare(self, gtid: int, prepared: list[int],
                                    participants: list[int]) -> None:
        router = self.router
        router.coordinator.log_decision(gtid, "abort", participants)
        for idx in prepared:
            try:
                router._call(idx, "resolve", gtid, False)
            except ShardUnavailableError:
                router._pending[idx].append(("resolve", gtid, False))
        for idx in participants:
            if idx in prepared:
                continue
            try:
                router._call(idx, "txn_abort", self.xid)
            except ReproError:
                pass  # branch died with its shard; analysis undoes it

    def abort(self) -> None:
        self._require_active()
        self._done = True
        for idx in sorted(self.branches):
            try:
                self.router._call(idx, "txn_abort", self.xid)
            except ReproError:
                pass  # a crashed shard's analysis already undid it
