"""One shard: an engine instance behind the command protocol.

A :class:`ShardWorker` owns a complete :class:`repro.engine.database.
Database` — its own device, WAL, buffer pool, and restart/restore
registries — plus one default key-value index, and executes the
router's command tuples against it.  The same worker object serves two
transports: in-process (the router calls :meth:`execute` directly —
deterministic, used by the chaos harness and the differential suite)
and multi-process (:func:`worker_main` runs :func:`serve` over a
socket in a forked child, so N shards execute on N real cores).

Transactional state lives here, keyed by router-chosen ids: ``_live``
maps an ``xid`` to its open branch, ``_prepared`` maps a ``gtid`` to a
branch that has forced its PREPARE record and now holds its locks in
doubt.  A ``crash`` command wipes both (volatile state), exactly like
the single-node engine's crash; ``restart`` reruns analysis and
reports which gtids the log says are still in doubt.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import KeyNotFound, ShardError, TransactionError
from repro.shard.rpc import marshal_error, recv_msg, send_msg


class ShardWorker:
    """Executes shard command tuples against one engine instance."""

    def __init__(self, shard_id: int, config: EngineConfig) -> None:
        self.shard_id = shard_id
        self.db = Database(config)
        self.index_id = self.db.create_index().index_id
        self._live: dict[int, object] = {}       # xid -> Transaction
        self._prepared: dict[int, object] = {}   # gtid -> Transaction
        self.ops_served = 0

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, command: tuple):  # noqa: ANN201
        """Run one ``(verb, *operands)`` tuple; exceptions propagate."""
        verb = command[0]
        handler = getattr(self, "_cmd_" + verb, None)
        if handler is None:
            raise ShardError(f"unknown shard command {verb!r}")
        self.ops_served += 1
        return handler(*command[1:])

    @property
    def _tree(self):  # noqa: ANN202 - FosterBTree
        # Re-fetched every time: a restart rebuilds the catalog, and a
        # cached handle would point at dead buffer-pool state.
        return self.db.tree(self.index_id)

    def _branch(self, xid: int):  # noqa: ANN202 - Transaction
        txn = self._live.get(xid)
        if txn is None:
            raise TransactionError(
                f"shard {self.shard_id} has no open branch for xid {xid}")
        return txn

    # ------------------------------------------------------------------
    # Autocommit operations
    # ------------------------------------------------------------------
    def _cmd_ping(self) -> str:
        return "pong"

    def _cmd_get(self, key: bytes) -> bytes | None:
        self.db._require_running()
        try:
            return self._tree.lookup(key)
        except KeyNotFound:
            return None

    def _cmd_put(self, key: bytes, value: bytes) -> None:
        xid = self._cmd_txn_begin(-1)
        try:
            self._cmd_txn_put(xid, key, value)
        except BaseException:
            self._abort_quietly(xid)
            raise
        self._cmd_txn_commit(xid)

    def _cmd_delete(self, key: bytes) -> bool:
        xid = self._cmd_txn_begin(-1)
        try:
            existed = self._cmd_txn_delete(xid, key)
        except BaseException:
            self._abort_quietly(xid)
            raise
        self._cmd_txn_commit(xid)
        return existed

    def _cmd_batch(self, ops: list[tuple]) -> int:
        """Apply ``[("put", k, v) | ("delete", k), ...]`` in one local
        transaction (the bulk path the benchmarks drive)."""
        xid = self._cmd_txn_begin(-1)
        try:
            for op in ops:
                if op[0] == "put":
                    self._cmd_txn_put(xid, op[1], op[2])
                elif op[0] == "delete":
                    self._cmd_txn_delete(xid, op[1])
                else:
                    raise ShardError(f"unknown batch op {op[0]!r}")
        except BaseException:
            self._abort_quietly(xid)
            raise
        self._cmd_txn_commit(xid)
        return len(ops)

    def _cmd_scan(self, low: bytes = b"",
                  high: bytes | None = None) -> list[tuple[bytes, bytes]]:
        self.db._require_running()
        return list(self._tree.range_scan(low, high))

    def _abort_quietly(self, xid: int) -> None:
        txn = self._live.pop(xid, None)
        if txn is not None:
            try:
                self.db.abort(txn)
            except Exception:
                # The failed operation already escalated (e.g. to a
                # system failure that wiped the active table); the
                # original error is the one the router needs to see.
                pass

    # ------------------------------------------------------------------
    # Transactional branches
    # ------------------------------------------------------------------
    def _cmd_txn_begin(self, xid: int) -> int:
        """Open a branch.  ``xid`` is the router's transaction id; the
        autocommit paths pass ``-1`` and get a fresh negative id so
        internal transactions can never collide with router ones."""
        if xid == -1:
            xid = -2 - len(self._live)
            while xid in self._live:
                xid -= 1
        if xid in self._live:
            raise TransactionError(
                f"shard {self.shard_id} already has a branch for xid {xid}")
        self._live[xid] = self.db.begin()
        return xid

    def _cmd_txn_get(self, xid: int, key: bytes) -> bytes | None:
        self._branch(xid)  # branch must exist; reads see live tree state
        try:
            return self._tree.lookup(key)
        except KeyNotFound:
            return None

    def _cmd_txn_put(self, xid: int, key: bytes, value: bytes) -> None:
        txn = self._branch(xid)
        self.db.locks.acquire(txn.txn_id, key)
        tree = self._tree
        try:
            tree.lookup(key)
        except KeyNotFound:
            tree.insert(txn, key, value)
        else:
            tree.update(txn, key, value)

    def _cmd_txn_delete(self, xid: int, key: bytes) -> bool:
        txn = self._branch(xid)
        self.db.locks.acquire(txn.txn_id, key)
        tree = self._tree
        try:
            tree.lookup(key)
        except KeyNotFound:
            return False
        tree.delete(txn, key)
        return True

    def _cmd_txn_commit(self, xid: int) -> int:
        txn = self._branch(xid)
        lsn = self.db.commit(txn)
        del self._live[xid]
        return lsn

    def _cmd_txn_abort(self, xid: int) -> None:
        txn = self._branch(xid)
        self.db.abort(txn)
        del self._live[xid]

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------
    def _cmd_prepare(self, xid: int, gtid: int) -> int:
        """Phase one: force a PREPARE record; the branch moves from the
        live table to the prepared table, still holding its locks."""
        txn = self._branch(xid)
        lsn = self.db.prepare(txn, gtid)
        del self._live[xid]
        self._prepared[gtid] = txn
        return lsn

    def _cmd_resolve(self, gtid: int, commit: bool) -> int | None:
        """Phase two: deliver the coordinator's decision.

        Handles both a still-live prepared branch and one recovered as
        in-doubt after a crash; re-delivery to an already-resolved gtid
        is a no-op (the retry path after a lost ack).
        """
        txn = self._prepared.pop(gtid, None)
        if txn is not None:
            if commit:
                return self.db.commit_prepared(txn)
            self.db.abort_prepared(txn)
            return None
        if gtid in self.db.indoubt:
            return self.db.resolve_indoubt(gtid, commit)
        return None

    def _cmd_indoubt(self) -> list[int]:
        gtids = set(self._prepared) | set(self.db.indoubt)
        return sorted(gtids)

    # ------------------------------------------------------------------
    # Failures, recovery, maintenance
    # ------------------------------------------------------------------
    def _cmd_crash(self) -> None:
        self.db.crash()
        self._live.clear()
        self._prepared.clear()

    def _cmd_restart(self, mode: str | None = None) -> list[int]:
        """Recover the shard; returns the gtids the log left in doubt
        (the router resolves them from the coordinator's decisions)."""
        report = self.db.restart(mode)
        return list(report.indoubt_gtids)

    def _cmd_finish_restart(self) -> tuple[int, int]:
        return self.db.finish_restart()

    def _cmd_checkpoint(self) -> int:
        return self.db.checkpoint()

    def _cmd_drain(self, page_budget: int | None = None,
                   loser_budget: int | None = None) -> tuple[int, int]:
        p1, l1 = self.db.drain_restart(page_budget, loser_budget)
        p2, l2 = self.db.drain_restore(page_budget, loser_budget)
        return p1 + p2, l1 + l2

    def _cmd_stats(self) -> dict:
        counters = self.db.stats.snapshot()
        counters["shard_ops_served"] = self.ops_served
        counters["shard_live_branches"] = len(self._live)
        counters["shard_prepared_branches"] = len(self._prepared)
        # Simulated seconds this shard's devices have charged; the
        # throughput probe computes the fleet makespan from these.
        counters["sim_clock_seconds"] = self.db.clock.now
        return counters

    def _cmd_close(self) -> None:
        for xid in list(self._live):
            self._abort_quietly(xid)


# ----------------------------------------------------------------------
# Process transport
# ----------------------------------------------------------------------
def serve(worker: ShardWorker, sock) -> None:  # noqa: ANN001
    """Request loop for one connection: read a command tuple, reply
    ``("ok", result)`` or ``("err", class_name, message)``."""
    while True:
        try:
            command = recv_msg(sock)
        except (ConnectionError, OSError, EOFError):
            break
        if command is None:
            break
        try:
            result = worker.execute(command)
        except Exception as exc:  # marshalled, never kills the loop
            reply = ("err", *marshal_error(exc))
        else:
            reply = ("ok", result)
        try:
            send_msg(sock, reply)
        except (ConnectionError, OSError, BrokenPipeError):
            break
        if command[0] == "close":
            break


def worker_main(shard_id: int, config: EngineConfig, sock) -> None:  # noqa: ANN001
    """Entry point of a forked shard process: build the engine *in the
    child* (each process gets private device/log/pool state) and serve
    until the router hangs up."""
    worker = ShardWorker(shard_id, config)
    try:
        serve(worker, sock)
    finally:
        sock.close()
