"""Deterministic fault injection for simulated devices.

Fault kinds map one-to-one onto the real-world causes the paper and its
cited field studies (Bairavasundaram et al. [2, 3]) describe:

* ``READ_ERROR`` -- a latent sector error: the device reports the read
  failed despite retries and ECC.
* ``BIT_ROT`` -- silent corruption: the read succeeds but some bits are
  flipped (persistently, modelling media decay).
* ``LOST_WRITE`` -- the device acknowledges a write but never applies
  it; later reads return the stale prior image.  This is the failure in
  the introduction's RAID-5 anecdote and is exactly what the
  page-recovery-index PageLSN cross-check catches.
* ``MISDIRECTED_WRITE`` -- a write lands on the wrong sector, damaging
  two pages at once (one stale, one overwritten with a foreign page).
* ``WEAR_OUT`` -- flash endurance: after a per-sector write budget is
  exhausted, reads of that sector start failing.

All randomness is drawn from a seeded ``random.Random`` so experiments
are reproducible.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    READ_ERROR = "read-error"
    BIT_ROT = "bit-rot"
    LOST_WRITE = "lost-write"
    MISDIRECTED_WRITE = "misdirected-write"
    WEAR_OUT = "wear-out"


@dataclass
class _SectorState:
    """Pending / standing fault state of one physical sector."""

    read_error: bool = False
    rot_bits: int = 0
    rot_nonce: int = 0
    lose_next_writes: int = 0
    misdirect_to: int | None = None
    worn_out: bool = False


@dataclass
class FaultInjector:
    """Programmable fault source keyed by *physical* sector number.

    The device consults the injector on every read and write.  Faults
    can be scheduled explicitly (deterministic single-fault
    experiments) or probabilistically (fleet-scale availability
    experiments), both driven by the same seeded RNG.
    """

    seed: int = 0
    #: per-read probability of a spontaneous latent sector error
    read_error_rate: float = 0.0
    #: per-read probability of spontaneous silent corruption
    bit_rot_rate: float = 0.0
    #: per-write probability that the write is silently lost
    lost_write_rate: float = 0.0
    #: writes a sector endures before wearing out (None = unlimited)
    wear_limit: int | None = None

    _rng: random.Random = field(init=False, repr=False)
    _sectors: dict[int, _SectorState] = field(default_factory=dict, repr=False)
    _write_counts: dict[int, int] = field(default_factory=dict, repr=False)
    injected_log: list[tuple[FaultKind, int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def _state(self, sector: int) -> _SectorState:
        return self._sectors.setdefault(sector, _SectorState())

    # ------------------------------------------------------------------
    # Explicit scheduling
    # ------------------------------------------------------------------
    def inject_read_error(self, sector: int) -> None:
        """All subsequent reads of ``sector`` fail (latent sector error)."""
        self._state(sector).read_error = True
        self.injected_log.append((FaultKind.READ_ERROR, sector))

    def inject_bit_rot(self, sector: int, nbits: int = 3) -> None:
        """Persistently flip ``nbits`` random bits of ``sector``."""
        self._state(sector).rot_bits += nbits
        self.injected_log.append((FaultKind.BIT_ROT, sector))

    def inject_lost_write(self, sector: int, count: int = 1) -> None:
        """The next ``count`` writes to ``sector`` are silently dropped."""
        self._state(sector).lose_next_writes += count
        self.injected_log.append((FaultKind.LOST_WRITE, sector))

    def inject_misdirected_write(self, sector: int, victim: int) -> None:
        """The next write to ``sector`` lands on ``victim`` instead."""
        self._state(sector).misdirect_to = victim
        self.injected_log.append((FaultKind.MISDIRECTED_WRITE, sector))

    def wear_out(self, sector: int) -> None:
        """Immediately mark ``sector`` as worn out."""
        self._state(sector).worn_out = True
        self.injected_log.append((FaultKind.WEAR_OUT, sector))

    def clear(self, sector: int) -> None:
        """Remove all standing faults on ``sector`` (sector remapped)."""
        self._sectors.pop(sector, None)

    def apply_fault(self, kind: FaultKind, sector: int, *,
                    victim: int | None = None, nbits: int = 3,
                    count: int = 1) -> None:
        """Uniform dispatcher from a :class:`FaultKind` to the matching
        ``inject_*`` method, so schedulers can carry fault events as
        plain ``(kind, sector)`` data (the chaos harness's schedulable
        fault hook)."""
        if kind is FaultKind.READ_ERROR:
            self.inject_read_error(sector)
        elif kind is FaultKind.BIT_ROT:
            self.inject_bit_rot(sector, nbits=nbits)
        elif kind is FaultKind.LOST_WRITE:
            self.inject_lost_write(sector, count=count)
        elif kind is FaultKind.MISDIRECTED_WRITE:
            if victim is None:
                raise ValueError("misdirected write needs a victim sector")
            self.inject_misdirected_write(sector, victim)
        elif kind is FaultKind.WEAR_OUT:
            self.wear_out(sector)
        else:  # pragma: no cover - exhaustive over FaultKind
            raise ValueError(f"unknown fault kind {kind!r}")

    # ------------------------------------------------------------------
    # Device hooks
    # ------------------------------------------------------------------
    def before_write(self, sector: int) -> tuple[bool, int]:
        """Consulted by the device before applying a write.

        Returns ``(apply, target_sector)``: whether to apply the write
        at all, and where it should land.
        """
        state = self._sectors.get(sector)
        target = sector
        if state is not None:
            if state.misdirect_to is not None:
                target = state.misdirect_to
                state.misdirect_to = None
                return True, target
            if state.lose_next_writes > 0:
                state.lose_next_writes -= 1
                return False, sector
        if self.lost_write_rate and self._rng.random() < self.lost_write_rate:
            self.injected_log.append((FaultKind.LOST_WRITE, sector))
            return False, sector
        return True, target

    def after_write(self, sector: int) -> None:
        """Account the write for wear tracking."""
        count = self._write_counts.get(sector, 0) + 1
        self._write_counts[sector] = count
        if self.wear_limit is not None and count > self.wear_limit:
            state = self._state(sector)
            if not state.worn_out:
                state.worn_out = True
                self.injected_log.append((FaultKind.WEAR_OUT, sector))

    def on_read(self, sector: int, data: bytearray) -> bool:
        """Consulted by the device on every read.

        Mutates ``data`` in place for silent corruption.  Returns True
        if the read succeeds (possibly with corrupted data) and False
        if the device must report a read error.
        """
        state = self._sectors.get(sector)
        if state is not None:
            if state.worn_out or state.read_error:
                return False
            if state.rot_bits:
                # A flaky sector returns different garbage on each
                # read; the nonce varies the flipped positions while
                # keeping the whole run deterministic.
                self._flip_bits(data, state.rot_bits, sector, state.rot_nonce)
                state.rot_nonce += 1
        if self.read_error_rate and self._rng.random() < self.read_error_rate:
            self.injected_log.append((FaultKind.READ_ERROR, sector))
            # Spontaneous latent sector errors are persistent.
            self._state(sector).read_error = True
            return False
        if self.bit_rot_rate and self._rng.random() < self.bit_rot_rate:
            self.injected_log.append((FaultKind.BIT_ROT, sector))
            state = self._state(sector)
            state.rot_bits += 3
            self._flip_bits(data, 3, sector, state.rot_nonce)
            state.rot_nonce += 1
        return True

    def _flip_bits(self, data: bytearray, nbits: int, sector: int,
                   nonce: int = 0) -> None:
        """Flip ``nbits`` deterministic pseudo-random bits of ``data``."""
        rng = random.Random(f"{self.seed}/{sector}/{nbits}/{nonce}")
        for _ in range(nbits):
            bit = rng.randrange(len(data) * 8)
            data[bit // 8] ^= 1 << (bit % 8)

    def write_count(self, sector: int) -> int:
        return self._write_counts.get(sector, 0)
