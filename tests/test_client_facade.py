"""The public facade: connect() dispatch, Client semantics, taxonomy."""

import pytest

import repro
from repro.errors import (
    ClientClosedError,
    ClientError,
    ConfigError,
    ReproError,
    ShardError,
    ShardUnavailableError,
    TwoPhaseCommitError,
)


class TestConnectDispatch:
    def test_default_is_single_node(self):
        client = repro.connect()
        assert isinstance(client, repro.SingleNodeClient)
        client.close()

    def test_engine_config_builds_single_node(self):
        client = repro.connect(repro.EngineConfig(buffer_capacity=16))
        assert isinstance(client, repro.SingleNodeClient)
        assert client.db.config.buffer_capacity == 16
        client.close()

    def test_shard_config_builds_sharded(self):
        client = repro.connect(repro.ShardConfig(n_shards=2))
        assert isinstance(client, repro.ShardedClient)
        assert client.router.config.n_shards == 2
        client.close()

    def test_wraps_existing_database(self):
        db = repro.Database(repro.EngineConfig())
        tree = db.create_index()
        txn = db.begin()
        tree.insert(txn, b"pre", b"existing")
        db.commit(txn)
        client = repro.connect(db)
        assert client.get(b"pre") == b"existing"
        client.close()
        # The caller keeps ownership: the engine is still usable.
        assert tree.lookup(b"pre") == b"existing"

    def test_replicated_durable_rejected_without_standby_path(self):
        with pytest.raises(ConfigError):
            repro.connect(
                repro.EngineConfig(commit_ack_mode="replicated_durable"))

    def test_unknown_config_type_rejected(self):
        with pytest.raises(ConfigError):
            repro.connect(42)

    def test_config_error_is_also_value_error(self):
        # Call sites that predate the taxonomy catch ValueError.
        with pytest.raises(ValueError):
            repro.connect(object())


class TestClientSemantics:
    @pytest.fixture(params=["single", "sharded"])
    def client(self, request):
        if request.param == "single":
            built = repro.connect()
        else:
            built = repro.connect(repro.ShardConfig(n_shards=3))
        yield built
        built.close()

    def test_txn_commits_on_clean_exit(self, client):
        with client.txn() as t:
            t.put(b"k", b"v")
            assert t.get(b"k") == b"v"
        assert client.get(b"k") == b"v"

    def test_txn_aborts_on_exception(self, client):
        with pytest.raises(RuntimeError):
            with client.txn() as t:
                t.put(b"k", b"v")
                raise RuntimeError("boom")
        assert client.get(b"k") is None

    def test_autocommit_put_get_delete(self, client):
        client.put(b"a", b"1")
        assert client.get(b"a") == b"1"
        assert client.delete(b"a") is True
        assert client.delete(b"a") is False
        assert client.get(b"a") is None

    def test_scan_is_globally_ordered(self, client):
        for i in [5, 1, 9, 3, 7]:
            client.put(b"k%02d" % i, b"v%d" % i)
        keys = [k for k, _ in client.scan()]
        assert keys == sorted(keys)
        assert len(keys) == 5

    def test_scan_range_bounds(self, client):
        for i in range(10):
            client.put(b"k%02d" % i, b"v")
        keys = [k for k, _ in client.scan(b"k03", b"k07")]
        assert keys == [b"k03", b"k04", b"k05", b"k06"]

    def test_delete_inside_txn(self, client):
        client.put(b"gone", b"soon")
        with client.txn() as t:
            assert t.delete(b"gone") is True
        assert client.get(b"gone") is None

    def test_apply_batch(self, client):
        n = client.apply_batch([("put", b"b%02d" % i, b"v%02d" % i)
                                for i in range(8)])
        assert n == 8
        assert client.get(b"b00") == b"v00"
        client.apply_batch([("delete", b"b00")])
        assert client.get(b"b00") is None

    def test_operations_after_close_raise_typed_error(self, client):
        client.close()
        for call in (lambda: client.get(b"k"),
                     lambda: client.put(b"k", b"v"),
                     lambda: client.delete(b"k"),
                     lambda: client.scan(),
                     lambda: client.txn().__enter__()):
            with pytest.raises(ClientClosedError):
                call()

    def test_close_is_idempotent(self, client):
        client.close()
        client.close()

    def test_context_manager_closes(self):
        with repro.connect() as client:
            client.put(b"k", b"v")
        with pytest.raises(ClientClosedError):
            client.get(b"k")


class TestConfigValidation:
    def test_shard_count_floor(self):
        with pytest.raises(ConfigError):
            repro.ShardConfig(n_shards=0)

    def test_unknown_transport(self):
        with pytest.raises(ConfigError):
            repro.ShardConfig(transport="carrier-pigeon")

    def test_replicated_durable_engine_template_rejected(self):
        with pytest.raises(ConfigError):
            repro.ShardConfig(engine=repro.EngineConfig(
                commit_ack_mode="replicated_durable"))

    def test_engine_config_floors(self):
        with pytest.raises(ConfigError):
            repro.EngineConfig(page_size=128)
        with pytest.raises(ConfigError):
            repro.EngineConfig(buffer_capacity=1)
        with pytest.raises(ConfigError):
            repro.EngineConfig(restart_mode="psychic")
        with pytest.raises(ConfigError):
            repro.EngineConfig(log_segment_bytes=64)

    def test_keyword_only_construction(self):
        with pytest.raises(TypeError):
            repro.EngineConfig(4096)  # noqa - positional must fail
        with pytest.raises(TypeError):
            repro.ShardConfig(4)  # noqa - positional must fail

    def test_per_shard_seeds_differ(self):
        config = repro.ShardConfig(n_shards=3, seed=5)
        seeds = {config.shard_engine_config(i).seed for i in range(3)}
        assert len(seeds) == 3

    def test_fleet_misconfig_is_config_error(self):
        from repro.workloads.fleet import ClientFleet
        with pytest.raises(ConfigError):
            ClientFleet(n_clients=0, seed=1, key_space=10)
        with pytest.raises(ConfigError):
            ClientFleet(n_clients=2, seed=1, key_space=0)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ClientClosedError, ClientError)
        assert issubclass(ClientError, ReproError)
        assert issubclass(ShardUnavailableError, ShardError)
        assert issubclass(TwoPhaseCommitError, ShardError)
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_shard_unavailable_carries_shard_id(self):
        err = ShardUnavailableError(3, "partition")
        assert err.shard == 3
        assert "3" in str(err)
