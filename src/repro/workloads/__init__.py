"""Workload generators, the fleet failure model, and the chaos fleet."""

from repro.workloads.fleet import (
    ClientAction,
    ClientFleet,
    FleetModel,
    FleetOutcome,
)
from repro.workloads.generator import KeyValueWorkload, WorkloadSpec

__all__ = [
    "KeyValueWorkload",
    "WorkloadSpec",
    "FleetModel",
    "FleetOutcome",
    "ClientFleet",
    "ClientAction",
]
