"""Epoch-versioned slot routing for the sharded deployment.

PR 8 partitioned keys with an implicit ``crc32 % n_shards`` — a map
frozen at fleet-creation time, so a hot shard stayed hot forever.
This module makes the map explicit and movable: keys hash into a fixed
number of **slots** (``slot_of``, CRC-32 — stable across processes,
never Python's randomized ``hash()``), and a :class:`RoutingTable`
assigns each slot to a shard.  Every assignment change bumps a
monotonically increasing **epoch**; the router makes a cutover durable
by forcing an :class:`repro.shard.twopc.EpochRecord` into the
coordinator log *before* applying it to its table, so a recovering
router replays the exact cutover history (:meth:`RoutingTable.
apply_epochs`) instead of falling back to the fleet-creation map.

The initial assignment, ``slot % n_shards``, makes the routing table
byte-compatible with the old implicit map whenever ``n_shards``
divides ``n_slots`` (the default 64/4 deployment routes every key
exactly as PR 8 did until the first move).
"""

from __future__ import annotations

import zlib

from repro.errors import ConfigError

#: default number of hash slots a fleet's key space is divided into
DEFAULT_SLOTS = 64


def slot_of(key: bytes, n_slots: int) -> int:
    """Stable hash slot of ``key`` (CRC-32 mod the slot count)."""
    return zlib.crc32(key) % n_slots


class RoutingTable:
    """The slot -> shard assignment, versioned by a cutover epoch.

    Epoch 0 is the fleet-creation assignment; every :meth:`move` (or
    replayed :class:`~repro.shard.twopc.EpochRecord`) advances it by
    exactly one.  The table itself is volatile — durability lives in
    the coordinator log's epoch records, which :meth:`apply_epochs`
    replays in order.
    """

    def __init__(self, n_slots: int, n_shards: int) -> None:
        if n_slots < n_shards:
            raise ConfigError(
                f"n_slots ({n_slots}) must be >= n_shards ({n_shards}); "
                f"every shard needs at least one slot to own")
        self.n_slots = n_slots
        self.n_shards = n_shards
        self.epoch = 0
        self._owner = [slot % n_shards for slot in range(n_slots)]

    # -- queries -------------------------------------------------------
    def owner_of(self, slot: int) -> int:
        """The shard currently assigned ``slot``."""
        return self._owner[slot]

    def shard_for(self, key: bytes) -> int:
        """The shard currently serving ``key``."""
        return self._owner[slot_of(key, self.n_slots)]

    def slots_of(self, shard: int) -> tuple[int, ...]:
        """Every slot assigned to ``shard``, ascending."""
        return tuple(slot for slot, owner in enumerate(self._owner)
                     if owner == shard)

    def assignments(self) -> tuple[int, ...]:
        """The full slot -> shard map (index = slot)."""
        return tuple(self._owner)

    # -- mutation ------------------------------------------------------
    def move(self, slot: int, dst: int) -> int:
        """Reassign ``slot`` to ``dst``; returns the new epoch.

        The caller (the router's ``move_slot``) must have forced the
        matching epoch record to the coordinator log *first* — the
        record, not this in-memory flip, is the cutover's commit point.
        """
        if not 0 <= slot < self.n_slots:
            raise ConfigError(f"slot {slot} out of range 0..{self.n_slots - 1}")
        if not 0 <= dst < self.n_shards:
            raise ConfigError(f"shard {dst} out of range 0..{self.n_shards - 1}")
        self._owner[slot] = dst
        self.epoch += 1
        return self.epoch

    def apply_epochs(self, records) -> int:  # noqa: ANN001 - EpochRecords
        """Replay durable cutover records (recovery path).

        Records are applied in epoch order regardless of input order;
        gaps are rejected — a missing epoch means the durable history
        is corrupt, and guessing would let two routers disagree about
        ownership.  Returns the resulting epoch.
        """
        for record in sorted(records, key=lambda r: r.epoch):
            if record.epoch != self.epoch + 1:
                raise ConfigError(
                    f"epoch record {record.epoch} does not follow "
                    f"current epoch {self.epoch}")
            self._owner[record.slot] = record.dst
            self.epoch = record.epoch
        return self.epoch
