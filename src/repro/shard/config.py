"""Configuration of a sharded deployment."""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass

from repro.engine.config import EngineConfig
from repro.errors import ConfigError


@dataclass(kw_only=True)
class ShardConfig:
    """Everything needed to build a :class:`repro.shard.router.
    ShardRouter` (and, through ``repro.connect``, a ``ShardedClient``).

    ``engine`` is the per-shard template: each shard gets a copy with
    its own derived fault-injection seed, so shards never share RNG
    streams.  Keyword-only, like :class:`EngineConfig`, and validated
    the same way — :meth:`validate` raises a typed
    :class:`repro.errors.ConfigError` on incompatible combinations.
    """

    #: number of hash partitions / worker engines (>= 1)
    n_shards: int = 4
    #: ``"inproc"`` — workers live in the router's process behind the
    #: same command protocol (deterministic: the chaos harness and the
    #: differential suite run here); ``"process"`` — each worker is a
    #: forked process behind the length-prefixed socket protocol (real
    #: parallelism: N engines escape the GIL together)
    transport: str = "inproc"
    #: per-shard engine template (``None`` = ``EngineConfig()``)
    engine: EngineConfig | None = None
    #: base seed; shard ``i`` runs with ``seed * 1000 + i``
    seed: int = 0
    #: number of hash slots keys partition into; slots (not keys) are
    #: the unit of online rebalancing.  When ``n_shards`` divides
    #: ``n_slots`` the initial assignment routes every key exactly as
    #: the pre-rebalancing ``crc32 % n_shards`` map did.
    n_slots: int = 64

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ShardConfig":
        """Check the combination; raises :class:`ConfigError`."""
        if self.n_shards < 1:
            raise ConfigError(
                f"n_shards must be at least 1, got {self.n_shards}")
        if self.n_slots < self.n_shards:
            raise ConfigError(
                f"n_slots ({self.n_slots}) must be >= n_shards "
                f"({self.n_shards}); every shard needs a slot to own")
        if self.transport not in ("inproc", "process"):
            raise ConfigError(
                f"transport must be 'inproc' or 'process', "
                f"got {self.transport!r}")
        if (self.transport == "process"
                and "fork" not in multiprocessing.get_all_start_methods()):
            raise ConfigError(
                "transport='process' needs the fork start method; "
                "use transport='inproc' on this platform")
        if self.engine is not None:
            self.engine.validate()
            if self.engine.commit_ack_mode != "local_durable":
                raise ConfigError(
                    "shard workers run standalone — "
                    "commit_ack_mode='replicated_durable' has no standby "
                    "attachment path behind the router")
        return self

    def shard_engine_config(self, shard_id: int) -> EngineConfig:
        """The engine config shard ``shard_id`` boots with."""
        base = self.engine if self.engine is not None else EngineConfig()
        return dataclasses.replace(base, seed=self.seed * 1000 + shard_id)
