"""Media recovery (Section 5.1.3), eager or on demand.

"Whereas system recovery scans the recovery log forward from the last
checkpoint and ensures 'redo' of all logged updates, media recovery
scans forward from the last backup of the failed media and ensures
updates for the failed media only.  Due to the effort of restoring a
backup copy, active transactions touching the failed media are
aborted."

Both restore modes run the same procedure over the same per-page
primitives (shared with restart recovery via
:func:`repro.engine.system_recovery.redo_page_records` and
:func:`~repro.engine.system_recovery.undo_loser`):

1. **analysis** — one indexed sequential scan of the log tail since
   the backup collects each page's record list and the loser set;
2. **registration** — a replacement device is installed and every page
   of the failed device (backup pages plus pages formatted since) is
   registered with a :class:`repro.engine.restore_registry.
   RestoreRegistry`, loser locks re-acquired;
3. **restore** — ``"eager"`` prefetches the backup with one sequential
   read and drains everything before returning (the traditional
   offline restore, now expressed as "drain before open");
   ``"on_demand"`` returns immediately with the database open: pages
   restore on first fix, cold pages by background drain, losers on
   lock conflict or drain.

The expense asymmetry this preserves is the paper's Section-6 point:
eager restore grows with device size, while on-demand restore's
time-to-first-transaction is the analysis scan plus the handful of
pages the first transaction touches
(``benchmarks/test_ext_instant_restore.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.sim.clock import StopWatch
from repro.storage.device import StorageDevice
from repro.storage.faults import FaultInjector
from repro.wal.records import LogRecord, LogRecordKind


@dataclass
class MediaRecoveryReport:
    """Cost breakdown of one media recovery."""

    mode: str = "eager"
    pages_restored: int = 0
    bytes_restored: int = 0
    records_replayed: int = 0
    transactions_rolled_back: int = 0
    analysis_seconds: float = 0.0
    restore_seconds: float = 0.0
    replay_seconds: float = 0.0
    loser_txn_ids: list[int] = field(default_factory=list)
    #: on-demand mode: work registered for lazy completion instead of
    #: being done before the database reopened
    pending_restore_pages: int = 0
    pending_undo_txns: int = 0

    @property
    def total_seconds(self) -> float:
        return self.analysis_seconds + self.restore_seconds + self.replay_seconds


def collect_replay_targets(db, backup_id: int, backup_lsn: int):  # noqa: ANN001
    """Media-recovery analysis: one scan of the tail since the backup.

    Returns ``(att, page_records)``: ``att`` maps each loser
    transaction — uncommitted at the failure, including any losers an
    interrupted on-demand restart still owed — to ``(last_lsn,
    is_system)``, and ``page_records`` holds each page's record list
    in log order (the fallback replay source when a per-page chain
    does not connect).

    The loser set is *seeded* from the active-transaction table of the
    checkpoint the backup was taken under: a transaction whose records
    all precede the backup never appears in the tail scan, yet its
    uncommitted updates sit inside the backup images (the checkpoint
    flushed them) and must be rolled back.  Its commit/abort, had one
    happened, would be in the tail — nothing can finish between the
    backup's own checkpoint and the backup record — so the scan's
    pops keep the seed exact.
    """
    from repro.engine.system_recovery import note_txn_record

    att: dict[int, tuple[int, bool]] = {}
    checkpoint_lsn = db.backup_store.full_backup_checkpoint_lsn(backup_id)
    if checkpoint_lsn is not None and db.log.has_record(checkpoint_lsn):
        master = db.log.record_at(checkpoint_lsn)
        if (master.kind == LogRecordKind.CHECKPOINT_END
                and master.checkpoint is not None):
            for txn_id, last_lsn, is_system in master.checkpoint.active_txns:
                att[txn_id] = (last_lsn, is_system)
    page_records: dict[int, list[LogRecord]] = {}
    for record in db.log_reader.scan_from(backup_lsn):
        note_txn_record(att, record)
        if record.is_page_update and record.page_id >= 0:
            page_records.setdefault(record.page_id, []).append(record)
    return att, page_records


def run_media_recovery(db, backup_id: int,  # noqa: ANN001
                       mode: str | None = None) -> MediaRecoveryReport:
    """Replace the device and rebuild it from backup + log.

    ``mode`` overrides ``config.restore_mode`` for this one recovery:
    ``"eager"`` restores everything before returning; ``"on_demand"``
    registers the work with a :class:`~repro.engine.restore_registry.
    RestoreRegistry` and returns with the database already open (see
    :attr:`Database.restore_registry`, :meth:`Database.drain_restore`,
    :meth:`Database.finish_restore`).
    """
    from repro.engine.restore_registry import RestoreRegistry

    report = MediaRecoveryReport()
    cfg = db.config
    report.mode = mode or cfg.restore_mode
    if report.mode not in ("eager", "on_demand"):
        raise ValueError(f"restore mode must be 'eager' or 'on_demand', "
                         f"got {report.mode!r}")

    # Find the backup's position via the log's backup-record index —
    # an O(1) lookup, not a scan of the whole log.
    backup_lsn = db.log.backup_full_lsn(backup_id)
    if backup_lsn is None:
        raise RecoveryError(f"no log record for full backup {backup_id}")
    if not db.backup_store.has_full_backup(backup_id):
        raise RecoveryError(f"full backup {backup_id} is not retained")

    # Recovery itself may use engine services, and a restore may re-run
    # after a crash interrupted a previous on-demand restore.
    db._crashed = False
    # Pending instant-restart or interrupted-restore work is subsumed:
    # chain replay from the backup covers every deferred redo, and the
    # analysis scan below rediscovers every deferred loser.
    if db.restart_registry is not None:
        db.restart_registry.abandon()
    if db.restore_registry is not None:
        db.restore_registry.abandon()

    # ------------------------------------------------------------------
    # Analysis: the log tail since the backup, one indexed scan.
    # ------------------------------------------------------------------
    with StopWatch(db.clock) as watch:
        att, page_records = collect_replay_targets(db, backup_id, backup_lsn)
        backup_page_lsns = db.backup_store.full_backup_lsns(backup_id)
    report.analysis_seconds = watch.elapsed

    # Prepared (2PC) transactions are in doubt, not losers: they keep
    # their locks and await the coordinator's decision — the same
    # split restart analysis applies (the two must never disagree).
    from repro.engine.system_recovery import register_indoubt, split_indoubt

    att, indoubt = split_indoubt(db, att)
    register_indoubt(db, indoubt)

    # ------------------------------------------------------------------
    # Registration: replacement device + restore registry.
    # ------------------------------------------------------------------
    replacement = StorageDevice(
        f"{db.device.name}'", cfg.page_size, cfg.capacity_pages,
        db.clock, cfg.device_profile, db.stats,
        FaultInjector(seed=cfg.seed + 1),
        proof_read=cfg.proof_read_writes)
    db.device = replacement
    db.catalog.invalidate_volatile()
    db._build_recovery_stack()
    db.pool = db._build_pool(replacement)

    registry = RestoreRegistry(db, backup_id, backup_lsn,
                               set(backup_page_lsns), page_records, att)
    registry.install()
    report.pending_restore_pages = registry.pending_page_count
    report.pending_undo_txns = registry.pending_loser_count
    report.loser_txn_ids = sorted(att)
    db._pending_restore_backup_id = backup_id
    db.stats.bump("media_recoveries")

    if report.mode == "on_demand":
        # Open for traffic: every page is reachable (restored on fix).
        db._media_failed = False
        db.stats.bump("instant_restores")
        db.log.force()
        return report

    # ------------------------------------------------------------------
    # Eager restore: drain everything before opening — one sequential
    # backup read, then the same per-page primitive on-demand uses.
    # The database stays closed (_media_failed) until the drain
    # succeeds; a restore that dies mid-drain must keep refusing
    # traffic on the half-restored device.
    # ------------------------------------------------------------------
    with StopWatch(db.clock) as watch:
        registry.prefetch_images()
    report.restore_seconds = watch.elapsed
    with StopWatch(db.clock) as watch:
        registry.drain_all()
    report.replay_seconds = watch.elapsed
    db._media_failed = False
    report.pages_restored = registry.pages_restored
    report.bytes_restored = registry.bytes_restored
    report.records_replayed = registry.records_replayed
    report.transactions_rolled_back = len(registry.undone_losers)
    report.pending_restore_pages = 0
    report.pending_undo_txns = 0
    return report
