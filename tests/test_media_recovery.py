"""Integration tests: traditional media recovery (Section 5.1.3)."""

import pytest

from repro.engine.database import Database
from repro.errors import MediaFailure, RecoveryError
from tests.conftest import fast_config, key_of, value_of


def loaded(n=200, **overrides):
    db = Database(fast_config(**overrides))
    tree = db.create_index()
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    return db, tree


class TestMediaRecovery:
    def test_restore_plus_replay_recovers_everything(self):
        db, tree = loaded()
        backup_id = db.take_full_backup()
        txn = db.begin()
        for i in range(50):
            tree.update(txn, key_of(i), value_of(i, 1))
        db.commit(txn)
        db.device.fail_device()
        db._media_failed = True
        report = db.recover_media(backup_id)
        tree = db.tree(1)
        for i in range(50):
            assert tree.lookup(key_of(i)) == value_of(i, 1)
        for i in range(50, 200):
            assert tree.lookup(key_of(i)) == value_of(i, 0)
        assert report.pages_restored > 0
        assert report.records_replayed >= 50

    def test_pages_created_after_backup_replayed_from_format(self):
        db, tree = loaded()
        backup_id = db.take_full_backup()
        txn = db.begin()
        for i in range(200, 400):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db._media_failed = True
        db.recover_media(backup_id)
        tree = db.tree(1)
        assert tree.count() == 400
        from repro.btree.verify import verify_tree

        assert verify_tree(tree).ok

    def test_active_transactions_aborted_and_rolled_back(self):
        """'Active transactions touching the failed media are aborted.'"""
        db, tree = loaded()
        backup_id = db.take_full_backup()
        txn = db.begin()
        tree.update(txn, key_of(0), b"never-committed")
        # Force the log so the uncommitted update survives to replay.
        db.log.force()
        db._media_failed = True
        report = db.recover_media(backup_id)
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert report.transactions_rolled_back == 1

    def test_unknown_backup_rejected(self):
        db, _tree = loaded()
        db._media_failed = True
        with pytest.raises(RecoveryError):
            db.recover_media(999)

    def test_replacement_device_is_fresh(self):
        db, tree = loaded()
        backup_id = db.take_full_backup()
        old_name = db.device.name
        db.device.fail_device()
        db._media_failed = True
        db.recover_media(backup_id)
        assert db.device.name != old_name
        assert not db.device.failed
        assert len(db.device.bad_blocks) == 0

    def test_operations_blocked_until_recovered(self):
        db, tree = loaded()
        db.take_full_backup()
        db.device.fail_device()
        db._media_failed = True
        with pytest.raises(MediaFailure):
            db.begin()

    def test_spf_protection_restored_after_media_recovery(self):
        """The new device is covered by the full backup in the PRI."""
        db, tree = loaded()
        backup_id = db.take_full_backup()
        db._media_failed = True
        db.recover_media(backup_id)
        tree = db.tree(1)
        page, _n = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_read_error(victim)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("single_page_recoveries") == 1


class TestBackupCosts:
    def test_backup_and_restore_charge_simulated_time(self):
        from repro.sim.iomodel import HDD_PROFILE

        db, tree = loaded(device_profile=HDD_PROFILE,
                          log_profile=HDD_PROFILE,
                          backup_profile=HDD_PROFILE)
        t0 = db.clock.now
        backup_id = db.take_full_backup()
        backup_cost = db.clock.now - t0
        assert backup_cost > 0
        db._media_failed = True
        t0 = db.clock.now
        report = db.recover_media(backup_id)
        assert report.total_seconds > 0
        assert report.restore_seconds > 0
