"""The page-retrieval logic of Figure 8.

Reading a page after a buffer fault:

1. read the page from the device — an explicit device error is a
   single-page failure;
2. run the in-page tests (magic, checksum, header and indirection
   vector plausibility, embedded page id);
3. cross-check the PageLSN against the page recovery index (the
   "Gary Smith" check: a valid-looking but *stale* page — a lost
   write — fails here);
4. on any failure: if single-page failures are a supported class, run
   single-page recovery and hand the repaired page to the caller, who
   never learns anything happened beyond a short delay;
5. if recovery is unsupported or itself fails, escalate: "a
   traditional system offers no choice but declare a media failure" —
   and on a single-device node, a media failure *is* a system failure
   (Figure 1).
"""

from __future__ import annotations

from typing import Callable

from repro.core.failure_classes import FailureEvent, FailureOutcome
from repro.core.recovery_index import PartitionedRecoveryIndex, PageRecoveryIndex
from repro.core.single_page import SinglePageRecovery
from repro.errors import (
    FailureClass,
    LogError,
    MediaFailure,
    PageFailureKind,
    RecoveryError,
    SinglePageFailure,
    SystemFailure,
)
from repro.page.page import Page, PageType
from repro.page.slotted import SlottedPage
from repro.sim.clock import SimClock
from repro.sim.stats import Stats
from repro.storage.device import DeviceReadError, StorageDevice

#: Page types whose body is a slotted area (eligible for indirection-
#: vector plausibility analysis).  Recovery-index pages hold raw
#: serialized chunks, not slotted records, so they get only the
#: header-level checks.
_SLOTTED_TYPES = frozenset({
    PageType.METADATA, PageType.BTREE_BRANCH, PageType.BTREE_LEAF,
    PageType.HEAP,
})


class RecoveryManager:
    """Implements Figure 8; used as the buffer pool's page fetcher."""

    def __init__(self, device: StorageDevice,
                 pri: PageRecoveryIndex | PartitionedRecoveryIndex,
                 single_page: SinglePageRecovery | None,
                 clock: SimClock, stats: Stats,
                 single_device_node: bool = False,
                 on_media_failure: Callable[[MediaFailure], None] | None = None,
                 pri_lsn_check: bool = True) -> None:
        self.device = device
        self.pri = pri
        self.single_page = single_page
        self.clock = clock
        self.stats = stats
        self.single_device_node = single_device_node
        self.on_media_failure = on_media_failure
        self.pri_lsn_check = pri_lsn_check
        self.events: list[FailureEvent] = []

    @property
    def spf_supported(self) -> bool:
        return self.single_page is not None

    # ------------------------------------------------------------------
    # The read path
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: int) -> Page:
        """Read + verify a page; recover or escalate on failure."""
        try:
            page = self._read_and_verify(page_id)
            self.stats.bump("pages_fetched_clean")
            return page
        except SinglePageFailure as failure:
            return self.handle_failure(failure)

    def _read_and_verify(self, page_id: int) -> Page:
        try:
            raw = self.device.read(page_id)
        except DeviceReadError as exc:
            raise SinglePageFailure(
                page_id, PageFailureKind.DEVICE_READ_ERROR, str(exc)) from exc
        page = Page(self.device.page_size, raw)
        # In-page tests: magic, checksum, header plausibility, page id.
        page.verify(expected_page_id=page_id)
        # Indirection-vector analysis for slotted page types.
        if page.page_type in _SLOTTED_TYPES:
            SlottedPage(page).check_plausible()
        # PageLSN cross-check against the page recovery index.
        self._check_page_lsn(page_id, page)
        return page

    def _check_page_lsn(self, page_id: int, page: Page) -> None:
        if not self.pri_lsn_check:
            return
        expected = self.pri.expected_page_lsn(page_id)
        if expected is None:
            return
        actual = page.page_lsn
        if actual < expected:
            # The device returned an older version: a lost write that
            # every in-page test is structurally unable to catch.
            raise SinglePageFailure(
                page_id, PageFailureKind.STALE_LSN,
                f"PageLSN {actual} older than recovery index's {expected}")
        if actual > expected:
            # The page is newer than the index believes — a PRI update
            # was lost (e.g. in a crash).  The page itself is fine;
            # repair the index (Figure 12's reconciliation, applied on
            # the read path).
            self.pri.record_write(page_id, actual)
            self.stats.bump("pri_repaired_on_read")

    def roll_forward_stale(self, page: Page) -> list | None:
        """Chain-forward redo of a stale-but-valid page (instant restart).

        Returns the applied records, or ``None`` when the roll-forward
        is unsupported (no single-page machinery) or the chain does not
        connect to the page's current state — the caller then falls
        back to its own record list or to full Figure-10 recovery.
        """
        if self.single_page is None:
            return None
        try:
            return self.single_page.roll_forward(page)
        except (RecoveryError, LogError):
            self.stats.bump("chain_forward_fallbacks")
            return None

    # ------------------------------------------------------------------
    # Failure handling and escalation (Figures 1 and 8)
    # ------------------------------------------------------------------
    def handle_failure(self, failure: SinglePageFailure) -> Page:
        """Dispatch a detected single-page failure.

        Returns the recovered page, or raises :class:`MediaFailure` /
        :class:`SystemFailure` after recording the escalation.
        """
        self.stats.bump("page_failures_detected")
        if self.single_page is not None:
            try:
                start = self.clock.now
                page, result = self.single_page.recover(failure)
                self.events.append(FailureEvent(
                    page_id=failure.page_id,
                    detected_by=failure.kind.value,
                    outcome=FailureOutcome.RECOVERED_IN_PLACE,
                    failure_class=FailureClass.SINGLE_PAGE,
                    transactions_aborted=0,
                    pages_unavailable=0,
                    downtime_seconds=self.clock.now - start,
                    detail=f"{result.records_applied} log records applied, "
                           f"{result.total_random_ios} random I/Os",
                ))
                return page
            except RecoveryError as exc:
                self.stats.bump("spf_recovery_failures")
                self._escalate(failure, f"single-page recovery failed: {exc}")
        else:
            self._escalate(failure, "single-page failures unsupported")
        raise AssertionError("unreachable")  # pragma: no cover

    def _escalate(self, failure: SinglePageFailure, reason: str) -> None:
        """Figure 1: page failure -> media failure -> system failure."""
        media = MediaFailure(self.device.name,
                             f"page {failure.page_id}: {reason}")
        self.stats.bump("escalations_to_media")
        if self.on_media_failure is not None:
            self.on_media_failure(media)
        if self.single_device_node:
            self.stats.bump("escalations_to_system")
            self.events.append(FailureEvent(
                page_id=failure.page_id,
                detected_by=failure.kind.value,
                outcome=FailureOutcome.ESCALATED_TO_SYSTEM,
                failure_class=FailureClass.SYSTEM,
                pages_unavailable=self.device.capacity_pages,
                detail=reason,
            ))
            raise SystemFailure(
                f"media failure on only device '{self.device.name}': "
                f"{reason}") from media
        self.events.append(FailureEvent(
            page_id=failure.page_id,
            detected_by=failure.kind.value,
            outcome=FailureOutcome.ESCALATED_TO_MEDIA,
            failure_class=FailureClass.MEDIA,
            pages_unavailable=self.device.capacity_pages,
            detail=reason,
        ))
        raise media
