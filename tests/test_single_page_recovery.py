"""Integration tests: single-page recovery (Figures 8, 9, 10).

Every test drives the real engine: inject a fault on the device, touch
the page through the normal read path, and assert that the transaction
sees correct data with no abort — the paper's core promise.
"""

import pytest

from repro.engine.database import Database
from repro.errors import MediaFailure, SystemFailure
from repro.wal.records import BackupRefKind
from tests.conftest import fast_config, key_of, value_of


def loaded(**overrides):
    db = Database(fast_config(**overrides))
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree


def some_leaf(db, tree, i: int = 0) -> int:
    """Page id of the leaf holding key_of(i); leaves the pool cold."""
    page, _node = tree._descend(key_of(i), for_write=False)
    pid = page.page_id
    db.unfix(pid)
    db.evict_everything()
    return pid


class TestRecoveryByFaultKind:
    def test_device_read_error(self):
        db, tree = loaded()
        victim = some_leaf(db, tree)
        db.device.inject_read_error(victim)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("spf[device-read-error]") == 1

    def test_bit_rot(self):
        db, tree = loaded()
        victim = some_leaf(db, tree)
        db.device.inject_bit_rot(victim, nbits=6)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("spf[checksum-mismatch]") == 1

    def test_lost_write(self):
        """The stale-LSN cross-check catches what checksums cannot."""
        db, tree = loaded()
        victim = some_leaf(db, tree)
        db.device.inject_lost_write(victim)
        txn = db.begin()
        tree.update(txn, key_of(0), b"fresh")
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        assert tree.lookup(key_of(0)) == b"fresh"
        assert db.stats.get("spf[stale-lsn]") == 1

    def test_misdirected_write(self):
        """One write damages two pages; both recover independently."""
        db, tree = loaded()
        a = some_leaf(db, tree)
        b = some_leaf(db, tree, 299)
        assert a != b
        db.device.inject_misdirected_write(a, victim_page=b)
        txn = db.begin()
        tree.update(txn, key_of(0), b"redirected")
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        assert tree.lookup(key_of(0)) == b"redirected"
        assert tree.lookup(key_of(299)) == value_of(299, 0)
        assert db.stats.get("single_page_recoveries") >= 1

    def test_flash_wear_out(self):
        db, tree = loaded()
        victim = some_leaf(db, tree)
        db.device.wear_out(victim)
        assert tree.lookup(key_of(0)) == value_of(0, 0)


class TestRecoveryMechanics:
    def test_no_transaction_aborted(self):
        """'It is not even required that any transactions terminate.'"""
        db, tree = loaded()
        victim = some_leaf(db, tree)
        db.device.inject_bit_rot(victim)
        txn = db.begin()
        assert tree.lookup(key_of(0)) == value_of(0, 0)  # mid-transaction
        tree.update(txn, key_of(1), b"still-works")
        db.commit(txn)
        assert db.stats.get("txns_aborted") == 0
        assert db.stats.get("txns_killed_by_media_failure") == 0

    def test_failed_location_quarantined(self):
        """Figure 10 / Section 5.2.3: remap + bad-block list."""
        db, tree = loaded()
        victim = some_leaf(db, tree)
        old_sector = db.device.sector_of(victim)
        db.device.inject_read_error(victim)
        tree.lookup(key_of(0))
        assert db.device.sector_of(victim) != old_sector
        assert old_sector in db.device.bad_blocks

    def test_failed_location_never_a_backup(self):
        """'The failed page must not be recorded as a backup page.'"""
        db, tree = loaded()
        victim = some_leaf(db, tree)
        db.device.inject_bit_rot(victim)
        tree.lookup(key_of(0))
        entry = db.pri.lookup(victim)
        # The backup ref predates the failure (format record or copy),
        # never the failed device location.
        assert entry.backup_ref.kind in (BackupRefKind.FORMAT_RECORD,
                                         BackupRefKind.PAGE_COPY,
                                         BackupRefKind.LOG_IMAGE,
                                         BackupRefKind.FULL_BACKUP)

    def test_chain_replay_applies_in_order(self):
        """The LIFO stack of Figure 10: records replay oldest-first.

        With the backup policy disabled, the only backup is the page's
        formatting record, so recovery must walk and replay the entire
        per-page chain.
        """
        from repro.core.backup import BackupPolicy

        db, tree = loaded(backup_policy=BackupPolicy.disabled())
        victim = some_leaf(db, tree)
        db.device.inject_read_error(victim)
        tree.lookup(key_of(0))
        result = db.single_page.history[-1]
        assert result.applied_lsns == sorted(result.applied_lsns)
        assert result.records_applied > 0

    def test_fresh_backup_needs_no_chain_replay(self):
        """A page whose backup is current recovers with zero log
        records applied — one backup fetch suffices."""
        db, tree = loaded()  # policy took copies at flush time
        victim = some_leaf(db, tree)
        db.device.inject_read_error(victim)
        tree.lookup(key_of(0))
        result = db.single_page.history[-1]
        assert result.records_applied == 0
        assert result.backup_fetches == 1

    def test_recovered_page_is_bytewise_current(self):
        db, tree = loaded()
        victim = some_leaf(db, tree)
        before = bytes(db.device.raw_image(victim))
        db.device.inject_read_error(victim)
        tree.lookup(key_of(0))
        db.evict_everything()
        after = bytes(db.device.raw_image(victim))
        assert after == before

    def test_repeated_failures_on_same_page(self):
        db, tree = loaded()
        victim = some_leaf(db, tree)
        for round_no in range(3):
            db.evict_everything()
            db.device.inject_read_error(victim)
            assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("single_page_recoveries") == 3
        assert len(db.device.bad_blocks) >= 3

    def test_multiple_pages_fail_together(self):
        """Section 5.2: 'perfectly possible that multiple pages fail'."""
        db, tree = loaded()
        pages = {some_leaf(db, tree, i) for i in (0, 150, 299)}
        for pid in pages:
            db.device.inject_read_error(pid)
        for i in range(300):
            assert tree.lookup(key_of(i)) == value_of(i, 0)
        assert db.stats.get("single_page_recoveries") == len(pages)

    def test_recovery_uses_backup_policy_copies(self):
        """With page copies taken every N updates, the chain to replay
        stays short (Section 6)."""
        from repro.core.backup import BackupPolicy

        db, tree = loaded(backup_policy=BackupPolicy(every_n_updates=8))
        victim = some_leaf(db, tree)
        # Heavy update traffic on one page; copies cap the chain.
        for round_no in range(6):
            txn = db.begin()
            for i in range(10):
                tree.update(txn, key_of(i), value_of(i, round_no + 1))
            db.commit(txn)
            db.flush_everything()
        db.evict_everything()
        assert db.stats.get("page_copies_taken") > 0
        db.device.inject_read_error(victim)
        tree.lookup(key_of(0))
        result = db.single_page.history[-1]
        # Far fewer records than the total update count on that page.
        assert result.records_applied <= 2 * 8 + 4


class TestEscalation:
    def test_no_spf_support_escalates_to_media(self):
        from repro.baselines.media_only import traditional_config

        db = Database(traditional_config(
            capacity_pages=512, buffer_capacity=32,
            device_profile=fast_config().device_profile,
            log_profile=fast_config().log_profile,
            backup_profile=fast_config().backup_profile))
        tree = db.create_index()
        txn = db.begin()
        for i in range(100):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        victim = db.get_root(tree.index_id)
        db.device.inject_bit_rot(victim)
        with pytest.raises(MediaFailure):
            tree.lookup(key_of(0))
        assert db.stats.get("escalations_to_media") == 1

    def test_single_device_node_escalates_to_system(self):
        from repro.baselines.media_only import traditional_config

        cfg = traditional_config(
            single_device_node=True,
            capacity_pages=512, buffer_capacity=32,
            device_profile=fast_config().device_profile,
            log_profile=fast_config().log_profile,
            backup_profile=fast_config().backup_profile)
        db = Database(cfg)
        tree = db.create_index()
        txn = db.begin()
        for i in range(100):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        db.device.inject_bit_rot(db.get_root(tree.index_id))
        with pytest.raises(SystemFailure):
            tree.lookup(key_of(0))
        assert db.stats.get("escalations_to_system") == 1

    def test_media_failure_aborts_active_transactions(self):
        from repro.baselines.media_only import traditional_config

        db = Database(traditional_config(
            capacity_pages=512, buffer_capacity=32,
            device_profile=fast_config().device_profile,
            log_profile=fast_config().log_profile,
            backup_profile=fast_config().backup_profile))
        tree = db.create_index()
        txn = db.begin()
        for i in range(100):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        bystander = db.begin()
        db.device.inject_bit_rot(db.get_root(tree.index_id))
        with pytest.raises(MediaFailure):
            tree.lookup(key_of(0))
        assert db.stats.get("txns_killed_by_media_failure") == 1
        assert bystander.txn_id not in db.tm.active

    def test_spf_engine_escalates_when_recovery_impossible(self):
        """Figure 8: if anything fails, fall back to media recovery."""
        db, tree = loaded()
        victim = some_leaf(db, tree)
        # Sabotage: remove the page's PRI coverage entirely.
        partition = db.pri.partitions[
            db.pri.partition_of_data_page(victim)]
        pos = partition._find_range(victim)
        assert pos is not None
        partition._delete_ranges(pos, pos + 1)
        partition._page_lsns.pop(victim, None)
        db.device.inject_read_error(victim)
        with pytest.raises(MediaFailure):
            tree.lookup(key_of(0))
        assert db.stats.get("spf_recovery_failures") == 1
