"""A page-granular simulated storage device.

The device stores fixed-size pages in numbered *physical sectors* and
exposes *logical page ids* through a translation table, like a flash
translation layer or a disk's defect-management layer.  The
translation layer is what makes the paper's recovery step "the page can
be moved to a new location [and] the old, failed location ...
registered in ... [a] bad block list" (Section 5.2.3) cheap: the engine
calls :meth:`remap` and keeps using the same logical page id.

Writes are optionally *proof-read* ("After writing a page, it is
immediately 'proof-read' and remapped if errors are detected",
Section 2).  Proof-reading catches write-time damage but — exactly as
the paper observes — cannot catch faults that develop later or writes
that were silently lost.

All I/O charges simulated time and bumps shared counters.
"""

from __future__ import annotations

from repro.errors import MediaFailure, StorageError
from repro.sim.clock import SimClock
from repro.sim.iomodel import IOProfile
from repro.sim.stats import Stats
from repro.storage.badblocks import BadBlockList
from repro.storage.faults import FaultInjector
from repro.sync import Mutex


class DeviceReadError(StorageError):
    """The device could not read a sector (latent sector error)."""

    def __init__(self, device_name: str, page_id: int, sector: int) -> None:
        super().__init__(
            f"device '{device_name}': unrecoverable read error on "
            f"page {page_id} (sector {sector})")
        self.device_name = device_name
        self.page_id = page_id
        self.sector = sector


class DeviceWriteError(StorageError):
    """A write could not be completed even after remapping."""


class StorageDevice:
    """Simulated page store with logical-to-physical translation.

    Args:
        name: device name used in error messages and media failures.
        page_size: bytes per page/sector.
        capacity_pages: number of *logical* pages exposed.
        clock: simulated clock charged for every I/O.
        profile: I/O cost model.
        stats: shared counters (``device_reads``, ``device_writes`` ...).
        injector: optional fault source.
        spare_fraction: extra physical sectors reserved for remapping,
            as a fraction of ``capacity_pages``.
        proof_read: verify every write by reading it back, remapping on
            mismatch (write-time bad-block mapping).
    """

    def __init__(self, name: str, page_size: int, capacity_pages: int,
                 clock: SimClock, profile: IOProfile, stats: Stats,
                 injector: FaultInjector | None = None,
                 spare_fraction: float = 0.05,
                 proof_read: bool = False) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.page_size = page_size
        self.capacity_pages = capacity_pages
        self.clock = clock
        self.profile = profile
        self.stats = stats
        self.injector = injector or FaultInjector()
        self.proof_read = proof_read
        spare = max(8, int(capacity_pages * spare_fraction))
        self._num_sectors = capacity_pages + spare
        self._sectors: list[bytes | None] = [None] * self._num_sectors
        # Identity mapping initially; remap() changes individual entries.
        self._l2p: dict[int, int] = {}
        self._next_spare = capacity_pages
        self.bad_blocks = BadBlockList()
        self._failed = False
        self._last_sector_touched = -1
        # Per-device counter names, precomputed: building the f-string
        # on every I/O showed up in profiles of the free-I/O substrate.
        self._reads_key = f"device_reads[{name}]"
        self._writes_key = f"device_writes[{name}]"
        # Serializes page I/O, remapping, and fault application so a
        # concurrently injected fault never interleaves with a read's
        # byte copy (torn pages come from the injector, not from races).
        self._mutex = Mutex()

    # ------------------------------------------------------------------
    # Address translation
    # ------------------------------------------------------------------
    def _check_logical(self, page_id: int) -> None:
        if not 0 <= page_id < self.capacity_pages:
            raise ValueError(
                f"page id {page_id} out of range [0, {self.capacity_pages})")

    def sector_of(self, page_id: int) -> int:
        """Current physical sector of logical page ``page_id``."""
        self._check_logical(page_id)
        return self._l2p.get(page_id, page_id)

    def remap(self, page_id: int, reason: str) -> int:
        """Move ``page_id`` to a fresh spare sector.

        The old sector is quarantined on the bad-block list and any
        standing faults on the new sector are (by construction of the
        spare pool) absent.  Returns the new physical sector.  The
        caller is responsible for re-writing the page contents.
        """
        with self._mutex:
            old = self.sector_of(page_id)
            new = self._allocate_spare()
            self.bad_blocks.add(old, reason, self.clock.now)
            self._l2p[page_id] = new
            self.stats.bump("device_remaps")
            return new

    def _allocate_spare(self) -> int:
        while self._next_spare < self._num_sectors:
            sector = self._next_spare
            self._next_spare += 1
            if sector not in self.bad_blocks:
                return sector
        raise MediaFailure(self.name, "spare sector pool exhausted")

    # ------------------------------------------------------------------
    # Whole-device failure (a traditional media failure)
    # ------------------------------------------------------------------
    def fail_device(self, reason: str = "simulated head crash") -> None:
        """Render the entire device unusable (media failure)."""
        self._failed = True
        self._fail_reason = reason

    @property
    def failed(self) -> bool:
        return self._failed

    def _ensure_alive(self) -> None:
        if self._failed:
            raise MediaFailure(self.name, self._fail_reason)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> bytearray:
        """Read a logical page; raises :class:`DeviceReadError` on LSE.

        Returns the raw bytes — possibly silently corrupted or stale.
        Detection of such corruption is the job of the layer above
        (checksums, plausibility checks, PageLSN cross-check).
        """
        with self._mutex:
            self._ensure_alive()
            sector = self.sector_of(page_id)
            self._charge_read(sector)
            stored = self._sectors[sector]
            if stored is None:
                # Never-written page reads back as zeroes (fresh device).
                data = bytearray(self.page_size)
            else:
                data = bytearray(stored)
            if not self.injector.on_read(sector, data):
                self.stats.bump("device_read_errors")
                raise DeviceReadError(self.name, page_id, sector)
            return data

    def write(self, page_id: int, data: bytes | bytearray,
              sequential: bool = False) -> None:
        """Write a logical page, with optional proof-reading."""
        with self._mutex:
            self._ensure_alive()
            if len(data) != self.page_size:
                raise ValueError(f"write of {len(data)} bytes to "
                                 f"{self.page_size}-byte pages")
            sector = self.sector_of(page_id)
            self._charge_write(sector, sequential)
            apply, target = self.injector.before_write(sector)
            # One immutable snapshot serves both the sector store and
            # the proof-read comparison.
            snapshot = bytes(data)
            if apply:
                self._sectors[target] = snapshot
            self.injector.after_write(sector)
            if self.proof_read:
                self._proof_read(page_id, snapshot)

    def _proof_read(self, page_id: int, expected: bytes) -> None:
        """Read back a just-written page; remap and retry on mismatch.

        Catches write-time damage (including misdirected and lost
        writes that happen *at write time*); per Section 2, a later
        read failure is beyond its reach.
        """
        for _attempt in range(4):
            sector = self.sector_of(page_id)
            self._charge_read(sector)
            check = bytearray(self._sectors[sector] or b"\x00" * self.page_size)
            ok = self.injector.on_read(sector, check)
            if ok and bytes(check) == expected:
                return
            self.stats.bump("proof_read_failures")
            new_sector = self.remap(page_id, "proof-read failure")
            self._charge_write(new_sector, False)
            apply, target = self.injector.before_write(new_sector)
            if apply:
                self._sectors[target] = expected
            self.injector.after_write(new_sector)
        raise DeviceWriteError(
            f"device '{self.name}': page {page_id} unwritable after remaps")

    def _charge_read(self, sector: int) -> None:
        sequential = sector == self._last_sector_touched + 1
        self.clock.advance(self.profile.read_cost(self.page_size, sequential))
        self._last_sector_touched = sector
        self.stats.bump("device_reads")
        self.stats.bump(self._reads_key)

    def _charge_write(self, sector: int, sequential_hint: bool) -> None:
        sequential = sequential_hint or sector == self._last_sector_touched + 1
        self.clock.advance(self.profile.write_cost(self.page_size, sequential))
        self._last_sector_touched = sector
        self.stats.bump("device_writes")
        self.stats.bump(self._writes_key)

    # ------------------------------------------------------------------
    # Fault-injection conveniences (translate logical -> physical)
    # ------------------------------------------------------------------
    def inject_read_error(self, page_id: int) -> None:
        self.injector.inject_read_error(self.sector_of(page_id))

    def inject_bit_rot(self, page_id: int, nbits: int = 3) -> None:
        self.injector.inject_bit_rot(self.sector_of(page_id), nbits)

    def inject_lost_write(self, page_id: int, count: int = 1) -> None:
        self.injector.inject_lost_write(self.sector_of(page_id), count)

    def inject_misdirected_write(self, page_id: int, victim_page: int) -> None:
        self.injector.inject_misdirected_write(
            self.sector_of(page_id), self.sector_of(victim_page))

    def wear_out(self, page_id: int) -> None:
        self.injector.wear_out(self.sector_of(page_id))

    def apply_fault(self, kind, page_id: int,  # noqa: ANN001 - FaultKind
                    victim_page: int | None = None, nbits: int = 3,
                    count: int = 1) -> None:
        """Schedulable fault hook: apply ``kind`` to a *logical* page,
        translating to the current physical sector (and the victim's,
        for misdirected writes)."""
        with self._mutex:
            victim = (None if victim_page is None
                      else self.sector_of(victim_page))
            self.injector.apply_fault(kind, self.sector_of(page_id),
                                      victim=victim, nbits=nbits, count=count)

    # ------------------------------------------------------------------
    # Raw access for composite devices and backups (no fault injection)
    # ------------------------------------------------------------------
    def raw_image(self, page_id: int) -> bytes | None:
        """Current stored bytes of a page, bypassing faults and costs."""
        with self._mutex:
            return self._sectors[self.sector_of(page_id)]

    def size_bytes(self) -> int:
        return self.capacity_pages * self.page_size
