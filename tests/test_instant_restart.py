"""Instant (on-demand) restart: analysis-only recovery, lazy per-page
redo, lazy loser undo, background drain, and the completion watermark.

The eager three-pass restart stays the reference behaviour; these tests
pin down the on-demand state machine:

    crash -> analysis -> OPEN -> {redo page on fix | undo loser on
    conflict | background drain}* -> complete (watermark recorded,
    truncation unblocked)
"""

from __future__ import annotations

import pytest

from repro.btree.verify import verify_tree
from repro.engine.database import Database
from repro.engine.config import EngineConfig
from tests.conftest import fast_config, key_of, value_of


def loaded(n=200, **overrides):
    db = Database(fast_config(**overrides))
    tree = db.create_index()
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    return db, tree


def crashed_with_losers(n=200, **overrides):
    """Committed data + one committed wave + one loser holding locks."""
    db, tree = loaded(n, **overrides)
    db.flush_everything()
    txn = db.begin()
    for i in range(0, 50, 5):
        db.update(tree, key_of(i), b"wave-%d" % i, txn=txn)
    db.commit(txn)
    loser = db.begin()
    for i in (1, 3, 7):
        db.update(tree, key_of(i), b"DOOMED", txn=loser)
    # A later commit's group-commit force hardens the loser's records
    # too, so restart analysis sees it as a genuine loser.
    rider = db.begin()
    db.update(tree, key_of(90), b"rider", txn=rider)
    db.commit(rider)
    db.crash()
    return db


class TestOnDemandRestart:
    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            EngineConfig(restart_mode="lazyish")

    def test_restart_opens_with_pending_work(self):
        db = crashed_with_losers()
        report = db.restart(mode="on_demand")
        assert report.mode == "on_demand"
        assert report.redo_pages_read == 0
        assert report.undo_transactions == 0
        assert report.pending_redo_pages > 0
        assert report.pending_undo_txns == 1
        assert db.restart_pending
        # The database is open: a fresh transaction works immediately.
        tree = db.tree(1)
        db.update(tree, key_of(100), b"first-txn")
        assert tree.lookup(key_of(100)) == b"first-txn"

    def test_lazy_redo_on_first_fix(self):
        db = crashed_with_losers()
        db.restart(mode="on_demand")
        tree = db.tree(1)
        # Reading a committed-but-unflushed key rolls its leaf forward.
        assert tree.lookup(key_of(0)) == b"wave-0"
        assert db.stats.get("lazy_redo_pages") > 0
        assert db.stats.get("lazy_redo_records") > 0

    def test_lazy_undo_on_lock_conflict(self):
        db = crashed_with_losers()
        db.restart(mode="on_demand")
        tree = db.tree(1)
        # key 1 is held by the loser; the conflicting update first rolls
        # the loser back, then proceeds.
        db.update(tree, key_of(1), b"winner")
        assert db.stats.get("lazy_undo_on_conflict") == 1
        assert db.stats.get("lazy_undo_txns") == 1
        assert tree.lookup(key_of(1)) == b"winner"
        # The other doomed keys were restored by the same rollback.
        assert tree.lookup(key_of(3)) == value_of(3, 0)
        assert tree.lookup(key_of(7)) == value_of(7, 0)

    def test_background_drain_with_budgets(self):
        db = crashed_with_losers()
        report = db.restart(mode="on_demand")
        total_pages = report.pending_redo_pages
        pages, losers = db.drain_restart(page_budget=1, loser_budget=0)
        assert (pages, losers) == (1, 0)
        assert db.restart_pending
        pages, losers = db.finish_restart()
        assert pages == total_pages - 1
        assert losers == 1
        assert not db.restart_pending
        assert db.last_restart_completion_lsn is not None
        tree = db.tree(1)
        assert tree.lookup(key_of(1)) == value_of(1, 0)
        assert verify_tree(tree).ok

    def test_watermark_gates_log_truncation(self):
        db = crashed_with_losers()
        db.restart(mode="on_demand")
        registry = db.restart_registry
        bound_pending = db.log_retention_bound()
        assert registry.retention_bound() is not None
        assert bound_pending <= registry.retention_bound()
        db.finish_restart()
        # With the watermark reached the bound may move forward again.
        assert db.log_retention_bound() >= bound_pending

    def test_checkpoint_drains_pending_work(self):
        db = crashed_with_losers()
        db.restart(mode="on_demand")
        assert db.restart_pending
        db.checkpoint()
        assert not db.restart_pending
        tree = db.tree(1)
        assert tree.lookup(key_of(1)) == value_of(1, 0)

    def test_double_crash_while_pending(self):
        db = crashed_with_losers()
        db.restart(mode="on_demand")
        assert db.restart_pending
        db.crash()  # pending work abandoned with the volatile state
        assert db.restart_registry is None
        db.restart(mode="on_demand")
        db.finish_restart()
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == b"wave-0"
        assert tree.lookup(key_of(1)) == value_of(1, 0)
        assert verify_tree(tree).ok

    def test_on_demand_without_spf_machinery(self):
        """No single-page recovery stack: the registry falls back to
        replaying the analysis pass's record lists."""
        from repro.baselines.media_only import traditional_config

        cfg = traditional_config(
            log_completed_writes=True,
            capacity_pages=512, buffer_capacity=32,
            device_profile=fast_config().device_profile,
            log_profile=fast_config().log_profile,
            backup_profile=fast_config().backup_profile)
        db = Database(cfg)
        tree = db.create_index()
        txn = db.begin()
        for i in range(100):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.crash()
        report = db.restart(mode="on_demand")
        assert report.pending_redo_pages > 0
        tree = db.tree(1)
        for i in range(100):
            assert tree.lookup(key_of(i)) == value_of(i, 0)
        db.finish_restart()
        assert not db.restart_pending

    def test_completion_immediate_when_nothing_pending(self):
        db, tree = loaded()
        db.flush_everything()
        db.log.force()
        db.crash()
        report = db.restart(mode="on_demand")
        assert report.pending_redo_pages == 0
        assert report.pending_undo_txns == 0
        assert not db.restart_pending
        assert db.last_restart_completion_lsn is not None

    def test_restart_mode_from_config(self):
        db = crashed_with_losers(restart_mode="on_demand")
        report = db.restart()
        assert report.mode == "on_demand"
        assert db.restart_pending
        db.finish_restart()
