"""Length-prefixed message framing for the shard worker protocol.

One message = a 4-byte little-endian length followed by a pickled
payload.  Requests are plain tuples ``(verb, *operands)``; replies are
``("ok", result)`` or ``("err", class_name, message)``.  Errors cross
the process boundary by *name*, not by pickling the exception object —
several taxonomy classes take structured constructor arguments that do
not survive ``pickle``'s default exception reduction, and a worker
bug must never be able to crash the router's unpickler.
"""

from __future__ import annotations

import pickle
import struct

_LEN = struct.Struct("<I")

#: hard cap on one message body; a corrupt length prefix must not make
#: the receiver try to allocate gigabytes
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


def send_msg(sock, obj) -> None:  # noqa: ANN001
    """Serialize ``obj`` and write one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def recv_msg(sock):  # noqa: ANN001, ANN201
    """Read one frame; returns the object, or ``None`` on clean EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ConnectionError(f"oversized rpc frame: {length} bytes")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionError("connection closed mid-frame")
    return pickle.loads(payload)


def _recv_exact(sock, n: int) -> bytes | None:  # noqa: ANN001
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise ConnectionError("connection closed mid-frame")
            return None  # clean EOF between frames
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Error marshalling
# ----------------------------------------------------------------------
def marshal_error(exc: BaseException) -> tuple[str, str]:
    """Flatten an exception into ``(class_name, message)``."""
    return type(exc).__name__, str(exc)


def unmarshal_error(name: str, message: str) -> Exception:
    """Rehydrate a worker-side error into the closest taxonomy class.

    Classes are resolved from :mod:`repro.errors` (and the lock
    manager's conflict types); anything unresolvable — or whose
    constructor wants more than a message — comes back as a
    :class:`repro.errors.ShardError` carrying the original name.
    """
    import repro.errors as errors_mod
    import repro.txn.locks as locks_mod

    for mod in (errors_mod, locks_mod):
        cls = getattr(mod, name, None)
        if (isinstance(cls, type) and issubclass(cls, Exception)):
            try:
                return cls(message)
            except TypeError:
                break
    return errors_mod.ShardError(f"{name}: {message}")
