"""Extension — instant restore: time-to-first-transaction stays flat.

Classic (eager) media recovery pays the whole restore — one sequential
read of the backup plus a write and chain replay per page — before the
database reopens, so its time-to-first-transaction grows linearly with
the size of the failed device.  On-demand restore runs the analysis
scan only (one indexed sequential read of the tail since the backup)
and restores pages on first fix, so its time-to-first-transaction is
the scan plus the handful of pages the first transaction actually
touches — ~constant while the device grows an order of magnitude.

A differential oracle closes the file: the same failure image restored
both ways must be byte-identical (the per-page primitive is shared, so
this is the cheap end of the full matrix in
``tests/test_media_matrix.py``).
"""

from __future__ import annotations

from benchmarks.common import key_of, print_table, value_of
from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import MediaFailure
from repro.sim.iomodel import HDD_PROFILE


def failed_db(n_keys: int) -> tuple[Database, int]:
    """A database that just lost its device, with a full backup and a
    committed update wave (every 4th key) since the backup — so the
    restore must replay per-page chains, not only copy images."""
    db = Database(EngineConfig(
        page_size=4096,
        capacity_pages=8192,
        buffer_capacity=2048,
        device_profile=HDD_PROFILE,
        log_profile=HDD_PROFILE,
        backup_profile=HDD_PROFILE,
        backup_policy=BackupPolicy.disabled(),
        # A compact PRI region keeps the shared constants small
        # relative to the restore work under test (4 pages fit the
        # largest scale's index).
        pri_region_pages_per_partition=4,
    ))
    tree = db.create_index()
    txn = db.begin()
    for i in range(n_keys):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    backup_id = db.take_full_backup()
    txn = db.begin()
    for i in range(0, n_keys, 4):
        tree.update(txn, key_of(i), value_of(i, 1))
    db.commit(txn)
    db.device.fail_device("benchmark head crash")
    db._on_media_failure(MediaFailure(db.device.name, "benchmark"))
    return db, backup_id


def time_to_first_transaction(db: Database, backup_id: int, mode: str):
    """Simulated seconds from 'restore begins' to 'first user
    transaction committed'."""
    start = db.clock.now
    report = db.recover_media(backup_id, mode=mode)
    tree = db.tree(1)
    txn = db.begin()
    db.update(tree, key_of(0), b"first-txn-after-restore", txn=txn)
    db.commit(txn)
    return db.clock.now - start, report


def test_time_to_first_transaction_flat_on_demand(benchmark):
    def run():
        out = []
        for n_keys in (1200, 24000):
            results = {}
            for mode in ("eager", "on_demand"):
                db, backup_id = failed_db(n_keys)
                seconds, report = time_to_first_transaction(
                    db, backup_id, mode)
                assert (db.tree(1).lookup(key_of(0))
                        == b"first-txn-after-restore")
                results[mode] = (seconds, report)
            out.append((n_keys, results))
        return out

    scales = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for n_keys, results in scales:
        eager_s, eager_report = results["eager"]
        lazy_s, lazy_report = results["on_demand"]
        rows.append([n_keys, eager_report.pages_restored, eager_s, lazy_s,
                     lazy_report.pending_restore_pages, eager_s / lazy_s])

    (_, pages_small, eager_small, lazy_small, _, _) = rows[0]
    (_, pages_large, eager_large, lazy_large, _, _) = rows[1]

    # The device grows an order of magnitude...
    assert pages_large >= 5 * pages_small
    # ...eager restore's time-to-first-transaction grows with it...
    assert eager_large >= 5 * eager_small
    # ...while on-demand stays ~flat and beats eager decisively (the
    # gap keeps widening with device size: eager is linear, on-demand
    # pays the analysis scan plus a handful of page restores).
    assert lazy_large <= 2 * lazy_small
    assert lazy_large < eager_large / 3

    print_table(
        "Instant restore: time-to-first-transaction (simulated seconds, "
        "HDD profile)",
        ["keys", "pages restored", "eager TTFT", "on-demand TTFT",
         "pending pages", "speedup"],
        rows)


def test_on_demand_drain_converges_with_traffic(benchmark):
    """The background drain finishes the restore while the system
    serves reads; total committed state matches the eager result."""
    def run():
        db, backup_id = failed_db(1200)
        db.recover_media(backup_id, mode="on_demand")
        tree = db.tree(1)
        drained = 0
        probe = 0
        while db.restore_pending:
            pages, losers = db.drain_restore(page_budget=24, loser_budget=1)
            drained += pages + losers
            expected = (value_of(probe, 1) if probe % 4 == 0
                        else value_of(probe, 0))
            assert tree.lookup(key_of(probe)) == expected
            probe += 37
        return db, drained

    db, drained = benchmark.pedantic(run, rounds=1, iterations=1)
    assert drained > 0
    assert not db.restore_pending
    assert db.last_restore_completion_lsn is not None
    tree = db.tree(1)
    for i in range(0, 1200, 111):
        expected = value_of(i, 1) if i % 4 == 0 else value_of(i, 0)
        assert tree.lookup(key_of(i)) == expected


def restore_both_modes(n_keys: int = 1200) -> tuple[Database, Database]:
    """Restore one failure image both ways (the shared setup of the
    differential oracle, also used by the run_all probe)."""
    import copy

    db, backup_id = failed_db(n_keys)
    eager_db = copy.deepcopy(db)
    lazy_db = copy.deepcopy(db)
    eager_db.recover_media(backup_id, mode="eager")
    lazy_db.recover_media(backup_id, mode="on_demand")
    lazy_db.finish_restore()
    return eager_db, lazy_db


def test_restore_modes_byte_identical(benchmark):
    """The differential oracle on the benchmark workload."""
    from tests.conftest import assert_identical_recovery

    eager_db, lazy_db = benchmark.pedantic(restore_both_modes,
                                           rounds=1, iterations=1)
    assert_identical_recovery(eager_db, lazy_db)
