#!/usr/bin/env python3
"""A burst of page failures, recovered as a coordinated batch.

Section 5.2 notes that multiple pages may fail at once and that their
recovery "might be coordinated, e.g., with respect to access to the
recovery log" — and that in the limit (every page at once) the process
resembles media recovery.  This example stores a B-tree *and* a heap
file (the techniques apply to any storage structure), kills a burst of
pages across both, and compares one-at-a-time recovery against the
coordinated batch.

Run:  python examples/burst_failure_coordination.py
"""

from repro import Database, EngineConfig
from repro.core.backup import BackupPolicy
from repro.core.coordinated import CoordinatedRecovery
from repro.core.single_page import SinglePageRecovery
from repro.errors import PageFailureKind, SinglePageFailure
from repro.sim.iomodel import HDD_PROFILE
from repro.wal.log_reader import LogReader


def build():
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=4096, buffer_capacity=96,
        device_profile=HDD_PROFILE, log_profile=HDD_PROFILE,
        backup_profile=HDD_PROFILE,
        backup_policy=BackupPolicy.disabled()))
    tree = db.create_index()
    heap = db.create_heap()
    txn = db.begin()
    rids = []
    for i in range(600):
        rid = heap.insert(txn, b"document body %06d " % i + b"." * 80)
        tree.insert(txn, b"doc:%06d" % i, rid.encode())
        rids.append(rid)
    db.commit(txn)
    # Interleaved update traffic builds real per-page chains.
    txn = db.begin()
    for v in range(900):
        i = (v * 197) % 600
        heap.update(txn, rids[i], b"document body %06d v%d " % (i, v)
                    + b"." * 70)
        tree.update(txn, b"doc:%06d" % i, rids[i].encode())
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree, heap, rids


def burst_victims(db):
    data_pages = list(range(db.config.data_start, db.allocated_pages()))
    return data_pages[::3]  # every third page dies


def main() -> None:
    print("== one-at-a-time recovery ==")
    db, tree, heap, rids = build()
    victims = burst_victims(db)
    t0 = db.clock.now
    log_pages = 0
    for pid in victims:
        reader = LogReader(db.log, db.clock, db.config.log_profile, db.stats)
        recovery = SinglePageRecovery(db.pri, db.backup_store, reader,
                                      db.device, db.clock, db.stats)
        recovery.recover(SinglePageFailure(
            pid, PageFailureKind.DEVICE_READ_ERROR))
        log_pages += reader.pages_read
    print(f"  {len(victims)} pages, {log_pages} log-page reads, "
          f"{db.clock.now - t0:.2f} sim s")

    print("\n== coordinated batch recovery ==")
    db, tree, heap, rids = build()
    victims = burst_victims(db)
    for pid in victims:
        db.device.inject_read_error(pid)
    coordinator = CoordinatedRecovery(db.pri, db.backup_store, db.log_reader,
                                      db.device, db.clock, db.stats)
    t0 = db.clock.now
    result = coordinator.recover_many(victims)
    print(f"  {result.pages_recovered} pages, {result.log_pages_read} "
          f"log-page reads, {db.clock.now - t0:.2f} sim s")
    print(f"  records replayed: {result.records_applied}")

    # Everything is intact — index and heap alike.
    db.evict_everything()
    from repro.heap.heapfile import RID

    for i in (0, 299, 599):
        rid = RID.decode(tree.lookup(b"doc:%06d" % i))
        assert heap.fetch(rid).startswith(b"document body %06d" % i)
    print("\nall documents readable after the burst; shared log access "
          "is what the paper's 'coordinated' variant buys.")


if __name__ == "__main__":
    main()
