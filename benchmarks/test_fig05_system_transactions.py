"""Figure 5 — user transactions vs system transactions.

The figure's table contrasts the two transaction flavours; the decisive
quantitative row is logging overhead: user commits force the log, system
commits do not.  The experiment performs the same number of commits of
comparable work under both flavours and measures log forces and
simulated commit latency; it also verifies the paper's safety argument
by crashing with unforced system commits (contents-neutral, so nothing
is lost).
"""

from __future__ import annotations

from benchmarks.common import key_of, print_table, value_of
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import HDD_PROFILE, NULL_PROFILE


def build(profile):
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=2048, buffer_capacity=128,
        device_profile=NULL_PROFILE, log_profile=profile,
        backup_profile=NULL_PROFILE))
    tree = db.create_index()
    return db, tree


def run_commits(system: bool, n: int = 80):
    """n single-record transactions, as user or system transactions."""
    db, tree = build(HDD_PROFILE)
    root = db.get_root(tree.index_id)
    forces_before = db.stats.get("log_forces")
    t0 = db.clock.now
    for i in range(n):
        txn = db.tm.begin(system=system)
        page = db.fix(root)
        from repro.btree.node import BTreeNode

        node = BTreeNode(page)
        index, _found = node.find(key_of(i))
        db.tm.log_update(txn, page, tree.index_id,
                         node.op_insert(index, key_of(i), value_of(i, 0),
                                        ghost=system))
        db.mark_dirty(root, page.page_lsn)
        db.unfix(root)
        db.tm.commit(txn)
    return {
        "commits": n,
        "log_forces": db.stats.get("log_forces") - forces_before,
        "sim_seconds": db.clock.now - t0,
        "log_bytes": db.log.encoded_size(),
    }


def test_fig05_commit_overhead(benchmark):
    def run():
        return {"user": run_commits(system=False),
                "system": run_commits(system=True)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    user, system = results["user"], results["system"]

    # Every user commit forces the log; system commits force nothing.
    assert user["log_forces"] == user["commits"]
    assert system["log_forces"] == 0
    # Which shows up directly as simulated commit latency.
    assert system["sim_seconds"] < user["sim_seconds"] / 10

    print_table(
        "Figure 5: user vs system transactions — commit overhead "
        "(80 single-record txns)",
        ["flavour", "commits", "log forces", "sim seconds", "log bytes"],
        [["user transaction", user["commits"], user["log_forces"],
          user["sim_seconds"], user["log_bytes"]],
         ["system transaction", system["commits"], system["log_forces"],
          system["sim_seconds"], system["log_bytes"]]])


def test_fig05_lost_system_txn_is_harmless(benchmark):
    """'Should a system failure prevent logging the commit log record
    of a system transaction, the system transaction is lost ... a lost
    system transaction cannot imply any data loss.'"""
    def run():
        db = Database(EngineConfig(
            page_size=4096, capacity_pages=2048, buffer_capacity=128,
            device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
            backup_profile=NULL_PROFILE))
        tree = db.create_index()
        txn = db.begin()
        for i in range(300):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        # Structural work whose system commits are never forced...
        txn = db.begin()
        for i in range(300, 420):
            tree.insert(txn, key_of(i), value_of(i, 0))
        # ... crash before the user commit: user AND system work vanish.
        db.crash()
        db.restart()
        tree = db.tree(1)
        from repro.btree.verify import verify_tree

        assert tree.count() == 300
        assert verify_tree(tree).ok
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig05_bench_system_txn_throughput(benchmark):
    """Wall time per structural system transaction (ghost insert)."""
    db, tree = build(NULL_PROFILE)
    root = db.get_root(tree.index_id)
    counter = [0]

    def one_system_txn():
        from repro.btree.node import BTreeNode

        i = counter[0]
        counter[0] += 1
        txn = db.tm.begin(system=True)
        page = db.fix(root)
        node = BTreeNode(page)
        index, _found = node.find(key_of(i))
        db.tm.log_update(txn, page, tree.index_id,
                         node.op_insert(index, key_of(i), b"", ghost=True))
        db.mark_dirty(root, page.page_lsn)
        db.unfix(root)
        db.tm.commit(txn)

    benchmark.pedantic(one_system_txn, rounds=50, iterations=1)
