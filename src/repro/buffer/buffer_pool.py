"""The buffer pool.

Responsibilities:

* page residency and pinning (fix/unfix);
* dirty tracking with ARIES-style recovery LSNs (``rec_lsn`` = LSN of
  the first update that dirtied the frame since it was last clean) —
  the dirty page table for checkpoints comes from here;
* the write-back protocol of Figure 11:

  1. force the log up to the page's PageLSN (the WAL rule);
  2. seal (checksum) and write the page to the device;
  3. invoke ``on_page_cleaned`` — the engine logs the
     page-recovery-index update there (a system transaction);
  4. only then may the frame be evicted.

The pool never reads the device directly: the engine supplies a
``fetcher`` that performs the read *plus* detection and, if necessary,
single-page recovery (Figure 8's page-retrieval logic).  Detection is
therefore *on the fix path*: any reader — B-tree, heap, baseline,
scrubber — that faults a page in transparently triggers Figure-10
recovery.  The fetcher is also the hook chain the on-demand recovery
registries ride: an unfinished instant *restart* wraps it to read
pending pages redo-ready (plus ``redo_on_fix`` to roll them forward),
and an unfinished instant *restore* wraps it so the first fix of a
not-yet-restored page rebuilds it from backup + per-page chain before
the frame is installed.  For failures detected *after* the fix (cross-page invariant
checks on an already-resident frame), :meth:`repair_failure` closes
the loop: it quarantines the suspect frame, runs the engine-supplied
``repairer`` (Figure 8's dispatch), and re-fixes the repaired page, so
readers never patch pages themselves.
"""

from __future__ import annotations

from typing import Callable

from repro.buffer.eviction import ClockEviction
from repro.errors import BufferPoolError, SinglePageFailure
from repro.page.page import Page
from repro.sim.stats import Stats
from repro.storage.device import StorageDevice
from repro.wal.log_manager import LogManager
from repro.wal.lsn import NULL_LSN


class Frame:
    """One buffer-pool frame."""

    __slots__ = ("page", "dirty", "rec_lsn", "pin_count")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.dirty = False
        self.rec_lsn = NULL_LSN
        self.pin_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Frame(page={self.page.page_id}, dirty={self.dirty}, "
                f"rec_lsn={self.rec_lsn}, pins={self.pin_count})")


class BufferPool:
    """Fixed-capacity page cache over one device."""

    def __init__(self, device: StorageDevice, log: LogManager, stats: Stats,
                 capacity: int,
                 fetcher: Callable[[int], Page] | None = None,
                 on_page_cleaned: Callable[[Page], None] | None = None,
                 on_before_write: Callable[[Page], None] | None = None,
                 repairer: Callable[[SinglePageFailure], Page] | None = None,
                 ) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.device = device
        self.log = log
        self.stats = stats
        self.capacity = capacity
        self.fetcher = fetcher or self._default_fetch
        self.on_page_cleaned = on_page_cleaned
        self.on_before_write = on_before_write
        self.repairer = repairer
        #: instant restart: called with each freshly fetched page; rolls
        #: pending restart redo forward in place and returns the rec_lsn
        #: the new frame must be marked dirty with (None = page clean)
        self.redo_on_fix = None  # Callable[[Page], int | None] | None
        self._frames: dict[int, Frame] = {}
        self._policy = ClockEviction()

    # ------------------------------------------------------------------
    # Fixing
    # ------------------------------------------------------------------
    def fix(self, page_id: int) -> Page:
        """Pin ``page_id`` in the pool, reading it if absent."""
        frame = self._frames.get(page_id)
        if frame is None:
            self.stats.bump("buffer_misses")
            self._make_room()
            page = self.fetcher(page_id)
            rec_lsn = (self.redo_on_fix(page)
                       if self.redo_on_fix is not None else None)
            frame = Frame(page)
            self._frames[page_id] = frame
            self._policy.admitted(page_id)
            if rec_lsn is not None:
                # Stale page rolled forward on fix (instant restart):
                # the frame starts out dirty, like any redone page.
                frame.dirty = True
                frame.rec_lsn = rec_lsn
        else:
            self.stats.bump("buffer_hits")
            self._policy.touched(page_id)
        frame.pin_count += 1
        return frame.page

    def fix_new(self, page: Page) -> Page:
        """Install a freshly formatted (or recovered) page, pinned.

        Used when the page's contents were produced in memory — newly
        allocated pages and pages just rebuilt by single-page recovery
        — so no device read should occur.
        """
        page_id = page.page_id
        if page_id in self._frames:
            raise BufferPoolError(f"page {page_id} already resident")
        self._make_room()
        frame = Frame(page)
        frame.pin_count = 1
        self._frames[page_id] = frame
        self._policy.admitted(page_id)
        return frame.page

    def unfix(self, page_id: int) -> None:
        frame = self._require(page_id)
        if frame.pin_count <= 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pin_count -= 1

    def _require(self, page_id: int) -> Frame:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"page {page_id} not resident")
        return frame

    def _default_fetch(self, page_id: int) -> Page:
        raw = self.device.read(page_id)
        return Page(self.device.page_size, raw)

    # ------------------------------------------------------------------
    # Self-repair (Figure 8, applied to an already-fixed page)
    # ------------------------------------------------------------------
    def repair_failure(self, failure: SinglePageFailure) -> Page:
        """Repair a page that failed verification *after* it was fixed.

        Cross-page checks (fence keys, Section 4.2) can only run once a
        page is resident, so their failures surface on frames the pool
        already holds.  The suspect frame is dropped without write-back
        (its in-memory image is untrustworthy), the repairer runs the
        Figure-8 dispatch — single-page recovery or escalation — and
        the repaired page is re-fixed through the normal read path.
        """
        if self.repairer is None:
            raise failure
        page_id = failure.page_id
        if page_id in self._frames:
            if self._frames[page_id].pin_count > 0:
                raise failure  # pinned elsewhere; cannot repair safely
            # Do not write the corrupt image back.
            self.drop_frame(page_id)
        self.stats.bump("pool_repairs")
        self.repairer(failure)
        return self.fix(page_id)

    # ------------------------------------------------------------------
    # Dirty tracking
    # ------------------------------------------------------------------
    def mark_dirty(self, page_id: int, lsn: int) -> None:
        """Record that log record ``lsn`` dirtied the page."""
        frame = self._require(page_id)
        if not frame.dirty:
            frame.dirty = True
            frame.rec_lsn = lsn
        # If already dirty, rec_lsn stays at the *first* dirtying LSN.

    def is_dirty(self, page_id: int) -> bool:
        return self._require(page_id).dirty

    def dirty_page_table(self) -> dict[int, int]:
        """page id -> rec_lsn for all dirty frames (checkpoint payload)."""
        return {pid: f.rec_lsn for pid, f in self._frames.items() if f.dirty}

    def resident(self, page_id: int) -> bool:
        return page_id in self._frames

    def resident_pages(self) -> list[int]:
        return sorted(self._frames)

    def pin_count(self, page_id: int) -> int:
        frame = self._frames.get(page_id)
        return 0 if frame is None else frame.pin_count

    def page_if_resident(self, page_id: int) -> Page | None:
        frame = self._frames.get(page_id)
        return None if frame is None else frame.page

    # ------------------------------------------------------------------
    # Write-back (Figure 11)
    # ------------------------------------------------------------------
    def flush_page(self, page_id: int) -> bool:
        """Write a dirty page back; returns True if a write happened.

        Implements the WAL rule plus the Figure-11 protocol: after the
        device write, ``on_page_cleaned`` runs (the engine logs the PRI
        update there) *before* the frame becomes evictable.
        """
        frame = self._require(page_id)
        if not frame.dirty:
            return False
        page = frame.page
        # WAL rule: no page goes to disk before its log records do.
        self.log.force(page.page_lsn + 1)
        if self.on_before_write is not None:
            # The engine's page-backup policy hook (Section 6): it may
            # take a page copy and reset the in-page update counter, so
            # it must run before the image is sealed and written.
            self.on_before_write(page)
        page.seal()
        self.device.write(page_id, page.data)
        frame.dirty = False
        frame.rec_lsn = NULL_LSN
        self.stats.bump("pages_written_back")
        if self.on_page_cleaned is not None:
            self.on_page_cleaned(page)
        return True

    def flush_all(self) -> int:
        """Flush every dirty page (checkpoint); returns pages written."""
        written = 0
        for page_id in sorted(self._frames):
            if self.flush_page(page_id):
                written += 1
        return written

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = self._policy.choose_victim(
                lambda pid: self._frames[pid].pin_count == 0)
            if victim is None:
                raise BufferPoolError("all frames pinned; cannot evict")
            self.evict(victim)

    def evict(self, page_id: int) -> None:
        """Flush (if dirty) and drop a frame."""
        frame = self._require(page_id)
        if frame.pin_count > 0:
            raise BufferPoolError(f"cannot evict pinned page {page_id}")
        if frame.dirty:
            self.flush_page(page_id)
        del self._frames[page_id]
        self._policy.removed(page_id)
        self.stats.bump("pages_evicted")

    def drop_frame(self, page_id: int) -> None:
        """Discard one frame *without* writing it back.

        Used when the in-memory image is untrustworthy (a page that
        failed cross-page verification must not be written to disk).
        """
        frame = self._require(page_id)
        if frame.pin_count > 0:
            raise BufferPoolError(f"cannot drop pinned page {page_id}")
        del self._frames[page_id]
        self._policy.removed(page_id)
        self.stats.bump("frames_dropped")

    def drop_all(self) -> None:
        """Discard every frame without writing (crash simulation)."""
        self._frames.clear()
        self._policy = ClockEviction()

    def __len__(self) -> int:
        return len(self._frames)
