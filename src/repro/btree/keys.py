"""Key arithmetic: prefix and suffix truncation.

The paper (Figure 2) notes that "due to suffix truncation (suffix
compression) of separator keys in B-trees [Bayer & Unterauer 1977], the
fence keys may be very small" and that "it might be convenient to
include in one fence key the prefix truncated from all other key values
in the page".  Both optimizations are implemented here:

* :func:`shortest_separator` picks the shortest key that separates a
  left from a right record during a split (suffix truncation);
* :func:`common_prefix` of the two fence keys is the prefix stripped
  from every data key stored in a node (prefix truncation).
"""

from __future__ import annotations


def common_prefix(a: bytes, b: bytes) -> bytes:
    """Longest common prefix of two byte strings."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return a[:i]


def shortest_separator(left: bytes, right: bytes) -> bytes:
    """Shortest key ``s`` with ``left < s <= right``.

    ``left`` is the largest key remaining in the left node and
    ``right`` the smallest key moving to the right node.  The returned
    separator becomes the right node's low fence and the left node's
    (post-adoption) high fence.

    Requires ``left < right``.
    """
    if not left < right:
        raise ValueError(f"separator needs left < right, got {left!r} >= {right!r}")
    prefix = common_prefix(left, right)
    # The shortest separator is the prefix plus the first byte where
    # right exceeds left... but any prefix of right longer than the
    # common prefix already exceeds left.
    candidate = right[:len(prefix) + 1]
    if left < candidate <= right:
        return candidate
    # candidate == left can only happen if right == left + suffix and
    # the extra byte made candidate equal to a prefix... in the byte
    # domain candidate > left always holds when len(prefix) < len(left)
    # is false; fall back to right itself, which always separates.
    return right


def strip_prefix(key: bytes, prefix: bytes) -> bytes:
    """Remove a known prefix (prefix truncation of stored keys)."""
    if not key.startswith(prefix):
        raise ValueError(f"key {key!r} lacks prefix {prefix!r}")
    return key[len(prefix):]


def truncation_savings(keys: list[bytes], prefix: bytes) -> int:
    """Bytes saved by storing ``keys`` without ``prefix`` (reporting)."""
    return sum(len(prefix) for key in keys if key.startswith(prefix))
