"""Unit and property tests: the page recovery index (Figure 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recovery_index import (
    POINT_ENTRY_BYTES,
    PageRecoveryIndex,
    PartitionedRecoveryIndex,
)
from repro.errors import RecoveryError
from repro.wal.records import BackupRef, BackupRefKind


class TestPointEntries:
    def test_lookup_missing_raises(self):
        pri = PageRecoveryIndex()
        with pytest.raises(RecoveryError):
            pri.lookup(5)
        assert not pri.covers(5)

    def test_set_backup_then_lookup(self):
        pri = PageRecoveryIndex()
        pri.set_backup(5, BackupRef.page_copy(100), page_lsn=50, now=1.0)
        entry = pri.lookup(5)
        assert entry.backup_ref == BackupRef(BackupRefKind.PAGE_COPY, 100)
        assert entry.backup_page_lsn == 50
        assert entry.backup_time == 1.0
        assert entry.last_lsn is None
        assert entry.recovery_start_lsn == 50

    def test_set_backup_returns_old_ref_for_freeing(self):
        """Figure 7: the backup-page field exists to free the old copy."""
        pri = PageRecoveryIndex()
        pri.set_backup(5, BackupRef.page_copy(100), 50)
        old = pri.set_backup(5, BackupRef.page_copy(200), 80)
        assert old == BackupRef.page_copy(100)

    def test_record_write_sets_last_lsn(self):
        pri = PageRecoveryIndex()
        pri.set_backup(5, BackupRef.page_copy(100), 50)
        pri.record_write(5, 90)
        entry = pri.lookup(5)
        assert entry.last_lsn == 90
        assert entry.recovery_start_lsn == 90

    def test_new_backup_clears_stale_write_lsn(self):
        """'Valid only if ... updated since the last backup' (Fig. 7)."""
        pri = PageRecoveryIndex()
        pri.set_backup(5, BackupRef.page_copy(100), 50)
        pri.record_write(5, 90)
        pri.set_backup(5, BackupRef.page_copy(200), 90)
        assert pri.lookup(5).last_lsn is None

    def test_newer_write_lsn_survives_older_backup(self):
        pri = PageRecoveryIndex()
        pri.set_backup(5, BackupRef.page_copy(100), 50)
        pri.record_write(5, 90)
        pri.set_backup(5, BackupRef.page_copy(200), 70)  # older image
        assert pri.lookup(5).last_lsn == 90


class TestRangeCompression:
    def test_full_backup_is_one_entry(self):
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 10_000, BackupRef.full_backup(1), 500)
        assert pri.range_count == 1
        assert pri.lookup(0).backup_ref.kind == BackupRefKind.FULL_BACKUP
        assert pri.lookup(9_999).backup_ref.kind == BackupRefKind.FULL_BACKUP
        assert not pri.covers(10_000)

    def test_point_update_splits_range(self):
        """'If only one page within such a range is given a new backup
        page, the range must be split as appropriate.'"""
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 100, BackupRef.full_backup(1), 500)
        pri.set_backup(40, BackupRef.page_copy(7), 600)
        assert pri.range_count == 3
        assert pri.lookup(39).backup_ref.kind == BackupRefKind.FULL_BACKUP
        assert pri.lookup(40).backup_ref == BackupRef.page_copy(7)
        assert pri.lookup(41).backup_ref.kind == BackupRefKind.FULL_BACKUP

    def test_split_at_range_edges(self):
        pri = PageRecoveryIndex()
        pri.set_range_backup(10, 20, BackupRef.full_backup(1), 500)
        pri.set_backup(10, BackupRef.page_copy(1), 600)
        pri.set_backup(19, BackupRef.page_copy(2), 600)
        assert pri.lookup(10).backup_ref == BackupRef.page_copy(1)
        assert pri.lookup(19).backup_ref == BackupRef.page_copy(2)
        assert pri.lookup(15).backup_ref.kind == BackupRefKind.FULL_BACKUP

    def test_new_range_replaces_overlapped_entries(self):
        pri = PageRecoveryIndex()
        for page in range(5):
            pri.set_backup(page, BackupRef.page_copy(page), 100)
        assert pri.range_count == 5
        pri.set_range_backup(0, 5, BackupRef.full_backup(2), 700)
        assert pri.range_count == 1
        assert pri.lookup(3).backup_ref.kind == BackupRefKind.FULL_BACKUP

    def test_range_backup_clears_covered_write_lsns(self):
        pri = PageRecoveryIndex()
        pri.set_backup(3, BackupRef.page_copy(1), 100)
        pri.record_write(3, 200)
        pri.set_range_backup(0, 10, BackupRef.full_backup(1), 300)
        assert pri.lookup(3).last_lsn is None

    def test_partial_overlap_trims(self):
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 100, BackupRef.full_backup(1), 500)
        pri.set_range_backup(50, 150, BackupRef.full_backup(2), 900)
        assert pri.lookup(49).backup_ref == BackupRef.full_backup(1)
        assert pri.lookup(50).backup_ref == BackupRef.full_backup(2)
        assert pri.lookup(149).backup_ref == BackupRef.full_backup(2)

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(st.tuples(st.integers(0, 199), st.integers(1, 1000)),
                        min_size=1, max_size=60))
    def test_point_updates_match_dict_model(self, ops):
        """Range splitting must behave exactly like a per-page dict."""
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 200, BackupRef.full_backup(1), 10)
        model = {page: (BackupRefKind.FULL_BACKUP, 1) for page in range(200)}
        for page, location in ops:
            pri.set_backup(page, BackupRef.page_copy(location), 20)
            model[page] = (BackupRefKind.PAGE_COPY, location)
        for page in range(200):
            entry = pri.lookup(page)
            assert (entry.backup_ref.kind, entry.backup_ref.value) == model[page]
        # Ranges stay sorted and non-overlapping.
        starts, ends = pri._starts, pri._ends
        for i in range(len(starts) - 1):
            assert starts[i] < ends[i] <= starts[i + 1]


class TestExpectedPageLsn:
    """The Gary Smith cross-check (Section 5.2.2)."""

    def test_recorded_write_is_exact(self):
        pri = PageRecoveryIndex()
        pri.set_backup(5, BackupRef.page_copy(1), 50)
        pri.record_write(5, 120)
        assert pri.expected_page_lsn(5) == 120

    def test_point_backup_is_exact(self):
        pri = PageRecoveryIndex()
        pri.set_backup(5, BackupRef.page_copy(1), 50)
        assert pri.expected_page_lsn(5) == 50

    def test_range_backup_gives_no_expectation(self):
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 100, BackupRef.full_backup(1), 500)
        assert pri.expected_page_lsn(5) is None

    def test_unknown_page_gives_no_expectation(self):
        assert PageRecoveryIndex().expected_page_lsn(7) is None


class TestSizeAccounting:
    def test_fresh_restore_is_tiny(self):
        """One range entry regardless of database size (Figure 7)."""
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 1_000_000, BackupRef.full_backup(1), 5)
        assert pri.estimated_bytes() <= 64

    def test_worst_case_16_bytes_per_page(self):
        """'the size ... may reach about 16 bytes per database page'."""
        pri = PageRecoveryIndex()
        n = 500
        for page in range(n):
            pri.set_backup(page, BackupRef.page_copy(page), 10)
        assert pri.estimated_bytes() == n * POINT_ENTRY_BYTES

    def test_write_lsns_counted(self):
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 100, BackupRef.full_backup(1), 5)
        base = pri.estimated_bytes()
        pri.record_write(3, 50)
        assert pri.estimated_bytes() == base + POINT_ENTRY_BYTES


class TestSerialization:
    def test_roundtrip(self):
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 50, BackupRef.full_backup(1), 10, now=2.5)
        pri.set_backup(7, BackupRef.page_copy(99), 30, now=3.5)
        pri.record_write(8, 44)
        clone = PageRecoveryIndex.deserialize(pri.serialize())
        assert clone.lookup(7).backup_ref == BackupRef.page_copy(99)
        assert clone.lookup(7).backup_time == 3.5
        assert clone.lookup(8).last_lsn == 44
        assert clone.range_count == pri.range_count

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(st.tuples(st.integers(0, 99), st.integers(1, 500)),
                        max_size=30))
    def test_roundtrip_property(self, ops):
        pri = PageRecoveryIndex()
        pri.set_range_backup(0, 100, BackupRef.full_backup(1), 10)
        for page, lsn in ops:
            pri.set_backup(page, BackupRef.log_image(lsn), lsn)
            pri.record_write(page, lsn + 5)
        clone = PageRecoveryIndex.deserialize(pri.serialize())
        for page in range(100):
            a, b = pri.lookup(page), clone.lookup(page)
            assert (a.backup_ref, a.backup_page_lsn, a.last_lsn) == (
                b.backup_ref, b.backup_page_lsn, b.last_lsn)


class TestPartitioned:
    def test_self_coverage_invariant(self):
        """No page's entry may live in its own partition (Section 5.2.2)."""
        pri = PartitionedRecoveryIndex()
        for page in range(20):
            pri.set_backup(page, BackupRef.page_copy(page), 10)
        for page in range(20):
            covering = PartitionedRecoveryIndex.partition_of_data_page(page)
            # Partition p's data is *stored* on parity-p pages; the
            # entry for page must be in the opposite parity's partition.
            assert covering == 1 - (page % 2)
            assert pri.partitions[covering].covers(page)

    def test_facade_dispatch(self):
        pri = PartitionedRecoveryIndex()
        pri.set_backup(4, BackupRef.page_copy(1), 10)
        pri.record_write(4, 25)
        assert pri.lookup(4).last_lsn == 25
        assert pri.covers(4)
        assert not pri.covers(5)
        assert pri.expected_page_lsn(4) == 25

    def test_range_visible_through_both_parities(self):
        pri = PartitionedRecoveryIndex()
        pri.set_range_backup(0, 10, BackupRef.full_backup(3), 99)
        assert pri.lookup(4).backup_ref == BackupRef.full_backup(3)
        assert pri.lookup(5).backup_ref == BackupRef.full_backup(3)
