"""Integration tests: crash / restart recovery (Figures 4, 11, 12).

The crash matrix systematically loses different suffixes of the
write-back protocol (data page written vs. PRI update logged) and
asserts that restart repairs every combination — the exact cases of
Figure 12.
"""

import pytest

from repro.engine.database import Database
from repro.wal.records import LogRecordKind
from tests.conftest import fast_config, key_of, value_of


def loaded(n=200, **overrides):
    db = Database(fast_config(**overrides))
    tree = db.create_index()
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    return db, tree


class TestBasicRestart:
    def test_committed_survives_uncommitted_rolls_back(self):
        db, tree = loaded()
        txn_lost = db.begin()
        tree.update(txn_lost, key_of(0), b"UNCOMMITTED")
        txn_kept = db.begin()
        tree.update(txn_kept, key_of(1), b"COMMITTED")
        db.commit(txn_kept)
        db.crash()
        report = db.restart()
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert tree.lookup(key_of(1)) == b"COMMITTED"
        assert report.undo_transactions == 1

    def test_restart_is_idempotent(self):
        """Crashing during/after restart and restarting again is safe."""
        db, tree = loaded()
        txn = db.begin()
        tree.update(txn, key_of(5), b"DOOMED")
        db.crash()
        db.restart()
        db.crash()
        db.restart()
        tree = db.tree(1)
        assert tree.lookup(key_of(5)) == value_of(5, 0)

    def test_all_data_intact_after_restart(self):
        db, tree = loaded(300)
        db.crash()
        db.restart()
        tree = db.tree(1)
        for i in range(300):
            assert tree.lookup(key_of(i)) == value_of(i, 0)
        from repro.btree.verify import verify_tree

        assert verify_tree(tree).ok

    def test_txn_ids_not_reused_after_restart(self):
        db, tree = loaded()
        txn = db.begin()
        old_id = txn.txn_id
        tree.update(txn, key_of(0), b"x")
        db.crash()
        db.restart()
        assert db.begin().txn_id > old_id

    def test_uncommitted_system_txn_rolls_back(self):
        """An unlogged system-transaction commit means the structural
        change never happened; contents are unaffected."""
        db, tree = loaded(100)
        db.flush_everything()
        db.log.force()
        # Start a split but "crash" before its SYS_COMMIT is durable:
        # easiest honest approximation is to crash right after heavy
        # inserts whose structural changes are still in the log buffer.
        txn = db.begin()
        for i in range(100, 160):
            tree.insert(txn, key_of(i), value_of(i, 0))
        # No commit, no force: all of it (including any system commits
        # in the buffer) is lost.
        db.crash()
        db.restart()
        tree = db.tree(1)
        assert tree.count() == 100
        from repro.btree.verify import verify_tree

        assert verify_tree(tree).ok


class TestCheckpoints:
    def test_restart_starts_at_checkpoint(self):
        db, tree = loaded()
        db.checkpoint()
        txn = db.begin()
        tree.update(txn, key_of(0), b"after-ckpt")
        db.commit(txn)
        db.crash()
        report = db.restart()
        # Analysis reads only the tail after the checkpoint.
        total_records = len(db.log.all_records())
        assert report.analysis_records < total_records
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == b"after-ckpt"

    def test_checkpoint_bounds_redo_reads(self):
        db, tree = loaded(300)
        db.crash()
        r1 = db.restart()
        tree = db.tree(1)
        db.checkpoint()
        db.crash()
        r2 = db.restart()
        assert r2.redo_pages_read <= r1.redo_pages_read
        assert r2.redo_pages_read == 0  # everything was flushed

    def test_pri_persisted_and_reloaded(self):
        db, tree = loaded()
        db.checkpoint()
        recorded = {pid: db.pri.recorded_lsn(pid)
                    for pid in range(db.allocated_pages())
                    if db.pri.recorded_lsn(pid) is not None}
        assert recorded
        db.crash()
        db.restart()
        for pid, lsn in recorded.items():
            assert db.pri.recorded_lsn(pid) == lsn

    def test_damaged_pri_page_recovers_from_log_image(self):
        """Single-page recovery applied to the PRI itself (5.2.2)."""
        db, tree = loaded()
        db.checkpoint()
        victim = db.config.pri_region_start  # first PRI page
        db.device.inject_bit_rot(victim, nbits=5)
        db.crash()
        report = db.restart()
        assert report.pri_pages_repaired >= 1
        # And the PRI still protects data pages.
        tree = db.tree(1)
        page, _n = tree._descend(key_of(0), for_write=False)
        data_victim = page.page_id
        db.unfix(data_victim)
        db.evict_everything()
        db.device.inject_read_error(data_victim)
        assert tree.lookup(key_of(0)) == value_of(0, 0)


class TestFigure4RedoOptimization:
    """Logging completed writes lets redo skip already-written pages."""

    def scenario(self, log_completed_writes: bool):
        from repro.baselines.media_only import traditional_config

        cfg = traditional_config(
            log_completed_writes=log_completed_writes,
            capacity_pages=512, buffer_capacity=32,
            device_profile=fast_config().device_profile,
            log_profile=fast_config().log_profile,
            backup_profile=fast_config().backup_profile)
        db = Database(cfg)
        tree = db.create_index()
        txn = db.begin()
        for i in range(200):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        # Write back everything (completed writes).  The write-
        # completion records are forced lazily — here by an explicit
        # force, in production by whatever commit comes next.
        db.flush_everything()
        db.log.force()
        db.crash()
        return db, db.restart()

    def test_with_write_logging_redo_reads_nothing(self):
        _db, report = self.scenario(log_completed_writes=True)
        assert report.pages_trimmed_by_write_logging > 0
        assert report.redo_pages_read == 0

    def test_without_write_logging_redo_reads_everything(self):
        _db, report = self.scenario(log_completed_writes=False)
        assert report.pages_trimmed_by_write_logging == 0
        assert report.redo_pages_read > 0

    def test_figure4_page_63_vs_47(self):
        """The paper's concrete example: page 63 (write not logged)
        needs a redo read; page 47 (write logged) does not."""
        db, tree = loaded()
        db.flush_everything()          # all writes logged (like page 47)
        txn = db.begin()
        tree.update(txn, key_of(0), b"like-page-63")
        db.commit(txn)                 # logged update, page not written
        db.crash()
        report = db.restart()
        assert report.redo_pages_read == 1
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == b"like-page-63"


class TestAnalysisBackfill:
    """Pre-checkpoint backfill: pages whose rec_lsn precedes the master
    checkpoint get their older records spliced in, in LSN order."""

    def test_insert_pos_is_sorted_insertion_point(self):
        import random

        from repro.engine.system_recovery import _insert_pos
        from repro.wal.records import LogRecord, LogRecordKind

        def rec(lsn):
            record = LogRecord(LogRecordKind.UPDATE, page_id=1)
            record.lsn = lsn
            return record

        records = [rec(lsn) for lsn in (10, 20, 30)]
        assert _insert_pos(records, 5) == 0
        assert _insert_pos(records, 15) == 1
        assert _insert_pos(records, 25) == 2
        assert _insert_pos(records, 35) == 3
        assert _insert_pos([], 7) == 0
        # Property: inserting any shuffle keeps the list LSN-sorted.
        rng = random.Random(7)
        lsns = list(range(0, 400, 4))
        rng.shuffle(lsns)
        out: list = []
        for lsn in lsns:
            out.insert(_insert_pos(out, lsn), rec(lsn))
        assert [r.lsn for r in out] == sorted(r.lsn for r in out)

    @pytest.mark.parametrize("mode", ["eager", "on_demand"])
    def test_fuzzy_checkpoint_backfill_recovers(self, mode):
        """A checkpoint whose dirty-page table points below the master
        record (a fuzzy checkpoint that did not flush) forces analysis
        to backfill pre-checkpoint records — and recovery must still
        replay them in order."""
        from repro.wal.records import CheckpointData

        db, tree = loaded()
        db.flush_everything()
        txn = db.begin()
        for i in range(0, 40, 2):
            tree.update(txn, key_of(i), b"pre-ckpt-%d" % i)
        db.commit(txn)
        # Hand-write a fuzzy CHECKPOINT_END: the pool's dirty table as
        # of *now*, without flushing anything first.
        checkpoint = CheckpointData(db.pool.dirty_page_table(), [], {})
        db.log.log_checkpoint_end(checkpoint)
        txn = db.begin()
        for i in range(1, 40, 2):
            tree.update(txn, key_of(i), b"post-ckpt-%d" % i)
        db.commit(txn)
        db.crash()
        report = db.restart(mode=mode)
        assert report.analysis_records < len(db.log.all_records())
        if mode == "on_demand":
            db.finish_restart()
        tree = db.tree(1)
        for i in range(0, 40, 2):
            assert tree.lookup(key_of(i)) == b"pre-ckpt-%d" % i
        for i in range(1, 40, 2):
            assert tree.lookup(key_of(i)) == b"post-ckpt-%d" % i


class TestFigure12CrashMatrix:
    """Lose different suffixes of: update -> write-back -> PRI record."""

    def test_page_written_but_pri_record_lost(self):
        """Figure 12 bottom row: the data page is current on disk but
        the PRI update never made it to the log.  Redo finds the page
        up to date and generates the missing PRI record."""
        db, tree = loaded()
        db.flush_everything()
        db.log.force()
        txn = db.begin()
        tree.update(txn, key_of(3), b"survives")
        db.commit(txn)  # update durable
        # Write the page back, but crash before the PRI-update record
        # (appended, unforced) becomes durable.
        page, _n = tree._descend(key_of(3), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.pool.flush_page(victim)   # device write + unforced PRI record
        assert db.log.durable_lsn < db.log.end_lsn
        db.crash()
        report = db.restart()
        assert report.redo_pages_read >= 1
        assert report.redo_pages_already_current >= 1
        assert report.pri_repair_records >= 1
        tree = db.tree(1)
        assert tree.lookup(key_of(3)) == b"survives"
        # The regenerated PRI record is now in the log.
        kinds = [r.kind for r in db.log.all_records()]
        assert LogRecordKind.PRI_UPDATE in kinds

    def test_update_durable_but_page_never_written(self):
        """Figure 12 top rows: the update record exists, no completed
        write; redo must read the page and re-apply."""
        db, tree = loaded()
        db.flush_everything()
        txn = db.begin()
        tree.update(txn, key_of(4), b"replay-me")
        db.commit(txn)
        db.crash()  # page never written back
        report = db.restart()
        assert report.redo_records_applied >= 1
        tree = db.tree(1)
        assert tree.lookup(key_of(4)) == b"replay-me"

    def test_pri_lsn_correct_after_each_crash_variant(self):
        """After restart, the PRI's expectations match the devices'
        reality — a stale-LSN false positive would break reads."""
        db, tree = loaded()
        db.flush_everything()
        txn = db.begin()
        tree.update(txn, key_of(7), b"v1")
        db.commit(txn)
        page, _n = tree._descend(key_of(7), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.pool.flush_page(victim)
        db.crash()
        db.restart()
        tree = db.tree(1)
        db.evict_everything()
        # A clean read: any PRI/PageLSN disagreement would surface here.
        assert tree.lookup(key_of(7)) == b"v1"
        assert db.stats.get("spf[stale-lsn]") == 0

    def test_crash_between_write_and_eviction_loses_nothing(self):
        """Figure 11's whole point: the ordering write -> log record ->
        eviction leaves no window where data is lost."""
        db, tree = loaded()
        txn = db.begin()
        for i in range(50):
            tree.update(txn, key_of(i), b"wave")
        db.commit(txn)
        # Flush pages (writes + PRI records), then crash WITHOUT
        # evicting; then also test after evicting.
        db.flush_everything()
        db.crash()
        db.restart()
        tree = db.tree(1)
        for i in range(50):
            assert tree.lookup(key_of(i)) == b"wave"

    def test_single_page_recovery_still_works_after_restart(self):
        """The reconstructed PRI must be good enough to drive recovery."""
        db, tree = loaded()
        db.flush_everything()
        db.crash()
        db.restart()
        tree = db.tree(1)
        page, _n = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_read_error(victim)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("single_page_recoveries") == 1
