"""Cost-accounted log reading, including per-page chain walks.

Reading the log during recovery is not free: the paper estimates that
single-page recovery "may take dozens of I/Os in order to read the
required log records" (Section 6).  :class:`LogReader` charges one
random read per *distinct log page* (8 KiB) it touches, with a small
LRU cache so that clustered records cost a single I/O — the same
accounting a real implementation with a log-page buffer would see.

Chain walks are defensive (Section 5.1.4): a record reached by
following ``page_prev_lsn`` pointers must belong to the same page and
strictly precede its successor, otherwise the chain is declared broken
and the caller escalates per Figure 8.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import RecoveryError
from repro.sim.clock import SimClock
from repro.sim.iomodel import IOProfile
from repro.sim.stats import Stats
from repro.sync import Mutex
from repro.wal.lsn import LOG_PAGE_SIZE, NULL_LSN, log_page_of
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord


class LogReader:
    """Reads records from a :class:`LogManager`, charging I/O cost."""

    def __init__(self, log: LogManager, clock: SimClock, profile: IOProfile,
                 stats: Stats, cache_pages: int = 64) -> None:
        self.log = log
        self.clock = clock
        self.profile = profile
        self.stats = stats
        self.cache_pages = cache_pages
        self._cached: OrderedDict[int, None] = OrderedDict()  # LRU, O(1) touch
        self.pages_read = 0
        self.records_read = 0
        # Concurrent readers repairing different pages share this cache.
        self._mutex = Mutex()
        #: cache-coherence watermarks against the log: a crash discards
        #: the unforced tail and re-assigns its LSNs to new records, and
        #: truncation reclaims the head — either way cached log pages
        #: may no longer describe what a read would now return, so the
        #: stale entries must be purged before they suppress a charge.
        self._seen_epoch = log.invalidation_epoch
        self._seen_truncated = log.truncated_below

    def _sync_cache_locked(self) -> None:
        epoch = self.log.invalidation_epoch
        if epoch != self._seen_epoch:
            # Crash: the tail's LSNs were re-assigned; nothing cached
            # can be trusted (a real log-page buffer dies with the
            # process for the same reason).
            self._cached.clear()
            self._seen_epoch = epoch
        truncated = self.log.truncated_below
        if truncated > self._seen_truncated:
            limit_page = log_page_of(truncated)
            for page in [p for p in self._cached if p < limit_page]:
                del self._cached[page]
            self._seen_truncated = truncated

    def _charge(self, lsn: int) -> None:
        with self._mutex:
            self._sync_cache_locked()
            page = log_page_of(lsn)
            if page in self._cached:
                self._cached.move_to_end(page)
                return
            self.clock.advance(self.profile.read_cost(LOG_PAGE_SIZE))
            self.stats.bump("log_page_reads")
            self.pages_read += 1
            self._cached[page] = None
            if len(self._cached) > self.cache_pages:
                self._cached.popitem(last=False)

    def read(self, lsn: int) -> LogRecord:
        """Read one record, charging for its log page if uncached."""
        self._charge(lsn)
        self.records_read += 1
        return self.log.record_at(lsn)

    def chain_start_lsn(self, page_id: int, recorded_lsn: int | None) -> int:
        """Where the chain walk for ``page_id`` starts (Figure 9).

        The newer of the PRI's recorded LSN for the page — which "may
        fall behind" while the page is buffered (Figure 6) — and the
        log's chain-head index, which is exact for retained records.
        With neither (backup current, chain truncated) returns
        ``NULL_LSN`` and the walk is empty.
        """
        start = self.log.page_chain_head(page_id)
        if recorded_lsn is not None:
            start = max(start, recorded_lsn)
        return start

    def walk_page_chain(self, start_lsn: int, stop_after_lsn: int,
                        page_id: int | None = None) -> list[LogRecord]:
        """Walk the per-page chain backwards and return records oldest-first.

        Follows ``page_prev_lsn`` pointers from ``start_lsn`` back while
        record LSNs are greater than ``stop_after_lsn`` (the PageLSN of
        the backup image).  Records are pushed on a stack and popped in
        apply order, implementing the LIFO step of Figure 10.

        The walk verifies chain integrity as it goes: every hop must
        stay on one page — the page being recovered, when the caller
        names it via ``page_id`` — and strictly decrease the LSN.  A
        violation raises :class:`RecoveryError`, which the recovery
        manager escalates to a media failure (Figure 8).
        """
        stack: list[LogRecord] = []
        lsn = start_lsn
        chain_page: int | None = page_id
        while lsn != NULL_LSN and lsn > stop_after_lsn:
            record = self.read(lsn)
            if chain_page is None:
                chain_page = record.page_id
            elif record.page_id != chain_page:
                raise RecoveryError(
                    f"per-page chain broken at LSN {lsn}: record belongs to "
                    f"page {record.page_id}, chain is for page {chain_page}")
            if record.page_prev_lsn >= lsn:
                raise RecoveryError(
                    f"per-page chain broken at LSN {lsn}: prev pointer "
                    f"{record.page_prev_lsn} does not decrease")
            stack.append(record)
            lsn = record.page_prev_lsn
        # Pop the stack: oldest record first.
        return list(reversed(stack))

    def scan_from(self, start_lsn: int) -> list[LogRecord]:
        """Sequential forward scan (analysis / redo passes).

        Sequential scans are charged at streaming cost for the byte
        range, not per-record random reads.  The scan itself is an
        indexed range read over the segment directory, not a filter of
        the whole log.
        """
        span = max(0, self.log.end_lsn - start_lsn)
        self.clock.advance(self.profile.read_cost(span, sequential=True))
        self.stats.bump("log_scans")
        records = self.log.records_from(start_lsn)
        self.records_read += len(records)
        return records
