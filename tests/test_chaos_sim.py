"""The chaos simulation layer: scheduler, clock deadlines, schedulable
faults, per-client fleet streams, the durability oracle, and the
harness itself (reproducibility, campaigns, shrinking, CLI).

The nightly CI job runs :class:`TestNightlyCampaign` (``slow`` marker)
with hundreds of random seeds and uploads failing traces as artifacts;
PR CI runs the fixed-seed smoke below.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.clock import SimClock
from repro.sim.harness import (
    FAILURE_KINDS,
    MODE_COMBOS,
    ChaosConfig,
    DurabilityOracle,
    execute_schedule,
    generate_schedule,
    main,
    run_campaign,
    run_chaos,
    shrink_schedule,
)
from repro.sim.scheduler import Event, EventScheduler
from repro.sim.stats import Stats
from repro.storage.faults import FaultInjector, FaultKind
from repro.workloads.fleet import ClientFleet


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class TestEventScheduler:
    def test_orders_by_time_then_insertion(self):
        scheduler = EventScheduler()
        scheduler.schedule(2.0, "b")
        scheduler.schedule(1.0, "a")
        scheduler.schedule(2.0, "c")  # same time as "b", scheduled later
        assert [e.kind for e in scheduler.drain()] == ["a", "b", "c"]

    def test_replay_preserves_order(self):
        scheduler = EventScheduler()
        for i, kind in enumerate(["x", "y", "z"]):
            scheduler.schedule(float(i), kind, n=i)
        events = list(scheduler.drain())
        replay = EventScheduler()
        for event in reversed(events):  # insertion order must not matter
            replay.schedule_event(event)
        assert [e.kind for e in replay.drain()] == ["x", "y", "z"]

    def test_describe_is_deterministic(self):
        event = Event(3.0, 7, "corrupt", {"rank": 5, "fault": "bit-rot"})
        assert event.describe() == "t=3 corrupt fault='bit-rot' rank=5"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventScheduler().pop()

    def test_seq_collision_orders_by_insertion(self):
        """A replayed event colliding with a live one on (time, seq)
        must order by insertion, not blow up comparing Events."""
        scheduler = EventScheduler()
        live = scheduler.schedule(1.0, "live")  # seq 0
        scheduler.schedule_event(Event(1.0, live.seq, "replayed"))
        assert [e.kind for e in scheduler.drain()] == ["live", "replayed"]


# ----------------------------------------------------------------------
# Clock deadlines (mid-operation interruption)
# ----------------------------------------------------------------------
class TestClockDeadline:
    def test_fires_when_advance_crosses_deadline(self):
        clock = SimClock()
        fired = []
        clock.arm(1.0, lambda: fired.append(clock.now))
        clock.advance(0.5)
        assert not fired and clock.armed
        clock.advance(0.6)  # crosses 1.0 mid-advance
        assert fired == [1.1]
        assert not clock.armed  # single-shot

    def test_callback_may_raise_through_advance(self):
        clock = SimClock()

        def boom() -> None:
            raise RuntimeError("interrupted")

        clock.arm(0.1, boom)
        with pytest.raises(RuntimeError):
            clock.advance(1.0)
        assert not clock.armed

    def test_disarm_cancels(self):
        clock = SimClock()
        clock.arm(1.0, lambda: pytest.fail("should not fire"))
        clock.disarm()
        clock.advance(5.0)

    def test_double_arm_rejected(self):
        clock = SimClock()
        clock.arm(1.0, lambda: None)
        with pytest.raises(ValueError):
            clock.arm(2.0, lambda: None)


class TestStatsGauges:
    def test_note_max_keeps_high_water_mark(self):
        stats = Stats()
        stats.note_max("g", 3)
        stats.note_max("g", 1)
        stats.note_max("g", 9)
        assert stats.get_max("g") == 9
        assert stats.get_max("missing") == 0
        stats.reset()
        assert stats.get_max("g") == 0


# ----------------------------------------------------------------------
# Schedulable faults
# ----------------------------------------------------------------------
class TestApplyFault:
    def test_dispatches_every_kind(self):
        injector = FaultInjector(seed=1)
        injector.apply_fault(FaultKind.READ_ERROR, 1)
        injector.apply_fault(FaultKind.BIT_ROT, 2, nbits=5)
        injector.apply_fault(FaultKind.LOST_WRITE, 3, count=2)
        injector.apply_fault(FaultKind.MISDIRECTED_WRITE, 4, victim=5)
        injector.apply_fault(FaultKind.WEAR_OUT, 6)
        kinds = [kind for kind, _sector in injector.injected_log]
        assert kinds == [FaultKind.READ_ERROR, FaultKind.BIT_ROT,
                         FaultKind.LOST_WRITE, FaultKind.MISDIRECTED_WRITE,
                         FaultKind.WEAR_OUT]

    def test_misdirected_requires_victim(self):
        with pytest.raises(ValueError):
            FaultInjector(seed=1).apply_fault(FaultKind.MISDIRECTED_WRITE, 4)

    def test_device_translates_logical_pages(self, device):
        device.remap(3, "test")  # move page 3 off the identity mapping
        device.apply_fault(FaultKind.READ_ERROR, 3)
        sector = device.sector_of(3)
        assert (FaultKind.READ_ERROR, sector) in device.injector.injected_log
        assert sector != 3


# ----------------------------------------------------------------------
# Fleet streams
# ----------------------------------------------------------------------
class TestClientFleet:
    def test_streams_are_independent_of_interleaving(self):
        """Client 1's k-th action is identical whether or not other
        clients acted in between — the property that makes schedule
        shrinking sound."""
        solo = ClientFleet(3, seed=9, key_space=50)
        solo_actions = [solo.next_action(1) for _ in range(5)]
        mixed = ClientFleet(3, seed=9, key_space=50)
        mixed_actions = []
        for i in range(5):
            mixed.next_action(0)
            mixed_actions.append(mixed.next_action(1))
            mixed.next_action(2)
            mixed.next_action(0)
        assert solo_actions == mixed_actions

    def test_streams_differ_between_clients(self):
        fleet = ClientFleet(2, seed=9, key_space=50)
        assert fleet.next_action(0).ops != fleet.next_action(1).ops

    def test_resumable_cursor(self):
        fleet = ClientFleet(1, seed=9, key_space=50)
        first = fleet.next_action(0)
        assert (first.seq, fleet.actions_emitted(0)) == (0, 1)
        assert fleet.next_action(0).seq == 1

    def test_some_actions_abort(self):
        fleet = ClientFleet(1, seed=9, key_space=50, abort_fraction=0.5)
        fates = {fleet.next_action(0).fate for _ in range(40)}
        assert fates == {"commit", "abort"}


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        config = ChaosConfig(seed=5)
        assert generate_schedule(config) == generate_schedule(config)

    def test_different_seeds_differ(self):
        assert (generate_schedule(ChaosConfig(seed=5))
                != generate_schedule(ChaosConfig(seed=6)))

    def test_all_failure_kinds_guaranteed(self):
        kinds = {e.kind for e in generate_schedule(ChaosConfig(seed=1))}
        assert set(FAILURE_KINDS) <= kinds


class TestHarnessReproducibility:
    def test_trace_bit_identical_across_runs(self):
        config = ChaosConfig(seed=3, n_events=25, shrink=False)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.ok, first.violations
        assert first.trace == second.trace
        assert first.trace_text() == second.trace_text()

    def test_cli_output_bit_identical(self, capsys):
        assert main(["--seed", "3", "--events", "25"]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "3", "--events", "25"]) == 0
        assert capsys.readouterr().out == first
        assert "RESULT PASS" in first

    @pytest.mark.parametrize("restart_mode,restore_mode",
                             [("eager", "eager"),
                              ("on_demand", "on_demand")])
    def test_determinism_survives_concurrency_refactor(
            self, restart_mode, restore_mode):
        """Regression guard for the concurrent-engine refactor: the
        chaos harness stays single-threaded and never arms the
        cross-thread commit barrier, so ``(seed, config)`` must still
        expand to bit-identical traces *and* identical engine-visible
        event counts across two fresh executions — including schedules
        heavy on crashes and mode-specific lazy recovery.  (CI's
        chaos-smoke job diffs two whole CLI runs on top of this.)"""
        config = ChaosConfig(seed=11, n_events=30, shrink=False,
                             restart_mode=restart_mode,
                             restore_mode=restore_mode)
        events = generate_schedule(config)
        first = execute_schedule(config, events)
        second = execute_schedule(config, events)
        assert first.ok, first.violations
        assert first.trace_text() == second.trace_text()
        assert first.event_counts == second.event_counts
        assert first.committed_txns == second.committed_txns
        assert first.recoveries == second.recoveries


class TestDurabilityOracle:
    def test_detects_lost_committed_key(self, db):
        tree = db.create_index()
        oracle = DurabilityOracle()
        txn = db.begin()
        tree.insert(txn, b"k1", b"v1")
        db.commit(txn)
        oracle.commit_applied({b"k1": b"v1"})
        oracle.model[b"k2"] = b"never-written"  # simulate lost commit
        violations = oracle.full_check(db, "test")
        assert any("committed keys lost" in v for v in violations)

    def test_detects_phantom_key(self, db):
        tree = db.create_index()
        oracle = DurabilityOracle()
        txn = db.begin()
        tree.insert(txn, b"k1", b"v1")
        db.commit(txn)  # never reported to the oracle
        violations = oracle.full_check(db, "test")
        assert any("uncommitted keys visible" in v for v in violations)

    def test_uncertain_commit_resolved_from_log(self, db):
        """A commit whose acknowledgement was lost counts iff its
        COMMIT record survived in the durable log."""
        tree = db.create_index()
        oracle = DurabilityOracle()
        txn = db.begin()
        tree.insert(txn, b"ack-lost", b"v")
        db.commit(txn)
        oracle.record_uncertain(txn.txn_id, {b"ack-lost": b"v"})
        oracle.resolve_uncertain(db)
        assert oracle.model == {b"ack-lost": b"v"}
        # And a transaction that never committed resolves to nothing.
        loser = db.begin()
        tree.insert(loser, b"doomed", b"v")
        db.abort(loser)
        oracle.record_uncertain(loser.txn_id, {b"doomed": b"v"})
        oracle.resolve_uncertain(db)
        assert b"doomed" not in oracle.model
        assert not oracle.full_check(db, "test")


class TestChaosSmoke:
    """Fixed-seed smoke campaign: every mode combination, every failure
    kind, oracle clean.  This is the PR-CI chaos gate."""

    @pytest.mark.parametrize("modes", MODE_COMBOS,
                             ids=["/".join(m) for m in MODE_COMBOS])
    def test_schedule_passes_oracle(self, modes):
        restart_mode, restore_mode = modes
        config = ChaosConfig(seed=11, n_events=30,
                             restart_mode=restart_mode,
                             restore_mode=restore_mode, shrink=False)
        result = execute_schedule(config, generate_schedule(config))
        assert result.ok, result.trace_text()
        assert result.recoveries > 0
        assert result.committed_txns > 0

    def test_small_campaign_covers_taxonomy(self):
        campaign = run_campaign(4, base_seed=60, n_events=30,
                                differential=True, shrink=False)
        assert campaign.ok, [f.trace_text() for f in campaign.failures]
        assert campaign.all_failure_kinds_covered()
        assert campaign.all_mode_combos_run()
        summary = campaign.summary()
        assert summary["schedules"] == 4
        assert summary["failed"] == 0


class TestPrefetchChaos:
    """Prefetch events in the chaos mix (PR 9): only when enabled —
    existing seeds must expand bit-identically with prefetch off — and
    fully deterministic when on."""

    PREFETCH_KINDS = {"prefetch_tick", "prefetch_toggle"}

    def test_off_schedules_contain_no_prefetch_events(self):
        """A prefetch-off config (the default) draws from exactly the
        pre-prefetch event mix, so every historical seed expands to a
        bit-identical schedule."""
        for seed in range(6):
            kinds = {e.kind for e in generate_schedule(ChaosConfig(seed=seed))}
            assert not (kinds & self.PREFETCH_KINDS)

    def test_enabled_schedules_mix_prefetch_events(self):
        kinds = {e.kind
                 for e in generate_schedule(ChaosConfig(seed=1, n_events=40,
                                                        prefetch="semantic"))}
        assert "prefetch_tick" in kinds

    def test_prefetch_trace_bit_identical(self):
        config = ChaosConfig(seed=11, n_events=30, shrink=False,
                             restart_mode="on_demand",
                             prefetch="semantic")
        events = generate_schedule(config)
        first = execute_schedule(config, events)
        second = execute_schedule(config, events)
        assert first.ok, first.violations
        assert first.trace_text() == second.trace_text()
        assert first.event_counts == second.event_counts

    def test_fixed_seed_prefetch_campaign_clean(self):
        """The CI chaos-smoke prefetch cell: a fixed-seed campaign with
        prefetch mixed into every schedule passes the durability
        oracle."""
        campaign = run_campaign(3, base_seed=7300, n_events=30,
                                differential=False, shrink=False,
                                prefetch="semantic")
        assert campaign.ok, [f.trace_text() for f in campaign.failures]
        assert campaign.recoveries > 0


class TestShrinking:
    def test_poison_schedule_shrinks_to_the_poison(self):
        """A deliberately divergent event (a commit the oracle never
        hears about) must be detected, and greedy deletion must strip
        the surrounding noise down to (almost) just the poison."""
        config = ChaosConfig(seed=13, n_events=20, shrink=False,
                             differential=False)
        events = [e for e in generate_schedule(config)
                  if e.kind not in FAILURE_KINDS]
        poisoned = events + [Event(999.0, 10_000, "poison")]
        result = execute_schedule(config, poisoned)
        assert not result.ok
        shrunk = shrink_schedule(config, poisoned)
        assert any(e.kind == "poison" for e in shrunk)
        assert len(shrunk) <= 2
        assert not execute_schedule(config, shrunk).ok

    def test_failing_run_attaches_shrunk_schedule(self):
        config = ChaosConfig(seed=13, n_events=12, shrink=True,
                             differential=False)

        # run_chaos generates its own events; emulate by running the
        # poisoned schedule through execute + shrink exactly as the
        # CLI does for a failing seed.
        events = generate_schedule(config)
        poisoned = events + [Event(999.0, 10_000, "poison")]
        result = execute_schedule(config, poisoned)
        assert not result.ok
        assert "poison" in result.event_counts


class TestArtifacts:
    def test_failing_cli_run_writes_trace(self, tmp_path, capsys):
        # No public way to force a failure from the CLI without a bug,
        # so drive the artifact writer directly.
        from repro.sim.harness import _write_artifact

        config = ChaosConfig(seed=99, restart_mode="on_demand")
        result = execute_schedule(config, [Event(1.0, 0, "poison")])
        assert not result.ok
        path = _write_artifact(str(tmp_path), result)
        assert os.path.exists(path)
        content = open(path).read()
        assert "RESULT FAIL" in content
        assert "seed=99" in content


@pytest.mark.slow
class TestNightlyCampaign:
    """Nightly chaos: hundreds of random seeds (base seed printed for
    replay), failing traces written to ``CHAOS_ARTIFACTS``."""

    def test_campaign(self):
        n_schedules = int(os.environ.get("CHAOS_SCHEDULES", "500"))
        base_seed = int(os.environ.get("CHAOS_BASE_SEED", "0"))
        artifacts = os.environ.get("CHAOS_ARTIFACTS", "chaos-traces")
        print(f"chaos nightly: schedules={n_schedules} "
              f"base_seed={base_seed}")
        campaign = run_campaign(n_schedules, base_seed=base_seed,
                                n_events=40)
        for failure in campaign.failures:
            from repro.sim.harness import _write_artifact

            print("failing trace:", _write_artifact(artifacts, failure))
        assert campaign.ok, (
            f"{len(campaign.failures)} of {n_schedules} schedules failed; "
            f"traces in {artifacts}/")
        assert campaign.all_failure_kinds_covered()
        assert campaign.all_mode_combos_run()
