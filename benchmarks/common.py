"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's figures/tables (see
DESIGN.md's per-experiment index).  Each prints the paper-shaped rows
(visible with ``pytest benchmarks/ --benchmark-only -s`` and collected
into EXPERIMENTS.md) and asserts the qualitative *shape* — who wins,
by roughly what factor — since our substrate is a simulator, not the
authors' hardware.

Two kinds of measurements appear side by side:

* **simulated seconds** — charged by the I/O cost models; these are
  the quantities Section 6 reasons about;
* **wall time** — measured by pytest-benchmark on a representative
  kernel, demonstrating the implementation itself is not the
  bottleneck.
"""

from __future__ import annotations

from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import HDD_PROFILE, NULL_PROFILE


def fast_db(n_keys: int = 300, **overrides) -> tuple[Database, object]:
    """Database on free I/O, loaded with ``n_keys`` committed keys."""
    base = dict(
        page_size=4096,
        capacity_pages=2048,
        buffer_capacity=128,
        device_profile=NULL_PROFILE,
        log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE,
        backup_policy=BackupPolicy(every_n_updates=64),
    )
    base.update(overrides)
    db = Database(EngineConfig(**base))
    tree = db.create_index()
    txn = db.begin()
    for i in range(n_keys):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree


def timed_db(n_keys: int = 300, **overrides) -> tuple[Database, object]:
    """Database on realistic disk profiles (simulated seconds matter)."""
    overrides.setdefault("device_profile", HDD_PROFILE)
    overrides.setdefault("log_profile", HDD_PROFILE)
    overrides.setdefault("backup_profile", HDD_PROFILE)
    return fast_db(n_keys, **overrides)


def key_of(i: int) -> bytes:
    return b"k%06d" % i


def value_of(i: int, version: int) -> bytes:
    return b"v%d.%d|" % (i, version) + b"x" * 16


def leaf_of(db: Database, tree, i: int = 0) -> int:  # noqa: ANN001
    """Page id of the leaf holding key i; leaves the buffer pool cold."""
    page, _node = tree._descend(key_of(i), for_write=False)
    pid = page.page_id
    db.unfix(pid)
    db.evict_everything()
    return pid


def print_table(title: str, headers: list[str],
                rows: list[list[object]]) -> None:
    """Print one experiment table in a stable, grep-friendly format."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    print("  " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rows:
        print("  " + " | ".join(_fmt(cell).ljust(w)
                                for cell, w in zip(row, widths)))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:,.2f}"
        return f"{cell:.4f}"
    return str(cell)
