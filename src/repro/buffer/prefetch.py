"""Predictive page prefetching (GrASP-style semantic read-ahead).

The prefetcher learns page-access patterns online from the buffer
pool's demand-fix stream and predicts the pages traffic will touch
next, from three signals:

* **sequential runs** — a fix whose page id extends a recent ±1 run
  (heap scans, key-ordered B-tree sweeps) predicts the next pages in
  that direction;
* **B-tree sibling chains** — a fixed B-tree node whose fence-key
  metadata carries a foster pointer predicts the foster child (the
  sibling the next key-ordered probe descends into);
* **recent-window correlation** — pages that historically follow the
  just-fixed page within a small window (per client stream) are
  predicted regardless of address locality.

Predictions are *queued*, never fetched inline: speculative I/O runs
only at explicit service points (:meth:`service`, reached through
``Database.prefetch_tick`` and budgeted recovery drains), between
operations, with no frame latch held.  That keeps the latch order of
:mod:`repro.buffer.buffer_pool` intact — the pool mutex is never held
across a speculative fetch, and a speculative fix takes exactly the
demand path (placeholder + frame latch), so a racing demand fix of the
same page blocks on the latch instead of re-running recovery — and it
keeps the deterministic chaos simulation bit-reproducible, because
speculative work happens at scheduled events, not behind arbitrary
fixes.

The same model ranks the pending-page sets of the instant-recovery
registries: :meth:`rank` orders a pending set by predicted next
access, so budgeted background drains warm the pages traffic will
actually hit first instead of sweeping in page-id order.  Pages the
model knows nothing about keep their ascending-id order, so with no
signal a ranked drain degenerates to exactly the classic sweep.  The
learned summary deliberately survives :meth:`repro.engine.database.
Database.crash` — it is a few hundred counters, the moral equivalent
of the persisted access maps real warmup systems keep — which is what
lets the first post-crash drains target the pre-crash working set.
Correctness never depends on it: every speculative fix runs the same
recovery-on-first-fix hooks as a demand fix, exactly once.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.page.page import Page
from repro.sim.stats import Stats

#: decay applied to every page's heat per observed access (EWMA-ish:
#: recent traffic dominates, ancient history fades)
_HEAT_DECAY = 0.98
#: cap on tracked correlation edges and heat entries (oldest evicted)
_MAX_TRACKED = 4096


class Prefetcher:
    """Online access-pattern model + bounded speculative fetch queue."""

    def __init__(self, stats: Stats | None = None, mode: str = "semantic",
                 depth: int = 4, window: int = 8,
                 queue_limit: int = 64) -> None:
        if mode not in ("sequential", "semantic"):
            raise ValueError(
                f"prefetcher mode must be 'sequential' or 'semantic', "
                f"got {mode!r}")
        self.stats = stats or Stats()
        self.mode = mode
        self.depth = depth
        self.window = window
        self.queue_limit = queue_limit
        #: recent demand accesses per client stream (stream 0 = the
        #: engine's single-threaded default)
        self._recent: dict[int, deque[int]] = {}
        self._stream = 0
        #: page -> {successor page -> count} within the recent window
        self._succ: OrderedDict[int, dict[int, int]] = OrderedDict()
        #: page -> decayed access heat (insertion-ordered for eviction)
        self._heat: OrderedDict[int, float] = OrderedDict()
        #: page -> foster sibling discovered from fence-key metadata
        self._links: OrderedDict[int, int] = OrderedDict()
        #: predicted pages awaiting a service point, FIFO with dedup
        self._queue: OrderedDict[int, None] = OrderedDict()
        self._ticks = 0
        #: True while service() runs: fixes issued *by* prefetching
        #: (the speculative reads themselves, and bookkeeping reads
        #: like the allocator's metadata lookup behind the pool's page
        #: bound) must not train the model or enqueue new predictions,
        #: or servicing would feed itself forever
        self._servicing = False

    # ------------------------------------------------------------------
    # Learning (called by BufferPool.fix on every demand access)
    # ------------------------------------------------------------------
    def set_stream(self, stream: int) -> None:
        """Select the client stream subsequent accesses belong to."""
        self._stream = stream

    def observe(self, page_id: int, page: Page | None = None) -> None:
        """Learn from one demand access and queue its predictions."""
        if self._servicing:
            return
        self._ticks += 1
        recent = self._recent.setdefault(
            self._stream, deque(maxlen=self.window))

        # Heat: decayed access frequency, the drain-ranking backbone.
        heat = self._heat.pop(page_id, 0.0)
        self._heat[page_id] = heat * _HEAT_DECAY + 1.0
        while len(self._heat) > _MAX_TRACKED:
            self._heat.popitem(last=False)

        if self.mode == "semantic":
            # Correlation: this page follows each page in the window.
            for prev in recent:
                if prev == page_id:
                    continue
                edges = self._succ.get(prev)
                if edges is None:
                    edges = self._succ[prev] = {}
                    while len(self._succ) > _MAX_TRACKED:
                        self._succ.popitem(last=False)
                edges[page_id] = edges.get(page_id, 0) + 1
                if len(edges) > 2 * self.depth:
                    weakest = min(edges, key=lambda p: (edges[p], -p))
                    del edges[weakest]
            if page is not None:
                link = sibling_hint(page)
                if link is not None:
                    self._links.pop(page_id, None)
                    self._links[page_id] = link
                    while len(self._links) > _MAX_TRACKED:
                        self._links.popitem(last=False)

        for candidate in self._predict(page_id, recent):
            self._enqueue(candidate)
        recent.append(page_id)

    def _predict(self, page_id: int, recent: deque[int]) -> list[int]:
        """Ranked next-access candidates for one just-fixed page."""
        candidates: list[int] = []
        # Sequential run, either direction: p follows p-1 (or p-2, to
        # survive interleaved root/branch fixes) -> predict ahead.
        if any(page_id - step in recent for step in (1, 2)):
            candidates.extend(page_id + d for d in range(1, self.depth + 1))
        elif any(page_id + step in recent for step in (1, 2)):
            candidates.extend(page_id - d for d in range(1, self.depth + 1)
                              if page_id - d > 0)
        if self.mode == "semantic":
            link = self._links.get(page_id)
            if link is not None and link not in candidates:
                candidates.append(link)
            edges = self._succ.get(page_id)
            if edges:
                ranked = sorted(edges, key=lambda p: (-edges[p], p))
                candidates.extend(p for p in ranked[:self.depth]
                                  if p not in candidates)
        return candidates[:2 * self.depth]

    def _enqueue(self, page_id: int) -> None:
        if page_id in self._queue:
            return
        if len(self._queue) >= self.queue_limit:
            self._queue.popitem(last=False)  # oldest prediction staled
            self.stats.bump("prefetch_queue_overflow")
        self._queue[page_id] = None

    # ------------------------------------------------------------------
    # Servicing (the only place speculative I/O happens)
    # ------------------------------------------------------------------
    def service(self, pool, budget: int | None = None) -> int:  # noqa: ANN001
        """Issue up to ``budget`` queued fetches through ``pool``.

        Runs between operations with no latch held; every bound check
        (residency, frame headroom, allocated range) is the pool's.
        Returns the number of pages actually fetched.
        """
        issued = 0
        backlog = len(self._queue)  # only what was queued at entry
        self._servicing = True
        try:
            while (self._queue and backlog > 0
                   and (budget is None or issued < budget)):
                backlog -= 1
                page_id, _ = self._queue.popitem(last=False)
                if pool.prefetch(page_id):
                    issued += 1
        finally:
            self._servicing = False
        return issued

    @property
    def queued(self) -> list[int]:
        return list(self._queue)

    # ------------------------------------------------------------------
    # Recovery-drain ranking
    # ------------------------------------------------------------------
    def rank(self, page_ids: list[int]) -> list[int]:
        """Order a pending-page set by predicted next access.

        Score = access heat + adjacency to recently hot pages (the
        sequential front) + correlation from recently hot pages +
        sibling links.  Zero-score pages keep ascending-id order, so
        an unheated model ranks exactly like the classic sweep.
        """
        scores: dict[int, float] = {}
        pending = set(page_ids)
        for page_id, heat in self._heat.items():
            if page_id in pending:
                scores[page_id] = scores.get(page_id, 0.0) + heat
            # Neighbours of hot pages sit on the sequential front.
            for step in range(1, self.depth + 1):
                bonus = heat / (1.0 + step)
                for neighbour in (page_id + step, page_id - step):
                    if neighbour in pending:
                        scores[neighbour] = scores.get(neighbour, 0.0) + bonus
            if self.mode == "semantic":
                link = self._links.get(page_id)
                if link is not None and link in pending:
                    scores[link] = scores.get(link, 0.0) + heat
                edges = self._succ.get(page_id)
                if edges:
                    for succ, count in edges.items():
                        if succ in pending:
                            scores[succ] = (scores.get(succ, 0.0)
                                            + heat * count)
        return sorted(page_ids,
                      key=lambda pid: (-scores.get(pid, 0.0), pid))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """A system failure: in-flight predictions and the per-stream
        windows die with the volatile state; the learned summary (heat,
        correlation, links) survives, like a persisted access map."""
        self._queue.clear()
        self._recent.clear()

    def snapshot(self) -> dict:
        """Introspection for tests and benchmarks."""
        return {
            "mode": self.mode,
            "tracked_heat": len(self._heat),
            "tracked_edges": len(self._succ),
            "tracked_links": len(self._links),
            "queued": len(self._queue),
            "ticks": self._ticks,
        }


def sibling_hint(page: Page) -> int | None:
    """Foster sibling of a B-tree page, from its fence-key metadata.

    Best-effort and read-only: returns ``None`` for non-B-tree pages
    and for anything that fails to parse (the prefetcher must never
    raise on behalf of a speculative hint).  Imported lazily so the
    buffer layer keeps no static dependency on the B-tree layer.
    """
    from repro.btree.node import BTreeNode

    return BTreeNode.peek_foster(page)
