"""A mirrored device pair (RAID-1 style).

Section 2 of the paper observes that "most read operations employ only
a single disk without checking the parity across the disk array" — so a
mirror improves durability but does *not* detect silent corruption on
the copy actually read.  :class:`MirroredDevice` models exactly that:
writes go to both halves; reads come from the primary only, unless the
caller explicitly asks the mirror half for a repair copy.

This is also the substrate for the SQL Server database-mirroring
baseline (``repro.baselines.mirror_repair``).
"""

from __future__ import annotations

from repro.storage.device import DeviceReadError, StorageDevice


class MirroredDevice:
    """Two devices kept in lockstep by the write path."""

    def __init__(self, primary: StorageDevice, mirror: StorageDevice) -> None:
        if primary.page_size != mirror.page_size:
            raise ValueError("mirror halves must share a page size")
        if primary.capacity_pages != mirror.capacity_pages:
            raise ValueError("mirror halves must share a capacity")
        self.primary = primary
        self.mirror = mirror
        self.name = f"{primary.name}+{mirror.name}"
        self.page_size = primary.page_size
        self.capacity_pages = primary.capacity_pages

    def read(self, page_id: int) -> bytearray:
        """Read from the primary half only (no cross-checking)."""
        return self.primary.read(page_id)

    def read_from_mirror(self, page_id: int) -> bytearray:
        """Explicitly fetch the mirror copy (repair path)."""
        return self.mirror.read(page_id)

    def read_with_fallback(self, page_id: int) -> bytearray:
        """Read the primary; on an *explicit* device error, try the mirror.

        Note this only helps with reported read errors; silently
        corrupted primary reads are returned as-is, which is the
        paper's point about single-disk reads.
        """
        try:
            return self.primary.read(page_id)
        except DeviceReadError:
            return self.mirror.read(page_id)

    def write(self, page_id: int, data: bytes | bytearray,
              sequential: bool = False) -> None:
        self.primary.write(page_id, data, sequential)
        self.mirror.write(page_id, data, sequential)

    @property
    def bad_blocks(self):  # noqa: ANN201 - convenience passthrough
        return self.primary.bad_blocks
