"""Compare a fresh BENCH snapshot against the committed baseline.

Usage::

    python benchmarks/check_regression.py BASELINE.json CANDIDATE.json

Fails (exit 1) if any *tracked* metric regresses more than the
tolerance (25% by default, ``BENCH_REGRESSION_TOLERANCE`` to
override).  Tracked metrics are the deterministic simulated-cost
quantities — log reads per recovery, simulated time-to-first-
transaction, log forces — not wall-clock throughput, which varies
with CI hardware and is reported informationally only.
"""

from __future__ import annotations

import json
import os
import sys

#: (json path, direction) — "lower" means higher-than-baseline values
#: are a regression.  Paths index dicts by key and lists by position.
TRACKED: list[tuple[tuple, str]] = [
    (("recovery_ios_vs_log_volume", "points", -1, "log_pages_read"), "lower"),
    (("recovery_ios_vs_log_volume", "points", -1, "total_random_ios"), "lower"),
    (("group_commit", "batched", "log_forces"), "lower"),
    (("instant_restart_ttft", "points", 0, "on_demand", "ttft_seconds"), "lower"),
    (("instant_restart_ttft", "points", -1, "on_demand", "ttft_seconds"), "lower"),
    (("instant_restore_ttft", "points", 0, "on_demand", "ttft_seconds"), "lower"),
    (("instant_restore_ttft", "points", -1, "on_demand", "ttft_seconds"), "lower"),
    # Concurrency snapshot (BENCH_concurrency.json): the single-thread
    # forces-per-commit is deterministic (every commit leads its own
    # force); the multi-thread ratio is wall-clock-sensitive, so its
    # 0.5x amortization bound is enforced as a run_all probe criterion
    # rather than a regression delta.
    (("commit_throughput", "points", 0, "forces_per_commit"), "lower"),
]


def lookup(snapshot: dict, path: tuple):
    node = snapshot
    for step in path:
        if isinstance(step, int):
            node = node[step]
        else:
            node = node.get(step) if isinstance(node, dict) else None
        if node is None:
            return None
    return node


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fh:
        baseline = json.load(fh)
    with open(sys.argv[2]) as fh:
        candidate = json.load(fh)
    tolerance = float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.25"))

    failures = []
    for path, direction in TRACKED:
        name = ".".join(str(p) for p in path)
        base = lookup(baseline, path)
        cand = lookup(candidate, path)
        if base is None:
            # Metric new in this candidate: nothing to regress against.
            print(f"  (new) {name} = {cand}")
            continue
        if cand is None:
            failures.append(f"{name}: present in baseline, missing now")
            continue
        if direction == "lower":
            limit = base * (1 + tolerance)
            regressed = cand > limit and cand - base > 1e-9
        else:
            limit = base * (1 - tolerance)
            regressed = cand < limit
        marker = "REGRESSED" if regressed else "ok"
        print(f"  [{marker}] {name}: baseline={base} candidate={cand} "
              f"(limit {limit:.4g})")
        if regressed:
            failures.append(
                f"{name}: {base} -> {cand} (> {tolerance:.0%} worse)")

    if candidate.get("probe_failures"):
        failures.extend(
            f"probe failure: {f}" for f in candidate["probe_failures"])

    if failures:
        print("\nBenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nBenchmark regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
