"""ARIES-style restart recovery with the paper's PRI integration.

Three passes over the log (Section 5.1.2), plus the Figure-12 actions:

* **Log analysis** (reads only the log): rebuilds the dirty page table
  ("recovery requirements") and the active transaction table from the
  last checkpoint.  An *update* record adds its page; a *PRI-update*
  record — which doubles as a completed-write record — removes it, so
  pages whose writes completed before the crash need no redo read at
  all (the Figure-4 optimization).  Backup and format records replay
  into the in-memory page recovery index.
* **Redo** (physical): reads only the remaining required pages, applies
  missing updates decided by the PageLSN, and verifies the per-page
  chain ordering as it goes (the defensive check of Section 5.1.4).
  Where a page turns out to be *already up to date* — it was written
  but its PRI-update record was lost in the crash — restart generates
  the missing PRI-update log record right away (Figure 12, bottom
  row).
* **Undo** (logical): rolls back loser transactions through the
  indexes, writing CLRs.

Before any of that, the persisted page recovery index is loaded from
its reserved page region; a damaged PRI page is itself repaired by
single-page recovery from its in-log full-page image — the structure is
covered by its own mechanism (Section 5.2).
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field

from repro.core.recovery_index import PageRecoveryIndex, PartitionedRecoveryIndex
from repro.errors import PageFailureKind, RecoveryError, SinglePageFailure
from repro.page.page import Page
from repro.sim.clock import StopWatch
from repro.storage.device import DeviceReadError
from repro.txn.transaction import Transaction
from repro.wal.lsn import LOG_START, NULL_LSN
from repro.wal.records import BackupRef, LogRecord, LogRecordKind, decompress_image


@dataclass
class RestartReport:
    """What restart recovery did and what it cost (simulated time)."""

    mode: str = "eager"
    analysis_records: int = 0
    dirty_pages_at_analysis_end: int = 0
    pages_trimmed_by_write_logging: int = 0
    redo_pages_read: int = 0
    redo_records_applied: int = 0
    redo_pages_already_current: int = 0
    pri_repair_records: int = 0
    pri_pages_repaired: int = 0
    undo_transactions: int = 0
    analysis_seconds: float = 0.0
    redo_seconds: float = 0.0
    undo_seconds: float = 0.0
    loser_txn_ids: list[int] = field(default_factory=list)
    #: prepared (2PC in-doubt) transactions found by analysis: neither
    #: redone away nor rolled back — they hold their locks until the
    #: coordinator's decision arrives via ``Database.resolve_indoubt``
    indoubt_gtids: list[int] = field(default_factory=list)
    #: on-demand mode: work registered for lazy completion instead of
    #: being done before the database opened
    pending_redo_pages: int = 0
    pending_undo_txns: int = 0

    @property
    def total_seconds(self) -> float:
        return self.analysis_seconds + self.redo_seconds + self.undo_seconds


def run_restart(db, mode: str | None = None) -> RestartReport:  # noqa: ANN001
    """Run restart recovery against a crashed :class:`Database`.

    ``mode`` overrides ``config.restart_mode`` for this one restart.
    Eager mode runs all three ARIES passes; on-demand mode stops after
    analysis, registers the surviving dirty-page table and loser set
    with a :class:`repro.engine.restart_registry.RestartRegistry`, and
    returns with the database already open for traffic.
    """
    from repro.engine.restart_registry import RestartRegistry

    if db._media_failed:
        # A crash interrupted an on-demand restore (or hit an already
        # media-failed node): the device is not a trustworthy redo
        # substrate, and media recovery from the retained backup
        # subsumes restart anyway — it replays the whole durable tail
        # and undoes every unfinished transaction.
        from repro.errors import MediaFailure

        raise MediaFailure(
            db.device.name,
            "device not restored; run recover_media() first (a restore "
            "interrupted by a crash re-runs from the same backup)")

    report = RestartReport()
    cfg = db.config
    report.mode = mode or cfg.restart_mode
    db._crashed = False  # recovery itself may use engine services

    if cfg.spf_enabled:
        _load_pri(db, report)

    with StopWatch(db.clock) as watch:
        dpt, att, page_records, max_txn = _analysis(db, report)
    report.analysis_seconds = watch.elapsed
    report.dirty_pages_at_analysis_end = len(dpt)
    db.tm.restore_txn_id_floor(max_txn)

    # Prepared (2PC) transactions leave the loser set: they re-acquire
    # their locks and wait in doubt for the coordinator's decision.
    att, indoubt = split_indoubt(db, att)
    report.indoubt_gtids = register_indoubt(db, indoubt)

    if report.mode == "on_demand":
        registry = RestartRegistry(db, dpt, page_records, att)
        registry.install()
        report.pending_redo_pages = registry.pending_page_count
        report.pending_undo_txns = registry.pending_loser_count
        report.loser_txn_ids = sorted(att)
        db.log.force()
        db.stats.bump("restarts")
        db.stats.bump("instant_restarts")
        return report

    with StopWatch(db.clock) as watch:
        _redo(db, dpt, page_records, report)
    report.redo_seconds = watch.elapsed

    with StopWatch(db.clock) as watch:
        _undo(db, att, report)
    report.undo_seconds = watch.elapsed

    db.log.force()
    db.stats.bump("restarts")
    return report


# ----------------------------------------------------------------------
# Pass 1: log analysis
# ----------------------------------------------------------------------
#: record kinds that end a transaction (it is no longer a loser)
TERMINAL_TXN_KINDS = (LogRecordKind.COMMIT, LogRecordKind.SYS_COMMIT,
                      LogRecordKind.ABORT, LogRecordKind.TXN_END)


@dataclass
class InDoubtTxn:
    """A prepared transaction awaiting its 2PC coordinator decision.

    Recovered by restart (or media-recovery) analysis: the transaction
    voted yes — its PREPARE record is durable — so presumed abort does
    not apply.  It holds its key locks (re-acquired from its chain)
    until :meth:`repro.engine.database.Database.resolve_indoubt`
    delivers the decision.
    """

    txn_id: int
    gtid: int
    last_lsn: int
    first_lsn: int
    keys: set[bytes] = field(default_factory=set)


def split_indoubt(db, att):  # noqa: ANN001
    """Partition an analysis ATT into losers and in-doubt transactions.

    A transaction whose chain head is a PREPARE record is *in doubt*:
    it must not be rolled back by presumed-abort undo.  The chain-head
    test works whether analysis saw the PREPARE itself or only a
    checkpoint's ATT entry pointing at it — a prepared transaction
    never logs past its PREPARE except during a decided abort, whose
    CLRs (and terminal ABORT) reclassify it correctly.

    Returns ``(losers_att, {txn_id: (gtid, last_lsn)})``.
    """
    losers: dict[int, tuple[int, bool]] = {}
    indoubt: dict[int, tuple[int, int]] = {}
    for txn_id, (last_lsn, is_system) in att.items():
        record = (db.log.record_at(last_lsn)
                  if last_lsn != NULL_LSN and db.log.has_record(last_lsn)
                  else None)
        if record is not None and record.kind == LogRecordKind.PREPARE:
            indoubt[txn_id] = (record.gtid, last_lsn)
        else:
            losers[txn_id] = (last_lsn, is_system)
    return losers, indoubt


def register_indoubt(db, indoubt: dict[int, tuple[int, int]]) -> list[int]:  # noqa: ANN001
    """Re-install in-doubt transactions after a recovery's analysis.

    Each gets its key locks back (from its per-transaction chain, the
    same walk instant restart uses for losers) and an entry in
    ``db.indoubt`` keyed by global transaction id; new transactions
    touching those keys block until the decision resolves them.
    """
    gtids: list[int] = []
    for txn_id, (gtid, last_lsn) in indoubt.items():
        keys, first_lsn = db.tm.chain_summary(last_lsn)
        for key in keys:
            db.locks.acquire(txn_id, key)
        db.indoubt[gtid] = InDoubtTxn(txn_id, gtid, last_lsn, first_lsn, keys)
        gtids.append(gtid)
    if gtids:
        db.stats.bump("indoubt_txns_recovered", len(gtids))
    return sorted(gtids)


def note_txn_record(att: dict[int, tuple[int, bool]],
                    record: LogRecord) -> None:
    """Apply one record's effect to an active-transaction table
    (txn_id -> (last_lsn, is_system)).

    The single definition of loser tracking, shared by restart
    analysis and media-recovery analysis — the two recoveries must
    never disagree on what counts as an unfinished transaction.
    """
    if not record.txn_id:
        return
    if record.kind in TERMINAL_TXN_KINDS:
        att.pop(record.txn_id, None)
    else:
        prior = att.get(record.txn_id)
        att[record.txn_id] = (record.lsn, prior[1] if prior else False)


def _analysis(db, report: RestartReport):  # noqa: ANN001
    cfg = db.config
    start_lsn = db.log.master_checkpoint_lsn or LOG_START
    records = db.log_reader.scan_from(start_lsn)
    dpt: dict[int, int] = {}
    last_update: dict[int, int] = {}
    att: dict[int, tuple[int, bool]] = {}
    page_records: dict[int, list[LogRecord]] = {}
    max_txn = 0
    pri_region = range(cfg.pri_region_start, cfg.pri_region_end)

    for record in records:
        report.analysis_records += 1
        kind = record.kind
        if kind == LogRecordKind.CHECKPOINT_END and record.checkpoint is not None:
            for page_id, rec_lsn in record.checkpoint.dirty_pages.items():
                dpt.setdefault(page_id, rec_lsn)
            for txn_id, last_lsn, is_system in record.checkpoint.active_txns:
                att[txn_id] = (last_lsn, is_system)
                max_txn = max(max_txn, txn_id)
            continue
        if record.txn_id:
            max_txn = max(max_txn, record.txn_id)
        note_txn_record(att, record)
        page_id = record.page_id
        if record.is_page_update and page_id >= 0:
            if (kind == LogRecordKind.FULL_PAGE_IMAGE
                    and page_id in pri_region):
                # PRI region pages were handled in the load phase.
                continue
            dpt.setdefault(page_id, record.lsn)
            last_update[page_id] = record.lsn
            page_records.setdefault(page_id, []).append(record)
            if kind == LogRecordKind.FORMAT_PAGE and cfg.spf_enabled:
                db.pri.set_backup(page_id, BackupRef.format_record(record.lsn),
                                  record.lsn, db.clock.now)
        elif kind == LogRecordKind.PRI_UPDATE and page_id >= 0:
            # A completed write: everything logged up to page_lsn is on
            # disk; the page leaves the recovery requirements (Figure
            # 12, analysis row 2 / the Figure-4 optimization).
            if last_update.get(page_id, NULL_LSN) <= record.page_lsn:
                if page_id in dpt:
                    dpt.pop(page_id)
                    page_records.pop(page_id, None)
                    report.pages_trimmed_by_write_logging += 1
            if cfg.spf_enabled:
                db.pri.record_write(page_id, record.page_lsn)
        elif kind == LogRecordKind.BACKUP_PAGE and page_id >= 0:
            if cfg.spf_enabled and record.backup_ref is not None:
                db.pri.set_backup(page_id, record.backup_ref,
                                  record.page_lsn, db.clock.now)
        elif (kind == LogRecordKind.BACKUP_FULL and cfg.spf_enabled
                and db.backup_store.has_full_backup(record.backup_id)):
            # The guard covers two cases: a retired backup (its record
            # outlives the media) and a promoted standby (its adopted
            # log holds the old primary's BACKUP_FULL records, but its
            # backup store starts empty).
            lsns = db.backup_store.full_backup_lsns(record.backup_id)
            if lsns:
                db.pri.set_range_backup(0, max(lsns) + 1,
                                        BackupRef.full_backup(record.backup_id),
                                        record.lsn, db.clock.now)

    # Records before the checkpoint for pages whose rec_lsn precedes it.
    min_rec = min(dpt.values(), default=None)
    if min_rec is not None and min_rec < start_lsn:
        for record in db.log_reader.scan_from(min_rec):
            if record.lsn >= start_lsn:
                break
            page_id = record.page_id
            if (record.is_page_update and page_id in dpt
                    and record.lsn >= dpt[page_id]):
                page_records.setdefault(page_id, [])
                page_records[page_id].insert(
                    _insert_pos(page_records[page_id], record.lsn), record)
    return dpt, att, page_records, max_txn


def _insert_pos(records: list[LogRecord], lsn: int) -> int:
    """Insertion point keeping ``records`` sorted by LSN.

    Binary search: the pre-checkpoint backfill may prepend thousands of
    records per page, and a linear scan made that O(n²).
    """
    return bisect.bisect_left(records, lsn, key=lambda record: record.lsn)


# ----------------------------------------------------------------------
# Pass 2: redo (per-page primitives shared with instant restart)
# ----------------------------------------------------------------------
def redo_page_records(page: Page, records: list[LogRecord]) -> int:
    """Apply the missing updates from ``records`` to one page.

    The per-page core of the redo pass, shared by the restart registry
    (a pending page rolled forward on first fix) and the restore
    registry (a pending page rebuilt from its backup image — chain
    order or analysis order, same primitive).
    Returns the number of records applied; raises
    :class:`RecoveryError` on a per-page chain mismatch (the defensive
    check of Section 5.1.4).
    """
    applied = 0
    for record in records:
        if record.kind == LogRecordKind.FULL_PAGE_IMAGE:
            as_of = record.page_lsn if record.page_lsn else record.lsn
            if page.page_lsn < as_of:
                page.data[:] = decompress_image(record.image or b"")
                page.btree_cache = None
                if page.page_lsn != as_of:
                    page.page_lsn = as_of
                applied += 1
            continue
        if record.op is None:
            continue
        if page.page_lsn >= record.lsn:
            continue  # already reflected on disk
        # Defensive check (Section 5.1.4): the chain predicts the
        # PageLSN every redo action must find.  A formatting record is
        # a chain root — it resets the page regardless of what the old
        # incarnation on the device holds.
        if (record.kind != LogRecordKind.FORMAT_PAGE
                and record.page_prev_lsn != page.page_lsn):
            raise RecoveryError(
                f"redo chain mismatch on page {page.page_id}: record "
                f"{record.lsn} expects PageLSN {record.page_prev_lsn}, "
                f"page has {page.page_lsn}")
        record.op.apply_redo(page)
        page.page_lsn = record.lsn
        applied += 1
    return applied


def log_pri_repair(db, page: Page) -> bool:  # noqa: ANN001
    """Figure 12, bottom row: the data page had been written before
    the crash, but the PRI update was lost.  Generate the missing log
    record now; applying it to the index can happen lazily, exactly as
    in normal forward processing."""
    if not db.config.log_completed_writes:
        return False
    db.log.append(LogRecord(LogRecordKind.PRI_UPDATE,
                            page_id=page.page_id,
                            page_lsn=page.page_lsn))
    db.stats.bump("pri_repair_records")
    if db.config.spf_enabled:
        db.pri.record_write(page.page_id, page.page_lsn)
    return True


def _redo(db, dpt: dict[int, int], page_records: dict[int, list[LogRecord]],
          report: RestartReport) -> None:  # noqa: ANN001
    for page_id in sorted(dpt):
        records = page_records.get(page_id, [])
        if not records:
            continue
        page = _read_for_redo(db, page_id)
        report.redo_pages_read += 1
        db.stats.bump("redo_page_reads")
        applied = redo_page_records(page, records)
        report.redo_records_applied += applied
        db.stats.bump("redo_records_applied", applied)
        if applied == 0:
            report.redo_pages_already_current += 1
            if log_pri_repair(db, page):
                report.pri_repair_records += 1
        else:
            # The page is dirty again; install it in the buffer pool so
            # normal write-back (and PRI maintenance) applies.
            installed = db.pool.fix_new(page)
            db.pool.mark_dirty(page_id, records[0].lsn)
            db.pool.unfix(page_id)
            assert installed is page


def _read_for_redo(db, page_id: int) -> Page:  # noqa: ANN001
    """Fetch one page for redo; a failure here is a single-page failure."""
    raw = db.device.raw_image(page_id)
    if raw is None:
        # Never reached the device: start from an unformatted page (the
        # first record to replay is its formatting record).
        return Page.format(db.config.page_size, page_id)
    try:
        data = db.device.read(page_id)
        page = Page(db.config.page_size, data)
        page.verify(expected_page_id=page_id)
        if db.config.spf_enabled and db.config.pri_lsn_check:
            # The same stale-LSN cross-check the normal read path runs
            # (Figure 8): a lost write leaves a plausible page whose
            # only tell is a PageLSN older than the recovery index
            # expects.  Without this, redo would hit the chain-mismatch
            # guard instead of repairing the page.  (Found by the chaos
            # harness: lost write, checkpoint, update, crash.)
            expected = db.pri.expected_page_lsn(page_id)
            if expected is not None and page.page_lsn < expected:
                raise SinglePageFailure(
                    page_id, PageFailureKind.STALE_LSN,
                    f"PageLSN {page.page_lsn} older than recovery "
                    f"index's {expected} at restart redo")
        return page
    except (DeviceReadError, SinglePageFailure) as exc:
        if isinstance(exc, SinglePageFailure):
            failure = exc
        else:
            failure = SinglePageFailure(
                page_id, PageFailureKind.DEVICE_READ_ERROR, str(exc))
        # Single-page recovery during restart: the PRI was already
        # reconstructed by the load + analysis phases.
        page = db.recovery_manager.handle_failure(failure)
        return page


# ----------------------------------------------------------------------
# Pass 3: undo (per-loser primitive shared with instant restart and
# with media restore — both registries lazily undo through this)
# ----------------------------------------------------------------------
def undo_loser(db, txn_id: int, last_lsn: int,  # noqa: ANN001
               is_system: bool) -> None:
    """Roll back one loser transaction and log its ABORT record."""
    txn = Transaction(txn_id, is_system=is_system)
    txn.last_lsn = last_lsn
    db.tm.rollback_work(txn, db)
    db.log.append(LogRecord(LogRecordKind.ABORT, txn_id=txn_id,
                            prev_lsn=txn.last_lsn))
    db.stats.bump("restart_undo_txns")


def _undo(db, att: dict[int, tuple[int, bool]], report: RestartReport) -> None:  # noqa: ANN001
    losers = sorted(att.items(), key=lambda item: -item[1][0])
    for txn_id, (last_lsn, is_system) in losers:
        undo_loser(db, txn_id, last_lsn, is_system)
        report.undo_transactions += 1
        report.loser_txn_ids.append(txn_id)


# ----------------------------------------------------------------------
# Phase 0: load the persisted page recovery index
# ----------------------------------------------------------------------
def _load_pri(db, report: RestartReport) -> None:  # noqa: ANN001
    """Rebuild the in-memory PRI from its page region.

    Every checkpoint rewrites the whole region, logging a full-page
    image per page *before* the CHECKPOINT_END record — so the log tail
    beginning at the master checkpoint always contains a backup for
    each region page.  A region page that fails verification is rebuilt
    from that image: single-page recovery applied to the recovery
    index itself.
    """
    start_lsn = db.log.master_checkpoint_lsn
    if not start_lsn:
        return  # no checkpoint yet; analysis rebuilds from scratch
    master = db.log.record_at(start_lsn)
    if master.kind != LogRecordKind.CHECKPOINT_END or master.checkpoint is None:
        return
    fpi_by_page: dict[int, LogRecord] = {}
    for page_id, lsn in master.checkpoint.pri_images.items():
        if db.log.has_record(lsn):
            fpi_by_page[page_id] = db.log.record_at(lsn)
    if not fpi_by_page:
        return

    partitioned = isinstance(db.pri, PartitionedRecoveryIndex)
    n_partitions = 2 if partitioned else 1
    for p in range(n_partitions):
        chunks: dict[int, bytes] = {}
        total_pages = None
        for page_id in db.checkpointer.pri_partition_pages(p):
            record = fpi_by_page.get(page_id)
            if record is None:
                continue
            page = _load_pri_page(db, page_id, record, report)
            length, seq, total = struct.unpack_from("<IHH", page.data, 32)
            total_pages = total
            chunks[seq] = bytes(page.data[40:40 + length])
        if total_pages is None:
            continue
        blob = b"".join(chunks[i] for i in sorted(chunks))
        partition = PageRecoveryIndex.deserialize(blob)
        if partitioned:
            parts = list(db.pri.partitions)
            parts[p] = partition
            db.pri.partitions = tuple(parts)
        else:
            db.pri = partition
            db._build_recovery_stack()
            db._wire_pool()

    # The region pages' own entries were created *after* the snapshots
    # were serialized (self-coverage ordering); re-derive them from the
    # image records just used, exactly as persist_pri recorded them.
    for page_id, record in fpi_by_page.items():
        db.pri.set_backup(page_id, BackupRef.log_image(record.lsn),
                          record.lsn, db.clock.now)
        db.pri.record_write(page_id, record.lsn)


def _load_pri_page(db, page_id: int, fpi: LogRecord,  # noqa: ANN001
                   report: RestartReport) -> Page:
    expected_lsn = fpi.lsn
    try:
        data = db.device.read(page_id)
        page = Page(db.config.page_size, data)
        page.verify(expected_page_id=page_id)
        if page.page_lsn == expected_lsn:
            return page
    except Exception:  # noqa: BLE001 - any damage falls through to repair
        pass
    # The device copy is damaged or stale: restore from the in-log
    # image (single-page recovery of the PRI, Section 5.2).
    page = Page(db.config.page_size, decompress_image(fpi.image or b""))
    page.page_lsn = expected_lsn
    page.seal()
    try:
        db.device.remap(page_id, "PRI page failure at restart")
    except Exception:  # noqa: BLE001 - remap is best-effort here
        pass
    db.device.write(page_id, page.data)
    report.pri_pages_repaired += 1
    db.stats.bump("pri_pages_repaired")
    return page
