"""Checkpointing, PRI persistence, page backups, and log retention.

This component owns everything that bounds recovery work:

* **checkpoints** (Section 5.2.6): flush a snapshot of the dirty page
  table, persist the page recovery index into its reserved page
  region, and write the CHECKPOINT_END master record;
* **page backups** (Section 5.2.1): explicit page copies, in-log
  full-page images, and full database backups, plus the write-back
  hooks that apply the Section-6 freshness policy and log PRI updates
  (Figure 11);
* **log retention and truncation**: the oldest LSN any retained
  structure may still need, and the copy-forward step that refreshes
  backups pinning the log head.
"""

from __future__ import annotations

import struct

from repro.core.backup import BackupPolicy, make_log_image_payload
from repro.core.recovery_index import PageRecoveryIndex, PartitionedRecoveryIndex
from repro.errors import ConfigError, ReproError, StorageError
from repro.page.page import Page, PageType
from repro.sync import Mutex
from repro.wal.records import BackupRef, CheckpointData, LogRecord, LogRecordKind


class Checkpointer:
    """Checkpoint + PRI persistence + backup/retention machinery."""

    def __init__(self, db) -> None:  # noqa: ANN001 - Database facade
        self.db = db
        # Two threads must never interleave checkpoints (the PRI
        # region would interleave partition snapshots); sessions
        # already serialize via the engine latch, this guards direct
        # concurrent Database.checkpoint() calls too.
        self._mutex = Mutex()

    def _partitions(self) -> tuple[PageRecoveryIndex, ...]:
        pri = self.db.pri
        if isinstance(pri, PartitionedRecoveryIndex):
            return pri.partitions
        return (pri,)

    # ------------------------------------------------------------------
    # Checkpoints (Section 5.2.6)
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Write a checkpoint; returns the CHECKPOINT_END LSN."""
        with self._mutex:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> int:
        db = self.db
        if db.restart_registry is not None:
            # A checkpoint completes any on-demand restart first: its
            # dirty-page table must not silently drop pages whose redo
            # is still pending, and a checkpoint with pending losers
            # would strand their rollback behind the new master record.
            db.restart_registry.drain_all()
        if db.restore_registry is not None:
            # Likewise for an on-demand restore: a checkpoint declares
            # the device consistent up to the master record, which a
            # half-restored replacement device is not, and the new
            # master must not strand a pending loser's rollback.
            db.restore_registry.drain_all()
        db.log.append(LogRecord(LogRecordKind.CHECKPOINT_BEGIN))
        # Snapshot first: only pages dirty *now* are forced out —
        # later PRI updates may add a few random reads to a subsequent
        # restart, which Section 5.2.6 accepts to avoid a never-ending
        # tail of writes.
        dirty_snapshot = sorted(db.pool.dirty_page_table())
        att = [(txn.txn_id, txn.last_lsn, txn.is_system)
               for txn in db.tm.active.values()]
        # Recovered in-doubt (prepared) branches are not in tm.active
        # but must survive into the checkpoint's ATT: a crash after
        # this checkpoint starts analysis here, and the chain-head
        # PREPARE test re-classifies them as in doubt.
        att.extend((entry.txn_id, entry.last_lsn, False)
                   for entry in db.indoubt.values())
        for page_id in dirty_snapshot:
            if db.pool.resident(page_id):
                db.pool.flush_page(page_id)
        pri_images: dict[int, int] = {}
        if db.config.spf_enabled:
            pri_images = self.persist_pri()
        checkpoint = CheckpointData(db.pool.dirty_page_table(), att,
                                    pri_images)
        lsn = db.log.log_checkpoint_end(checkpoint)
        db.stats.bump("checkpoints")
        return lsn

    def persist_pri(self) -> dict[int, int]:
        """Serialize the PRI into its reserved page region.

        Each page gets a fresh full-page-image log record that acts as
        its backup; partition p's pages are covered by partition 1-p,
        so no page holds its own recovery information (Section 5.2.2).
        Both partitions are serialized *first* so that neither snapshot
        depends on entries created while writing the other.

        Returns ``{page_id: image record LSN}`` for the checkpoint
        record, which is how restart finds the images.
        """
        db = self.db
        cfg = db.config
        per_partition = cfg.pri_region_pages_per_partition
        chunk_capacity = cfg.page_size - 64
        blobs = [partition.serialize() for partition in self._partitions()]
        image_lsns: dict[int, int] = {}
        for p, blob in enumerate(blobs):
            pages_needed = max(1, -(-len(blob) // chunk_capacity))
            if pages_needed > per_partition:
                raise ConfigError(
                    f"PRI partition {p} needs {pages_needed} pages, "
                    f"region holds {per_partition}")
            page_ids = self.pri_partition_pages(p)
            for seq in range(per_partition):
                page_id = page_ids[seq]
                chunk = blob[seq * chunk_capacity:(seq + 1) * chunk_capacity]
                page = Page.format(cfg.page_size, page_id,
                                   PageType.RECOVERY_INDEX)
                header = struct.pack("<IHH", len(chunk), seq, pages_needed)
                start = 32 + 8  # page header + chunk header
                page.data[32:start] = header
                page.data[start:start + len(chunk)] = chunk
                page.seal()
                record = LogRecord(LogRecordKind.FULL_PAGE_IMAGE,
                                   page_id=page_id,
                                   image=make_log_image_payload(page))
                lsn = db.log.append(record)
                page.page_lsn = lsn
                page.seal()
                db.device.write(page_id, page.data)
                image_lsns[page_id] = lsn
                # Covered by the *other* partition (in memory; the next
                # checkpoint persists these entries).
                db.pri.set_backup(page_id, BackupRef.log_image(lsn), lsn,
                                  db.clock.now)
                db.pri.record_write(page_id, lsn)
        db.stats.bump("pri_persists")
        return image_lsns

    def pri_partition_pages(self, partition: int) -> list[int]:
        """Page ids of the region pages holding ``partition``'s blob.

        Partition p's blob lives on parity-p pages; a parity-p page is
        covered by index partition 1-p.  Hence no page holds the
        information needed for its own recovery (Section 5.2.2).
        """
        cfg = self.db.config
        pages = [pid for pid in range(cfg.pri_region_start, cfg.pri_region_end)
                 if pid % 2 == partition]
        return pages[:cfg.pri_region_pages_per_partition]

    # ------------------------------------------------------------------
    # Write-back hooks (Figure 11 and the Section-6 backup policy)
    # ------------------------------------------------------------------
    def on_before_write(self, page: Page) -> None:
        """Take a fresh page copy if the freshness policy says so."""
        db = self.db
        if not db.config.spf_enabled:
            return
        policy: BackupPolicy = db.config.backup_policy
        page_id = page.page_id
        if not db.pri.covers(page_id):
            return
        entry = db.pri.lookup(page_id)
        age = db.clock.now - entry.backup_time
        if not policy.due(page.update_count, age):
            return
        try:
            self.take_page_copy(page)
        except StorageError:
            # A backup-media write failure must not fail the data-page
            # write it rides on: the old copy is still in place (a new
            # copy never overwrites it), so recoverability is unchanged
            # and the policy simply retries at the next write-back.
            db.stats.bump("page_copy_policy_failures")

    def on_page_cleaned(self, page: Page) -> None:
        """Figure 11: after the write, log the PRI update; no force."""
        db = self.db
        if not db.config.log_completed_writes:
            return
        record = LogRecord(LogRecordKind.PRI_UPDATE, page_id=page.page_id,
                           page_lsn=page.page_lsn)
        db.log.append(record)
        db.stats.bump("pri_update_records")
        if db.config.spf_enabled:
            db.pri.record_write(page.page_id, page.page_lsn)

    # ------------------------------------------------------------------
    # Page backups (Section 5.2.1)
    # ------------------------------------------------------------------
    def take_page_copy(self, page: Page) -> int:
        """Explicit per-page backup (Section 5.2.1, second source).

        The new copy goes to a fresh location; the page recovery index
        then yields the old location, which is freed only afterwards —
        never overwrite the only backup.
        """
        db = self.db
        image = page.copy()
        image.reset_update_count()
        image.seal()
        location = db.backup_store.store_page_copy(bytes(image.data),
                                                   page.page_lsn)
        record = LogRecord(LogRecordKind.BACKUP_PAGE, page_id=page.page_id,
                           page_lsn=page.page_lsn,
                           backup_ref=BackupRef.page_copy(location))
        db.log.append(record)
        old_ref = db.pri.set_backup(page.page_id,
                                    BackupRef.page_copy(location),
                                    page.page_lsn, db.clock.now)
        db.backup_store.free_if_page_copy(old_ref)
        page.reset_update_count()
        db.stats.bump("policy_page_copies")
        return location

    def take_log_image(self, page_id: int) -> int:
        """In-log page backup (Section 5.2.1, fourth source)."""
        db = self.db
        page = db.pool.fix(page_id)
        try:
            image = page.copy()
            image.reset_update_count()
            image.seal()
            record = LogRecord(LogRecordKind.FULL_PAGE_IMAGE, page_id=page_id,
                               page_lsn=page.page_lsn,
                               image=make_log_image_payload(image))
            lsn = db.log.append(record)
            if db.config.spf_enabled:
                old_ref = db.pri.set_backup(
                    page_id, BackupRef.log_image(lsn), page.page_lsn,
                    db.clock.now)
                db.backup_store.free_if_page_copy(old_ref)
            page.reset_update_count()
            return lsn
        finally:
            db.pool.unfix(page_id)

    def take_full_backup(self) -> int:
        """Full database backup (checkpointed, verified, then copied).

        Every image is verified before it enters the backup: in-page
        checks plus the PageLSN cross-check against the page recovery
        index.  A page that fails — e.g. a write the device silently
        lost, leaving a stale-but-plausible image — is read through
        the buffer pool's detect-and-repair fix path instead, so the
        backup never archives damage.  (Found by the chaos harness:
        lost write, then backup, then crash — replay from the
        poisoned backup image hit a chain mismatch.)
        """
        db = self.db
        checkpoint_lsn = self.checkpoint()
        images: dict[int, bytes] = {}
        page_lsns: dict[int, int] = {}
        next_free = db.allocated_pages()
        for page_id in range(next_free):
            raw = db.device.raw_image(page_id)
            if raw is None:
                continue
            image = self._verified_backup_image(page_id, raw)
            images[page_id] = image
            page_lsns[page_id] = Page(db.config.page_size, image).page_lsn
        # Sequential read of the copied range.
        db.clock.advance(db.config.device_profile.read_cost(
            len(images) * db.config.page_size, sequential=True))
        backup_id = db.backup_store.store_full_backup(images, page_lsns,
                                                      checkpoint_lsn)
        backup_lsn = db.log.append_and_force(
            LogRecord(LogRecordKind.BACKUP_FULL, backup_id=backup_id))
        if db.config.spf_enabled:
            db.pri.set_range_backup(0, next_free,
                                    BackupRef.full_backup(backup_id),
                                    backup_lsn, db.clock.now)
        return backup_id

    def _verified_backup_image(self, page_id: int, raw: bytes) -> bytes:
        """Validate a raw device image before archiving it; on any
        failure, fetch the page through the repair path instead."""
        db = self.db
        try:
            page = Page(db.config.page_size, raw)
            page.verify(expected_page_id=page_id)
            stale = False
            if db.config.spf_enabled and db.config.pri_lsn_check:
                expected = db.pri.expected_page_lsn(page_id)
                stale = expected is not None and page.page_lsn < expected
            if not stale:
                return raw
        except ReproError:
            pass
        db.stats.bump("backup_images_repaired")
        page = db.pool.fix(page_id)
        try:
            image = bytes(page.data)
        finally:
            db.pool.unfix(page_id)
        # Resync the device: the range-backup reset below (set_range_
        # backup clears per-page LSN expectations) assumes the device
        # holds exactly what the backup archived, so a repaired image
        # must also land on the device — remapping away from a sector
        # that refuses to take it.
        for _attempt in range(4):
            db.device.write(page_id, image)
            if db.device.raw_image(page_id) == image:
                return image
            db.device.remap(page_id, "backup verification resync")
        raise StorageError(
            f"page {page_id} unwritable while verifying backup image")

    # ------------------------------------------------------------------
    # Backup retirement
    # ------------------------------------------------------------------
    def retire_full_backups(self) -> list[int]:
        """Retire full backups superseded by a newer one.

        Gated twice: the backup a pending on-demand restore is reading
        from must survive until the restore's completion watermark is
        recorded, and a backup any page-recovery-index entry still
        references must survive for single-page recovery.  Returns the
        retired backup ids.
        """
        from repro.wal.records import BackupRefKind

        db = self.db
        ids = db.backup_store.full_backup_ids()
        if len(ids) <= 1:
            return []
        newest = ids[-1]
        in_use: set[int] = {newest}
        if (db.restore_registry is not None
                and not db.restore_registry.complete):
            # The restore completion watermark gates retirement.
            in_use.add(db.restore_registry.backup_id)
        if db._pending_restore_backup_id is not None:
            in_use.add(db._pending_restore_backup_id)
        if db.config.spf_enabled:
            for partition in self._partitions():
                for ref in partition._refs:
                    if ref.kind == BackupRefKind.FULL_BACKUP:
                        in_use.add(ref.value)
        retired = [bid for bid in ids if bid not in in_use]
        for backup_id in retired:
            db.backup_store.retire_full_backup(backup_id)
        return retired

    # ------------------------------------------------------------------
    # Log retention
    # ------------------------------------------------------------------
    def log_retention_bound(self) -> int:
        """Oldest LSN any retained structure may still need.

        Four constraints:

        * single-page recovery walks each page's chain back to its most
          recent backup — so the bound is the minimum backup LSN over
          all covered pages (the page recovery index knows it; this is
          a quiet benefit of per-page backups: fresher backups shorten
          mandatory log retention);
        * restart needs the log from the master checkpoint;
        * rollback needs every active transaction's first record;
        * an unfinished on-demand restart needs every pending page's
          first redo record and every pending loser's first record
          (the completion watermark, see ``RestartRegistry``);
        * media recovery restores from the newest retained full backup
          and scans the tail from its BACKUP_FULL record, so that
          record must stay reachable — truncating past it would make
          the *next* device loss unrecoverable (found by the chaos
          harness: checkpoint + truncate + device loss).
        """
        from repro.wal.records import BackupRefKind

        db = self.db
        bound = db.log.master_checkpoint_lsn or db.log.end_lsn
        for backup_id in reversed(db.backup_store.full_backup_ids()):
            backup_lsn = db.log.backup_full_lsn(backup_id)
            if backup_lsn is not None:
                bound = min(bound, backup_lsn)
                break
        for txn in db.tm.active.values():
            if txn.first_lsn:
                bound = min(bound, txn.first_lsn)
        for entry in db.indoubt.values():
            # An undecided 2PC branch may still be rolled back, and its
            # chain-head PREPARE record is what re-classifies it at the
            # next analysis — pin back to its first record.
            if entry.first_lsn:
                bound = min(bound, entry.first_lsn)
        if db.restart_registry is not None:
            # Instant restart's completion watermark: pending pages and
            # losers pin the log until they resolve (the truncation
            # gate of the on-demand restart state machine).
            pending = db.restart_registry.retention_bound()
            if pending is not None:
                bound = min(bound, pending)
        if db.restore_registry is not None:
            # Instant restore's completion watermark: every pending
            # page replays its chain from the backup's position, so the
            # whole tail since the backup is pinned until the drain
            # completes.
            pending = db.restore_registry.retention_bound()
            if pending is not None:
                bound = min(bound, pending)
        if db.config.spf_enabled:
            for partition in self._partitions():
                # Backups that *live in the log* must be retained.
                for ref in partition._refs:
                    if ref.kind in (BackupRefKind.LOG_IMAGE,
                                    BackupRefKind.FORMAT_RECORD):
                        bound = min(bound, ref.value)
                # A page updated since its backup needs its chain back
                # to the backup; a page whose backup is current needs
                # nothing (Figure 7: the LSN field is only valid for
                # pages updated since the last backup).
                for page_id in partition._page_lsns:
                    pos = partition._find_range(page_id)
                    if pos is not None:
                        bound = min(bound, partition._lsns[pos])
        standby = getattr(db, "standby", None)
        link = getattr(db, "standby_link", None)
        if standby is not None and standby.running and link is not None:
            # A live standby pins the log at its ship watermark: records
            # it has not received yet can only ever come from the
            # primary's log.  Truncating past a lagging standby would
            # sever the link permanently (the shipper breaks rather than
            # ship a gap).  A dead standby does not pin — reattaching
            # re-seeds from scratch.
            bound = min(bound, link.shipped_lsn)
        return bound

    def truncate_log(self, copy_forward: bool = True,
                     copy_budget: int = 64) -> int:
        """Reclaim the log head up to :meth:`log_retention_bound`.

        With ``copy_forward``, pages whose *old* backups pin the bound
        below the master checkpoint first get fresh page copies (up to
        ``copy_budget`` of them) — the copy-forward step familiar from
        log-structured systems, here driven by the page recovery
        index's backup-page field.
        """
        db = self.db
        target = db.log.master_checkpoint_lsn or db.log.durable_lsn
        if copy_forward and db.config.spf_enabled:
            self._copy_forward_pinning_pages(target, copy_budget)
        return db.log.truncate(self.log_retention_bound())

    def _copy_forward_pinning_pages(self, target: int, budget: int) -> None:
        db = self.db
        pri_region = range(db.config.pri_region_start,
                           db.config.pri_region_end)
        pinning: list[int] = []
        for partition in self._partitions():
            for i in range(len(partition._starts)):
                if partition._lsns[i] >= target:
                    continue
                start, end = partition._starts[i], partition._ends[i]
                if end - start > budget:
                    continue  # a huge stale range needs a full backup
                pinning.extend(pid for pid in range(start, end)
                               if pid not in pri_region)
        for page_id in sorted(set(pinning))[:budget]:
            page = db.pool.fix(page_id)
            try:
                self.take_page_copy(page)
            finally:
                db.pool.unfix(page_id)
            db.stats.bump("copy_forward_backups")
