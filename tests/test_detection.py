"""Integration tests: the detection stack (Section 4, Figure 8)."""

from repro.btree.node import BTreeNode
from repro.detect.checks import run_in_page_checks
from repro.engine.database import Database
from repro.errors import PageFailureKind
from repro.page.page import Page, PageType
from tests.conftest import fast_config, key_of, value_of


def loaded(**overrides):
    db = Database(fast_config(**overrides))
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree


class TestInPageChecks:
    def test_clean_page_passes(self):
        page = Page.format(1024, 3, PageType.HEAP)
        from repro.page.slotted import SlottedPage

        SlottedPage(page).initialize()
        page.seal()
        outcome = run_in_page_checks(page, expected_page_id=3)
        assert outcome.ok

    def test_each_layer_reports_its_kind(self):
        from repro.page.slotted import SlottedPage

        page = Page.format(1024, 3, PageType.HEAP)
        SlottedPage(page).initialize()
        page.seal()

        rotten = Page(1024, bytes(page.data))
        rotten.data[500] ^= 0xFF
        assert run_in_page_checks(rotten, 3).kind == PageFailureKind.CHECKSUM_MISMATCH

        misdirected = Page(1024, bytes(page.data))
        assert run_in_page_checks(misdirected, 4).kind == PageFailureKind.WRONG_PAGE_ID

        stale = Page(1024, bytes(page.data))
        assert run_in_page_checks(stale, 3, expected_lsn=10**6).kind == (
            PageFailureKind.STALE_LSN)


class TestReadPathDispatch:
    def test_clean_reads_bypass_recovery(self):
        db, tree = loaded()
        assert tree.lookup(key_of(5)) == value_of(5, 0)
        assert db.stats.get("single_page_recoveries") == 0
        assert db.stats.get("pages_fetched_clean") > 0

    def test_pri_repaired_when_page_newer_than_index(self):
        """A page *newer* than the PRI expects is fine — the index is
        repaired on the read path (the lost-PRI-update case applied to
        normal processing)."""
        db, tree = loaded()
        page, _node = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        # Make the PRI believe an older LSN was the last write.
        actual = db.pri.recorded_lsn(victim)
        partition = db.pri.partitions[db.pri.partition_of_data_page(victim)]
        partition._page_lsns[victim] = max(1, actual - 1000)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("pri_repaired_on_read") == 1
        assert db.pri.recorded_lsn(victim) == actual
        assert db.stats.get("single_page_recoveries") == 0


class TestBTreeCrossPageDetection:
    """Section 4.2: fence-key verification on every root-to-leaf pass
    catches corruption that in-page checks cannot."""

    def test_traversal_detects_stale_but_valid_child(self):
        """A lost write leaves a checksum-valid but outdated node; the
        PRI LSN cross-check catches it at fetch time and the traversal
        proceeds with the repaired page."""
        db, tree = loaded()
        # Grow enough that there is a branch level.
        txn = db.begin()
        for i in range(300, 900):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        page, _n = tree._descend(key_of(500), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_lost_write(victim)
        txn = db.begin()
        tree.update(txn, key_of(500), b"newest")
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        assert tree.lookup(key_of(500)) == b"newest"
        assert db.stats.get("page_failures_detected") >= 1

    def test_invariant_failure_handler_invoked_on_fence_damage(self):
        """Corrupt a child's fence keys in a way that keeps the page
        internally plausible; only the cross-page check can see it."""
        db, tree = loaded()
        txn = db.begin()
        for i in range(300, 900):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        root_pid = db.get_root(tree.index_id)
        root_page = db.fix(root_pid)
        root = BTreeNode(root_page)
        assert not root.is_leaf
        victim = root.child_pid(0)
        db.unfix(root_pid)
        db.evict_everything()
        # Forge the stored page: rewrite it with a wrong low fence but
        # valid checksum, bypassing the engine (simulates firmware bugs
        # / software scribbles).
        raw = db.device.read(victim)
        forged = Page(db.config.page_size, raw)
        node = BTreeNode(forged)
        from repro.page.slotted import SlottedPage

        slotted = SlottedPage(forged)
        meta = slotted.read_record(0)
        slotted.remove(0)
        from repro.page.slotted import Record

        slotted.insert(0, Record(b"zzzz-wrong-fence", meta.value, meta.ghost))
        forged.seal()
        db.device.write(victim, forged.data)
        # The PRI cross-check cannot catch this (the LSN is intact),
        # but the fence comparison on the very next descent does, and
        # single-page recovery repairs the node in place.
        # Reset the recorded LSN so the stale check passes.
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("btree_invariant_failures") >= 1
        assert db.stats.get("single_page_recoveries") >= 1


class TestScrubbing:
    def test_scrub_clean_database_finds_nothing(self):
        db, _tree = loaded()
        report = db.scrub()
        assert report.failures_found == 0
        assert report.pages_scanned > 0

    def test_scrub_finds_and_repairs_cold_corruption(self):
        """Latent sector errors are mostly found by scrubbing [2]."""
        db, tree = loaded()
        victims = []
        for i in (0, 299):
            page, _n = tree._descend(key_of(i), for_write=False)
            victims.append(page.page_id)
            db.unfix(page.page_id)
        db.evict_everything()
        db.device.inject_bit_rot(victims[0])
        db.device.inject_read_error(victims[1])
        report = db.scrub()
        assert report.failures_found == 2
        assert report.failures_repaired == 2
        assert set(report.failures_by_kind) == {"checksum-mismatch",
                                                "device-read-error"}
        # And the data is intact afterwards, without any recovery on
        # the foreground read path.
        before = db.stats.get("single_page_recoveries")
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert tree.lookup(key_of(299)) == value_of(299, 0)
        assert db.stats.get("single_page_recoveries") == before

    def test_scrub_report_only_mode(self):
        db, tree = loaded()
        page, _n = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_bit_rot(victim)
        report = db.scrub(repair=False)
        assert report.failures_found == 1
        assert report.failures_repaired == 0
        # Damage still present; the read path repairs it on demand.
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("single_page_recoveries") == 1

    def test_scrub_skips_buffered_pages(self):
        db, tree = loaded()
        tree.lookup(key_of(0))  # pulls pages into the pool
        report = db.scrub()
        assert report.pages_skipped > 0
