"""repro — reproduction of Graefe & Kuno, "Definition, Detection, and
Recovery of Single-Page Failures, a Fourth Class of Database Failures"
(PVLDB 5(7), 2012).

The package builds the complete system the paper's design assumes — a
simulated fault-injecting storage device, an ARIES-style write-ahead
log with per-transaction and per-page chains, a buffer pool, user and
system transactions, and a Foster B-tree with symmetric fence keys —
and, on top of it, the paper's contribution: the page recovery index
and single-page failure detection and recovery.

Quick start::

    from repro import Database, EngineConfig

    db = Database(EngineConfig(capacity_pages=512))
    tree = db.create_index()
    txn = db.begin()
    tree.insert(txn, b"hello", b"world")
    db.commit(txn)

    db.flush_everything()
    db.device.inject_bit_rot(db.get_root(tree.index_id))
    db.evict_everything()
    assert tree.lookup(b"hello") == b"world"   # recovered transparently
"""

from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.session import Session
from repro.errors import (
    FailureClass,
    MediaFailure,
    PageFailureKind,
    ReproError,
    SinglePageFailure,
    SystemFailure,
    TransactionAborted,
)
from repro.sim.clock import SimClock
from repro.sim.iomodel import (
    ARCHIVE_PROFILE,
    FLASH_PROFILE,
    HDD_PROFILE,
    IOProfile,
)
from repro.sim.stats import Stats

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Session",
    "EngineConfig",
    "BackupPolicy",
    "SimClock",
    "Stats",
    "IOProfile",
    "HDD_PROFILE",
    "FLASH_PROFILE",
    "ARCHIVE_PROFILE",
    "FailureClass",
    "PageFailureKind",
    "ReproError",
    "SinglePageFailure",
    "MediaFailure",
    "SystemFailure",
    "TransactionAborted",
]
