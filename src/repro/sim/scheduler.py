"""A deterministic discrete-event scheduler.

The chaos harness (:mod:`repro.sim.harness`) composes a simulated run
out of *events* — client transactions, maintenance actions, injected
failures — ordered on a virtual timeline.  :class:`EventScheduler` is
the ordering core: a priority queue of :class:`Event` objects keyed by
``(time, seq)``, where ``seq`` is the insertion sequence number, so
two events scheduled at the same time always pop in the order they
were scheduled.  Determinism is the whole point: given the same set of
``schedule`` calls, the pop order is bit-for-bit identical on every
run, which is what makes a chaos schedule replayable from its seed and
shrinkable by event deletion.

The scheduler deliberately knows nothing about the engine or the
:class:`repro.sim.clock.SimClock` — event time is a virtual ordering
key, while the clock measures modeled I/O cost.  The harness bridges
the two where it matters (arming clock deadlines so failures fire
*mid-operation*, not only between events).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class Event:
    """One scheduled event on the virtual timeline."""

    time: float
    seq: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> tuple[float, int]:
        return (self.time, self.seq)

    def describe(self) -> str:
        """Compact, deterministic one-line rendering (trace format)."""
        if not self.payload:
            return f"t={self.time:g} {self.kind}"
        inner = " ".join(f"{key}={self.payload[key]!r}"
                         for key in sorted(self.payload))
        return f"t={self.time:g} {self.kind} {inner}"


class EventScheduler:
    """Priority queue of events with deterministic tie-breaking.

    Heap entries carry a strictly increasing push counter as the final
    tiebreaker, so two events that collide on ``(time, seq)`` — legal
    when a replayed schedule meets dynamically added events — order by
    insertion instead of making ``heapq`` compare :class:`Event`
    objects (which define no ordering).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._next_seq = 0
        self._pushes = 0

    def _push(self, event: Event) -> None:
        heapq.heappush(self._heap,
                       (event.time, event.seq, self._pushes, event))
        self._pushes += 1

    def schedule(self, time: float, kind: str, **payload: Any) -> Event:
        """Add an event at ``time``; later-scheduled ties pop later."""
        if time < 0:
            raise ValueError("cannot schedule before time zero")
        event = Event(time, self._next_seq, kind, payload)
        self._next_seq += 1
        self._push(event)
        return event

    def schedule_event(self, event: Event) -> None:
        """Re-add a pre-built event (replaying a stored schedule).

        The event keeps its own ``seq``; the scheduler's counter is
        advanced past it so dynamically added events still order after
        replayed ones at equal times.
        """
        self._next_seq = max(self._next_seq, event.seq + 1)
        self._push(event)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("no events scheduled")
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Event | None:
        """The earliest event without removing it (None when empty)."""
        return self._heap[0][3] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Pop every event in order."""
        while self._heap:
            yield self.pop()
