"""Unit tests: log records, page ops, log manager, chains, readers."""

import pytest

from repro.errors import LogError
from repro.page.page import Page, PageType
from repro.page.slotted import Record, SlottedPage
from repro.sim.clock import SimClock
from repro.sim.iomodel import HDD_PROFILE, NULL_PROFILE
from repro.sim.stats import Stats
from repro.wal.log_manager import LogManager
from repro.wal.log_reader import LogReader
from repro.wal.lsn import LOG_PAGE_SIZE, LOG_START, NULL_LSN, log_page_of
from repro.wal.ops import (
    OpDelete,
    OpInitSlotted,
    OpInsert,
    OpInverse,
    OpSetGhost,
    OpUpdateValue,
    OpWriteBytes,
    PageOp,
)
from repro.wal.records import (
    BackupRef,
    BackupRefKind,
    CheckpointData,
    LogicalUndo,
    LogRecord,
    LogRecordKind,
    UndoAction,
    compress_image,
    decompress_image,
)

PAGE_SIZE = 1024


def fresh_page() -> Page:
    page = Page.format(PAGE_SIZE, 3, PageType.HEAP)
    SlottedPage(page).initialize()
    return page


def make_log() -> LogManager:
    return LogManager(SimClock(), NULL_PROFILE, Stats())


class TestPageOps:
    def test_insert_redo_undo(self):
        page = fresh_page()
        op = OpInsert(0, b"key", b"value")
        op.apply_redo(page)
        assert SlottedPage(page).read_record(0).value == b"value"
        op.apply_undo(page)
        assert SlottedPage(page).slot_count == 0

    def test_delete_redo_undo(self):
        page = fresh_page()
        SlottedPage(page).insert(0, Record(b"key", b"value"))
        op = OpDelete(0, b"key", b"value")
        op.apply_redo(page)
        assert SlottedPage(page).slot_count == 0
        op.apply_undo(page)
        assert SlottedPage(page).read_record(0).key == b"key"

    def test_update_value_redo_undo(self):
        page = fresh_page()
        SlottedPage(page).insert(0, Record(b"k", b"old"))
        op = OpUpdateValue(0, b"old", b"new")
        op.apply_redo(page)
        assert SlottedPage(page).read_record(0).value == b"new"
        op.apply_undo(page)
        assert SlottedPage(page).read_record(0).value == b"old"

    def test_set_ghost_redo_undo(self):
        page = fresh_page()
        SlottedPage(page).insert(0, Record(b"k", b"v"))
        op = OpSetGhost(0, False, True)
        op.apply_redo(page)
        assert SlottedPage(page).is_ghost(0)
        op.apply_undo(page)
        assert not SlottedPage(page).is_ghost(0)

    def test_write_bytes_redo_undo(self):
        page = fresh_page()
        start = 100
        original = bytes(page.data[start:start + 4])
        op = OpWriteBytes(start, original, b"ABCD")
        op.apply_redo(page)
        assert bytes(page.data[start:start + 4]) == b"ABCD"
        op.apply_undo(page)
        assert bytes(page.data[start:start + 4]) == original

    def test_write_bytes_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OpWriteBytes(0, b"ab", b"abc")

    def test_init_slotted_cannot_undo(self):
        page = fresh_page()
        op = OpInitSlotted(PageType.BTREE_LEAF)
        op.apply_redo(page)
        assert page.page_type == PageType.BTREE_LEAF
        with pytest.raises(LogError):
            op.apply_undo(page)

    def test_inverse_op_redoes_the_undo(self):
        page = fresh_page()
        SlottedPage(page).insert(0, Record(b"k", b"v"))
        inverse = OpInverse(OpInsert(0, b"k", b"v"))
        inverse.apply_redo(page)  # redo of inverse = undo of insert
        assert SlottedPage(page).slot_count == 0
        with pytest.raises(LogError):
            inverse.apply_undo(page)

    @pytest.mark.parametrize("op", [
        OpInsert(3, b"key", b"value", ghost=True),
        OpDelete(2, b"k", b"v", ghost=False),
        OpUpdateValue(1, b"old", b"new"),
        OpSetGhost(4, True, False),
        OpWriteBytes(64, b"1234", b"abcd"),
        OpInitSlotted(PageType.BTREE_BRANCH),
        OpInverse(OpInsert(0, b"a", b"b")),
    ])
    def test_op_serialization_roundtrip(self, op):
        decoded = PageOp.decode(op.encode())
        assert decoded == op or decoded.encode() == op.encode()

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(LogError):
            PageOp.decode(bytes([250]) + b"junk")
        with pytest.raises(LogError):
            PageOp.decode(b"")


class TestLogRecordSerialization:
    def roundtrip(self, record: LogRecord) -> LogRecord:
        return LogRecord.decode(record.encode())

    def test_update_record(self):
        record = LogRecord(
            LogRecordKind.UPDATE, txn_id=9, prev_lsn=100, page_id=7,
            page_prev_lsn=80, index_id=2, op=OpInsert(1, b"k", b"v"),
            undo=LogicalUndo(UndoAction.DELETE_KEY, b"k"))
        out = self.roundtrip(record)
        assert out.txn_id == 9
        assert out.page_prev_lsn == 80
        assert isinstance(out.op, OpInsert)
        assert out.undo.action == UndoAction.DELETE_KEY

    def test_compensation_record(self):
        record = LogRecord(
            LogRecordKind.COMPENSATION, txn_id=3, page_id=4,
            op=OpInverse(OpSetGhost(2, False, True)), undo_next_lsn=55)
        out = self.roundtrip(record)
        assert out.undo_next_lsn == 55
        assert isinstance(out.op, OpInverse)

    def test_commit_records_empty_payload(self):
        for kind in (LogRecordKind.COMMIT, LogRecordKind.SYS_COMMIT,
                     LogRecordKind.ABORT, LogRecordKind.CHECKPOINT_BEGIN):
            out = self.roundtrip(LogRecord(kind, txn_id=1, prev_lsn=10))
            assert out.kind == kind
            assert out.prev_lsn == 10

    def test_full_page_image_record(self):
        image = compress_image(b"\xAA" * 512)
        record = LogRecord(LogRecordKind.FULL_PAGE_IMAGE, page_id=6,
                           page_lsn=400, image=image)
        out = self.roundtrip(record)
        assert decompress_image(out.image) == b"\xAA" * 512
        assert out.page_lsn == 400

    def test_pri_update_record(self):
        record = LogRecord(LogRecordKind.PRI_UPDATE, page_id=12, page_lsn=90,
                           backup_ref=BackupRef.page_copy(44))
        out = self.roundtrip(record)
        assert out.backup_ref == BackupRef(BackupRefKind.PAGE_COPY, 44)
        assert out.page_lsn == 90

    def test_checkpoint_record(self):
        checkpoint = CheckpointData({5: 100, 9: 220}, [(1, 300, False),
                                                       (2, 310, True)])
        out = self.roundtrip(LogRecord(LogRecordKind.CHECKPOINT_END,
                                       checkpoint=checkpoint))
        assert out.checkpoint.dirty_pages == {5: 100, 9: 220}
        assert out.checkpoint.active_txns == [(1, 300, False), (2, 310, True)]

    def test_backup_full_record(self):
        out = self.roundtrip(LogRecord(LogRecordKind.BACKUP_FULL, backup_id=8))
        assert out.backup_id == 8

    def test_truncated_record_rejected(self):
        data = LogRecord(LogRecordKind.COMMIT, txn_id=1).encode()
        with pytest.raises(LogError):
            LogRecord.decode(data[:10])
        with pytest.raises(LogError):
            LogRecord.decode(data + b"x")


class TestLogManager:
    def test_lsns_are_byte_offsets(self):
        log = make_log()
        first = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=1))
        second = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=2))
        assert first == LOG_START
        assert second - first == len(log.record_at(first).encode())

    def test_force_advances_durable(self):
        log = make_log()
        lsn = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=1))
        assert log.durable_lsn == NULL_LSN
        log.force()
        assert log.durable_lsn > lsn

    def test_force_is_idempotent(self):
        stats = Stats()
        log = LogManager(SimClock(), NULL_PROFILE, stats)
        log.append(LogRecord(LogRecordKind.COMMIT, txn_id=1))
        log.force()
        log.force()
        assert stats.get("log_forces") == 1

    def test_crash_discards_unforced_tail(self):
        log = make_log()
        keep = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=1))
        log.force()
        lose = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=2))
        log.crash()
        assert log.has_record(keep)
        assert not log.has_record(lose)
        assert log.end_lsn == log.durable_lsn

    def test_append_after_crash_reuses_offsets(self):
        log = make_log()
        log.append(LogRecord(LogRecordKind.COMMIT, txn_id=1))
        log.force()
        lost = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=2))
        log.crash()
        fresh = log.append(LogRecord(LogRecordKind.COMMIT, txn_id=3))
        assert fresh == lost  # same byte offset, new record

    def test_master_checkpoint_survives_only_if_forced(self):
        log = make_log()
        log.log_checkpoint_end(CheckpointData())
        master = log.master_checkpoint_lsn
        log.crash()
        assert log.master_checkpoint_lsn == master

    def test_records_from(self):
        log = make_log()
        lsns = [log.append(LogRecord(LogRecordKind.COMMIT, txn_id=i))
                for i in range(5)]
        tail = log.records_from(lsns[2])
        assert [r.txn_id for r in tail] == [2, 3, 4]

    def test_log_force_charges_time(self):
        clock = SimClock()
        log = LogManager(clock, HDD_PROFILE, Stats())
        log.append(LogRecord(LogRecordKind.COMMIT, txn_id=1))
        log.force()
        assert clock.now > 0


class TestLogReader:
    def build_chain(self, log: LogManager, page_id: int, n: int) -> list[int]:
        """Append n update records chained for one page."""
        lsns = []
        prev = NULL_LSN
        for i in range(n):
            record = LogRecord(LogRecordKind.UPDATE, txn_id=1, page_id=page_id,
                               page_prev_lsn=prev,
                               op=OpInsert(i, b"k%d" % i, b"v"))
            prev = log.append(record)
            lsns.append(prev)
        return lsns

    def test_walk_page_chain_returns_oldest_first(self):
        log = make_log()
        lsns = self.build_chain(log, 7, 5)
        reader = LogReader(log, SimClock(), NULL_PROFILE, Stats())
        records = reader.walk_page_chain(lsns[-1], NULL_LSN)
        assert [r.lsn for r in records] == lsns

    def test_walk_stops_at_backup_lsn(self):
        log = make_log()
        lsns = self.build_chain(log, 7, 6)
        reader = LogReader(log, SimClock(), NULL_PROFILE, Stats())
        records = reader.walk_page_chain(lsns[-1], lsns[2])
        assert [r.lsn for r in records] == lsns[3:]

    def test_chain_reads_charge_per_log_page(self):
        clock = SimClock()
        stats = Stats()
        log = LogManager(clock, NULL_PROFILE, stats)
        # Spread records across several log pages with bulky images.
        prev = NULL_LSN
        lsns = []
        for _ in range(10):
            record = LogRecord(LogRecordKind.UPDATE, txn_id=1, page_id=3,
                               page_prev_lsn=prev,
                               op=OpInsert(0, b"k", b"x" * (LOG_PAGE_SIZE // 2)))
            prev = log.append(record)
            lsns.append(prev)
        reader = LogReader(log, clock, HDD_PROFILE, stats)
        reader.walk_page_chain(lsns[-1], NULL_LSN)
        distinct_pages = len({log_page_of(lsn) for lsn in lsns})
        assert reader.pages_read == pytest.approx(distinct_pages, abs=2)
        assert clock.now > 0

    def test_cached_log_pages_not_recharged(self):
        log = make_log()
        lsns = self.build_chain(log, 7, 20)  # tiny records: one log page
        reader = LogReader(log, SimClock(), NULL_PROFILE, Stats())
        reader.walk_page_chain(lsns[-1], NULL_LSN)
        assert reader.pages_read == 1
        assert reader.records_read == 20

    def test_scan_from(self):
        log = make_log()
        lsns = self.build_chain(log, 7, 4)
        reader = LogReader(log, SimClock(), NULL_PROFILE, Stats())
        records = reader.scan_from(lsns[1])
        assert [r.lsn for r in records] == lsns[1:]

    def test_missing_record_raises(self):
        log = make_log()
        reader = LogReader(log, SimClock(), NULL_PROFILE, Stats())
        with pytest.raises(LogError):
            reader.read(999999)
