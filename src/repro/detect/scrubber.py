"""Disk scrubbing: proactive verification of stored pages.

Bairavasundaram et al. (the paper's motivation) found that a majority
of latent sector errors are discovered "during 'disk scrubbing', i.e.,
occasional re-reading of all disk pages to verify their contents by
their checksums".  The scrubber does exactly that — and, unlike the
offline utilities of Section 2, it can hand every failed page straight
to single-page recovery, so damage is repaired the moment it is found
rather than reported to an administrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.recovery_manager import RecoveryManager
from repro.errors import MediaFailure, PageFailureKind, SinglePageFailure, SystemFailure
from repro.page.page import Page
from repro.sim.stats import Stats
from repro.storage.device import DeviceReadError, StorageDevice


@dataclass
class ScrubReport:
    """Outcome of one scrubbing pass."""

    pages_scanned: int = 0
    pages_skipped: int = 0
    failures_found: int = 0
    failures_repaired: int = 0
    failures_by_kind: dict[str, int] = field(default_factory=dict)
    unrepairable: list[int] = field(default_factory=list)

    def note_failure(self, kind: PageFailureKind) -> None:
        self.failures_found += 1
        self.failures_by_kind[kind.value] = (
            self.failures_by_kind.get(kind.value, 0) + 1)


class Scrubber:
    """Scans a page range, verifying and optionally repairing."""

    def __init__(self, device: StorageDevice, manager: RecoveryManager,
                 stats: Stats,
                 skip: Callable[[int], bool] | None = None) -> None:
        self.device = device
        self.manager = manager
        self.stats = stats
        self.skip = skip or (lambda page_id: False)

    def scrub(self, first_page: int, last_page: int,
              repair: bool = True) -> ScrubReport:
        """Verify pages in ``[first_page, last_page)``.

        With ``repair``, failed pages go through single-page recovery
        immediately; without it, the pass only reports (like a classic
        verification utility).
        """
        report = ScrubReport()
        for page_id in range(first_page, last_page):
            if self.skip(page_id):
                report.pages_skipped += 1
                continue
            if self.device.raw_image(page_id) is None:
                # Never written: nothing on the medium to verify.
                report.pages_skipped += 1
                continue
            report.pages_scanned += 1
            failure = self._verify_one(page_id)
            if failure is None:
                continue
            report.note_failure(failure.kind)
            self.stats.bump("scrub_failures_found")
            if not repair:
                continue
            try:
                self.manager.handle_failure(failure)
                report.failures_repaired += 1
            except (MediaFailure, SystemFailure):
                report.unrepairable.append(page_id)
                raise
        self.stats.bump("scrub_passes")
        return report

    def scrub_incremental(self, cursor: int, budget_pages: int,
                          last_page: int, repair: bool = True
                          ) -> tuple[int, ScrubReport]:
        """Continuous scrubbing with a per-call page budget.

        Borisov et al. (cited in Section 2) advocate running integrity
        checks "proactively and continuously" at bounded cost; this is
        the scrubbing variant of that idea: each call verifies at most
        ``budget_pages`` starting at ``cursor`` and returns the next
        cursor (wrapping at ``last_page``), so a background loop can
        amortize a full device pass over many idle slices.
        """
        if last_page <= 0:
            return 0, ScrubReport()
        cursor %= last_page
        end = min(cursor + budget_pages, last_page)
        report = self.scrub(cursor, end, repair=repair)
        next_cursor = end % last_page
        return next_cursor, report

    def _verify_one(self, page_id: int) -> SinglePageFailure | None:
        try:
            raw = self.device.read(page_id)
        except DeviceReadError as exc:
            return SinglePageFailure(
                page_id, PageFailureKind.DEVICE_READ_ERROR, str(exc))
        page = Page(self.device.page_size, raw)
        try:
            page.verify(expected_page_id=page_id)
            expected = self.manager.pri.expected_page_lsn(page_id)
            if expected is not None and page.page_lsn < expected:
                return SinglePageFailure(
                    page_id, PageFailureKind.STALE_LSN,
                    f"PageLSN {page.page_lsn} < expected {expected}")
        except SinglePageFailure as failure:
            return failure
        return None
