"""Integration tests: engine facade — allocation, metadata, transactions,
auto-commit helpers, multiple indexes, lifecycle guards."""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import (
    ConfigError,
    DuplicateKey,
    MediaFailure,
    SystemFailure,
)
from tests.conftest import fast_config, key_of, value_of


class TestConfig:
    def test_spf_forces_write_logging(self):
        cfg = fast_config(spf_enabled=True, log_completed_writes=False)
        assert cfg.log_completed_writes

    def test_layout_regions(self):
        cfg = fast_config(pri_region_pages_per_partition=4)
        assert cfg.pri_region_start == 1
        assert cfg.pri_region_end == 9
        assert cfg.data_start == 9

    def test_too_small_capacity_rejected(self):
        with pytest.raises(ValueError):
            fast_config(capacity_pages=4)


class TestAllocation:
    def test_data_pages_allocated_sequentially(self, db):
        first = db.allocated_pages()
        tree = db.create_index()
        assert db.allocated_pages() == first + 1
        assert db.get_root(tree.index_id) == first

    def test_allocation_exhaustion_is_media_failure(self):
        db = Database(fast_config(capacity_pages=24,
                                  pri_region_pages_per_partition=2))
        tree = db.create_index()
        with pytest.raises(MediaFailure):
            txn = db.begin()
            for i in range(100_000):
                tree.insert(txn, key_of(i), b"v" * 64)

    def test_formatted_page_backed_by_format_record(self, db):
        from repro.wal.records import BackupRefKind

        tree = db.create_index()
        root = db.get_root(tree.index_id)
        entry = db.pri.lookup(root)
        assert entry.backup_ref.kind == BackupRefKind.FORMAT_RECORD


class TestIndexes:
    def test_multiple_independent_indexes(self, db):
        a = db.create_index()
        b = db.create_index()
        txn = db.begin()
        a.insert(txn, b"k", b"in-a")
        b.insert(txn, b"k", b"in-b")
        db.commit(txn)
        assert a.lookup(b"k") == b"in-a"
        assert b.lookup(b"k") == b"in-b"

    def test_index_ids_stable_across_restart(self, db):
        a = db.create_index()
        txn = db.begin()
        a.insert(txn, b"k", b"v")
        db.commit(txn)
        db.crash()
        db.restart()
        assert db.tree(a.index_id).lookup(b"k") == b"v"

    def test_unknown_index_rejected(self, db):
        with pytest.raises(ConfigError):
            db.tree(99).lookup(b"k")


class TestAutoCommitHelpers:
    def test_insert_update_delete(self, db):
        tree = db.create_index()
        db.insert(tree, b"k", b"v1")
        assert tree.lookup(b"k") == b"v1"
        db.update(tree, b"k", b"v2")
        assert tree.lookup(b"k") == b"v2"
        db.delete(tree, b"k")
        assert not tree.contains(b"k")

    def test_failed_auto_op_rolls_back(self, db):
        tree = db.create_index()
        db.insert(tree, b"k", b"v")
        with pytest.raises(DuplicateKey):
            db.insert(tree, b"k", b"other")
        assert tree.lookup(b"k") == b"v"
        assert db.stats.get("txns_aborted") == 1

    def test_explicit_txn_passthrough(self, db):
        tree = db.create_index()
        txn = db.begin()
        db.insert(tree, b"k", b"v", txn=txn)
        db.abort(txn)
        assert not tree.contains(b"k")


class TestLocks:
    def test_conflicting_writers_blocked(self, db):
        from repro.txn.locks import LockConflict

        tree = db.create_index()
        t1 = db.begin()
        db.insert(tree, b"hot", b"v1", txn=t1)
        t2 = db.begin()
        with pytest.raises(LockConflict):
            db.update(tree, b"hot", b"v2", txn=t2)
        db.commit(t1)
        # t1's locks released; t2 can now proceed.
        db.update(tree, b"hot", b"v2", txn=t2)
        db.commit(t2)
        assert tree.lookup(b"hot") == b"v2"


class TestLifecycleGuards:
    def test_crashed_database_requires_restart(self, db):
        db.crash()
        with pytest.raises(SystemFailure):
            db.begin()
        db.restart()
        db.begin()

    def test_media_failed_database_requires_recovery(self, db):
        tree = db.create_index()
        db.insert(tree, b"k", b"v")
        backup_id = db.take_full_backup()
        db._media_failed = True
        with pytest.raises(MediaFailure):
            db.begin()
        db.recover_media(backup_id)
        db.begin()


class TestInLogImages:
    def test_take_log_image_becomes_backup(self, db):
        from repro.wal.records import BackupRefKind

        tree = db.create_index()
        txn = db.begin()
        for i in range(20):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        root = db.get_root(tree.index_id)
        db.take_log_image(root)
        entry = db.pri.lookup(root)
        assert entry.backup_ref.kind == BackupRefKind.LOG_IMAGE
        # And it actually drives recovery.
        db.flush_everything()
        db.evict_everything()
        db.device.inject_read_error(root)
        assert tree.lookup(key_of(0)) == value_of(0, 0)


class TestStatsAndTime:
    def test_simulated_time_advances_with_real_profiles(self):
        from repro.sim.iomodel import HDD_PROFILE

        db = Database(fast_config(device_profile=HDD_PROFILE,
                                  log_profile=HDD_PROFILE))
        tree = db.create_index()
        db.insert(tree, b"k", b"v")
        db.flush_everything()
        assert db.clock.now > 0

    def test_operation_counters(self, db):
        tree = db.create_index()
        db.insert(tree, b"k", b"v")
        assert db.stats.get("btree_inserts") == 1
        assert db.stats.get("user_txns_committed") == 1
        assert db.stats.get("log_records") > 0
