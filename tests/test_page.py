"""Unit tests: page format, checksums, slotted pages."""

import pytest

from repro.errors import PageFailureKind, SinglePageFailure
from repro.page.checksum import compute_checksum, store_checksum, verify_checksum
from repro.page.page import HEADER_SIZE, NULL_LSN, Page, PageType
from repro.page.slotted import PageFullError, Record, SlottedPage

PAGE_SIZE = 1024


def make_slotted(page_id: int = 7) -> tuple[Page, SlottedPage]:
    page = Page.format(PAGE_SIZE, page_id, PageType.HEAP)
    slotted = SlottedPage(page)
    slotted.initialize()
    return page, slotted


class TestChecksum:
    def test_roundtrip(self):
        buf = bytearray(b"\x01" * 64)
        store_checksum(buf)
        assert verify_checksum(buf)

    def test_detects_any_flip(self):
        buf = bytearray(b"\x00" * 64)
        store_checksum(buf)
        for byte in (0, 10, 63):
            corrupted = bytearray(buf)
            corrupted[byte] ^= 0x40
            assert not verify_checksum(corrupted), f"flip at {byte} missed"

    def test_checksum_field_excluded(self):
        """The stored checksum does not feed its own computation."""
        buf = bytearray(b"\x07" * 64)
        crc_before = compute_checksum(buf)
        store_checksum(buf)
        assert compute_checksum(buf) == crc_before


class TestPage:
    def test_format_produces_valid_page(self):
        page = Page.format(PAGE_SIZE, 42, PageType.BTREE_LEAF)
        assert page.page_id == 42
        assert page.page_type == PageType.BTREE_LEAF
        assert page.page_lsn == NULL_LSN
        assert page.checksum_ok()
        page.verify(expected_page_id=42)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            Page(HEADER_SIZE)

    def test_page_lsn_bumps_update_count(self):
        page = Page.format(PAGE_SIZE, 1)
        assert page.update_count == 0
        page.page_lsn = 100
        page.page_lsn = 200
        assert page.update_count == 2
        page.reset_update_count()
        assert page.update_count == 0

    def test_verify_bad_magic(self):
        page = Page.format(PAGE_SIZE, 1)
        page.data[0] = 0
        with pytest.raises(SinglePageFailure) as info:
            page.verify(expected_page_id=1)
        assert info.value.kind == PageFailureKind.BAD_MAGIC

    def test_verify_checksum_mismatch(self):
        page = Page.format(PAGE_SIZE, 1)
        page.data[100] ^= 0xFF
        with pytest.raises(SinglePageFailure) as info:
            page.verify(expected_page_id=1)
        assert info.value.kind == PageFailureKind.CHECKSUM_MISMATCH

    def test_verify_wrong_page_id(self):
        """A misdirected write: internally consistent, wrong address."""
        page = Page.format(PAGE_SIZE, 5)
        with pytest.raises(SinglePageFailure) as info:
            page.verify(expected_page_id=9)
        assert info.value.kind == PageFailureKind.WRONG_PAGE_ID
        assert info.value.page_id == 9

    def test_verify_unknown_page_type(self):
        page = Page.format(PAGE_SIZE, 1)
        page.data[24] = 200
        page.seal()
        with pytest.raises(SinglePageFailure) as info:
            page.verify(expected_page_id=1)
        assert info.value.kind == PageFailureKind.HEADER_IMPLAUSIBLE

    def test_copy_is_deep(self):
        page = Page.format(PAGE_SIZE, 1)
        clone = page.copy()
        clone.data[100] = 0xAB
        assert page.data[100] != 0xAB


class TestSlottedPage:
    def test_insert_and_read(self):
        _page, slotted = make_slotted()
        slotted.insert(0, Record(b"b", b"2"))
        slotted.insert(0, Record(b"a", b"1"))
        slotted.insert(2, Record(b"c", b"3"))
        assert [r.key for r in slotted.records()] == [b"a", b"b", b"c"]
        assert slotted.read_record(1).value == b"2"

    def test_insert_shifts_slots(self):
        _page, slotted = make_slotted()
        for i, key in enumerate([b"a", b"c", b"d"]):
            slotted.insert(i, Record(key, b"x"))
        slotted.insert(1, Record(b"b", b"x"))
        assert [r.key for r in slotted.records()] == [b"a", b"b", b"c", b"d"]

    def test_record_key_matches_read(self):
        _page, slotted = make_slotted()
        slotted.insert(0, Record(b"key", b"value"))
        assert slotted.record_key(0) == b"key"

    def test_ghost_records_hidden_by_default(self):
        _page, slotted = make_slotted()
        slotted.insert(0, Record(b"a", b"1"))
        slotted.insert(1, Record(b"b", b"2", ghost=True))
        assert [r.key for r in slotted.records()] == [b"a"]
        assert [r.key for r in slotted.records(include_ghosts=True)] == [b"a", b"b"]

    def test_mark_ghost_toggle(self):
        _page, slotted = make_slotted()
        slotted.insert(0, Record(b"a", b"1"))
        slotted.mark_ghost(0, True)
        assert slotted.is_ghost(0)
        slotted.mark_ghost(0, False)
        assert not slotted.is_ghost(0)

    def test_update_value_in_place(self):
        _page, slotted = make_slotted()
        slotted.insert(0, Record(b"a", b"long-original"))
        slotted.update_value(0, b"short")
        assert slotted.read_record(0).value == b"short"
        assert slotted.frag_bytes > 0

    def test_update_value_grow_relocates(self):
        _page, slotted = make_slotted()
        slotted.insert(0, Record(b"a", b"s"))
        slotted.insert(1, Record(b"b", b"t"))
        slotted.update_value(0, b"x" * 100)
        assert slotted.read_record(0).value == b"x" * 100
        assert slotted.read_record(1).value == b"t"
        slotted.check_plausible()

    def test_remove_reclaims_via_compaction(self):
        _page, slotted = make_slotted()
        for i in range(5):
            slotted.insert(i, Record(b"k%d" % i, b"v" * 50))
        free_before = slotted.free_space
        slotted.remove(2)
        assert [r.key for r in slotted.records()] == [b"k0", b"k1", b"k3", b"k4"]
        slotted.compact()
        assert slotted.free_space > free_before
        slotted.check_plausible()

    def test_page_full(self):
        _page, slotted = make_slotted()
        with pytest.raises(PageFullError):
            for i in range(1000):
                slotted.insert(i, Record(b"k%03d" % i, b"v" * 20))
        assert not slotted.room_for(Record(b"x", b"v" * 20))

    def test_compaction_makes_room(self):
        """Fragmented space is reclaimed rather than failing the insert."""
        _page, slotted = make_slotted()
        big = b"v" * 80
        count = 0
        while slotted.room_for(Record(b"k%03d" % count, big)):
            slotted.insert(count, Record(b"k%03d" % count, big))
            count += 1
        # Shrink every record, creating fragmentation only.
        for i in range(count):
            slotted.update_value(i, b"s")
        # Now a large insert must succeed via compaction.
        slotted.insert(count, Record(b"zzz", big))
        assert slotted.read_record(count).key == b"zzz"
        slotted.check_plausible()

    def test_update_too_large_rejected_without_damage(self):
        _page, slotted = make_slotted()
        slotted.insert(0, Record(b"a", b"x"))
        with pytest.raises(PageFullError):
            slotted.update_value(0, b"y" * 5000)
        assert slotted.read_record(0).value == b"x"

    def test_plausibility_catches_bad_slot_offset(self):
        page, slotted = make_slotted()
        slotted.insert(0, Record(b"a", b"1"))
        pos = slotted._slot_pos(0)
        page.data[pos:pos + 2] = (60000).to_bytes(2, "little")
        with pytest.raises(SinglePageFailure) as info:
            slotted.check_plausible()
        assert info.value.kind == PageFailureKind.HEADER_IMPLAUSIBLE

    def test_plausibility_catches_heap_overlap(self):
        page, slotted = make_slotted()
        slotted.insert(0, Record(b"a", b"1"))
        # Claim the heap extends into the slot directory.
        import struct

        struct.pack_into("<H", page.data, 32 + 2, PAGE_SIZE - 1)
        with pytest.raises(SinglePageFailure):
            slotted.check_plausible()

    def test_plausibility_catches_impossible_key_length(self):
        page, slotted = make_slotted()
        slotted.insert(0, Record(b"abc", b"1"))
        offset, _length, _ghost = slotted._read_slot(0)
        page.data[offset:offset + 2] = (5000).to_bytes(2, "little")
        with pytest.raises(SinglePageFailure):
            slotted.check_plausible()
