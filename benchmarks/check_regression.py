"""Compare a fresh BENCH snapshot against the committed baseline.

Usage::

    python benchmarks/check_regression.py BASELINE.json CANDIDATE.json

Fails (exit 1) if any *tracked* metric regresses more than the
tolerance (25% by default, ``BENCH_REGRESSION_TOLERANCE`` to
override).  Tracked metrics are the deterministic simulated-cost
quantities — log reads per recovery, simulated time-to-first-
transaction, log forces — not wall-clock throughput, which varies
with CI hardware and is reported informationally only.
"""

from __future__ import annotations

import json
import os
import sys

#: (json path, direction[, tolerance]) — "lower" means higher-than-
#: baseline values are a regression.  Paths index dicts by key and
#: lists by position.  The optional third element overrides the global
#: tolerance for that metric (wall-clock quantities get loose bounds).
TRACKED: list[tuple] = [
    (("recovery_ios_vs_log_volume", "points", -1, "log_pages_read"), "lower"),
    (("recovery_ios_vs_log_volume", "points", -1, "total_random_ios"), "lower"),
    (("group_commit", "batched", "log_forces"), "lower"),
    (("instant_restart_ttft", "points", 0, "on_demand", "ttft_seconds"), "lower"),
    (("instant_restart_ttft", "points", -1, "on_demand", "ttft_seconds"), "lower"),
    (("instant_restore_ttft", "points", 0, "on_demand", "ttft_seconds"), "lower"),
    (("instant_restore_ttft", "points", -1, "on_demand", "ttft_seconds"), "lower"),
    # Concurrency snapshot (BENCH_concurrency.json): the single-thread
    # forces-per-commit is deterministic (every commit leads its own
    # force); the multi-thread ratio is wall-clock-sensitive, so its
    # 0.5x amortization bound is enforced as a run_all probe criterion
    # rather than a regression delta.
    (("commit_throughput", "points", 0, "forces_per_commit"), "lower"),
]

#: Latency snapshot (BENCH_latency.json): pure wall-clock numbers, so
#: each carries a tolerance wide enough that only order-of-magnitude
#: regressions trip the gate — p50/p99 may grow up to 2.5x and
#: throughput may drop to 0.4x before failing.  The p999s get extra
#: headroom: at a few hundred to a few thousand samples the p999 is
#: within interpolation distance of the max, i.e. one scheduler or GC
#: outlier away from doubling.  Structural criteria (monotone
#: percentiles, the 3x-vs-pre-rewrite floor) are enforced at probe
#: time and surface here through ``probe_failures``.
_WALL_CLOCK_TOLERANCE = 1.5
_TAIL_TOLERANCE = 4.0
TRACKED += [
    (("latency", op, pct), "lower", _WALL_CLOCK_TOLERANCE)
    for op in ("insert", "lookup", "commit")
    for pct in ("p50_us", "p99_us")
]
TRACKED += [
    (("latency", op, "p999_us"), "lower", _TAIL_TOLERANCE)
    for op in ("insert", "lookup", "commit")
]
TRACKED += [(("latency", "ops_per_second"), "higher", 0.6)]

#: Replication snapshot (BENCH_replication.json): deterministic
#: simulated quantities.  The warm-replica repair must stay I/O-free
#: (baseline 0, so *any* random read or replayed record trips the
#: gate); the ack costs are simulated seconds, not wall clock.
TRACKED += [
    (("repair_source", "replica", "total_random_ios"), "lower"),
    (("repair_source", "replica", "records_applied"), "lower"),
    (("repair_source", "replica", "backup_fetches"), "lower"),
    (("ack_modes", "replicated_durable_unbatched", "per_commit_ms"), "lower"),
    (("ack_modes", "ack_overhead_ms_batched"), "lower"),
]

#: Sharding snapshot (BENCH_sharding.json): the commit-throughput
#: speedup and the per-shard makespan are simulated quantities
#: (deterministic — the cost model decides them, not the CI host), so
#: they take the default tolerance.  The >= 2.5x floor itself is a
#: run_all probe criterion and surfaces through ``probe_failures``.
TRACKED += [
    (("sharded_throughput", "speedup"), "higher"),
    (("sharded_throughput", "sharded", "sim_seconds_makespan"), "lower"),
    (("sharded_throughput", "single", "sim_seconds"), "lower"),
]


#: Rebalance snapshot (BENCH_rebalance.json): both makespans are
#: simulated per-shard time (deterministic), so they take the default
#: tolerance.  The >= 1.5x floor and the no-lost-key scan diff are
#: run_all probe criteria and surface through ``probe_failures``.
TRACKED += [
    (("skewed_rebalance", "speedup"), "higher"),
    (("skewed_rebalance", "skewed", "sim_seconds_makespan"), "lower"),
    (("skewed_rebalance", "rebalanced", "sim_seconds_makespan"), "lower"),
]


#: Dip snapshot (BENCH_dip.json): everything is simulated time, so the
#: quantities are deterministic.  Time-to-recovery is measured in op
#: indices at sliding-window granularity (one step of slack either way
#: is legitimate), hence the one-step-friendly tolerances; the >= 30%
#: improvement floor and the <= 25% waste ceiling are probe criteria
#: and surface through ``probe_failures``.
TRACKED += [
    (("dip", "improvement"), "higher"),
    (("dip", "off", "time_to_p99_recovery_ops"), "lower"),
    (("dip", "semantic", "time_to_p99_recovery_ops"), "lower", 1.0),
    (("dip", "prefetch", "hit_ratio"), "higher"),
    # waste_ratio is deliberately untracked here: its baseline is 0.0,
    # which the delta gate would turn into "any waste at all fails";
    # the <= 25% ceiling is enforced as a probe criterion instead.
]


def lookup(snapshot: dict, path: tuple):
    node = snapshot
    for step in path:
        if isinstance(step, int):
            node = node[step]
        else:
            node = node.get(step) if isinstance(node, dict) else None
        if node is None:
            return None
    return node


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fh:
        baseline = json.load(fh)
    with open(sys.argv[2]) as fh:
        candidate = json.load(fh)
    tolerance = float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.25"))

    failures = []
    for path, direction, *override in TRACKED:
        name = ".".join(str(p) for p in path)
        base = lookup(baseline, path)
        cand = lookup(candidate, path)
        if base is None:
            # Metric new in this candidate: nothing to regress against.
            print(f"  (new) {name} = {cand}")
            continue
        if cand is None:
            failures.append(f"{name}: present in baseline, missing now")
            continue
        metric_tolerance = override[0] if override else tolerance
        if direction == "lower":
            limit = base * (1 + metric_tolerance)
            regressed = cand > limit and cand - base > 1e-9
        else:
            limit = base * (1 - metric_tolerance)
            regressed = cand < limit
        marker = "REGRESSED" if regressed else "ok"
        print(f"  [{marker}] {name}: baseline={base} candidate={cand} "
              f"(limit {limit:.4g})")
        if regressed:
            failures.append(
                f"{name}: {base} -> {cand} (> {metric_tolerance:.0%} worse)")

    if candidate.get("probe_failures"):
        failures.extend(
            f"probe failure: {f}" for f in candidate["probe_failures"])

    if failures:
        print("\nBenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nBenchmark regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
