"""Shared fixtures.

Unit tests run on the free NULL profile so simulated time never
dominates; timing-sensitive experiments build their own clocks with
realistic profiles.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro import Database, EngineConfig
from repro.core.backup import BackupPolicy
from repro.sim.clock import SimClock
from repro.sim.iomodel import NULL_PROFILE
from repro.sim.stats import Stats
from repro.storage.device import StorageDevice
from repro.storage.faults import FaultInjector
from repro.wal.log_manager import LogManager

PAGE_SIZE = 4096


@pytest.fixture(autouse=True)
def _seed_ambient_rng(request: pytest.FixtureRequest) -> None:
    """Seed the global ``random`` module per test, from the test's own
    node id.  Torture/matrix tests that use ambient randomness are then
    reproducible in isolation — the seed no longer depends on module
    import order or on which tests ran earlier in the session."""
    random.seed(zlib.crc32(request.node.nodeid.encode()))


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def stats() -> Stats:
    return Stats()


@pytest.fixture
def device(clock: SimClock, stats: Stats) -> StorageDevice:
    return StorageDevice("test0", PAGE_SIZE, 256, clock, NULL_PROFILE, stats,
                         FaultInjector(seed=1))


@pytest.fixture
def log(clock: SimClock, stats: Stats) -> LogManager:
    return LogManager(clock, NULL_PROFILE, stats)


def fast_config(**overrides) -> EngineConfig:  # noqa: ANN003
    """Engine config with free I/O for unit/integration tests."""
    base = dict(
        page_size=PAGE_SIZE,
        capacity_pages=512,
        buffer_capacity=32,
        device_profile=NULL_PROFILE,
        log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE,
        backup_policy=BackupPolicy(every_n_updates=64),
    )
    base.update(overrides)
    return EngineConfig(**base)


@pytest.fixture
def db() -> Database:
    return Database(fast_config())


@pytest.fixture
def loaded_db() -> Database:
    """A database with one index holding 300 committed keys."""
    database = Database(fast_config())
    tree = database.create_index()
    txn = database.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    database.commit(txn)
    return database


def key_of(i: int) -> bytes:
    return b"k%06d" % i


def value_of(i: int, version: int) -> bytes:
    return b"v%d.%d" % (i, version)


# ----------------------------------------------------------------------
# Differential recovery oracles (eager vs. on-demand restart)
# ----------------------------------------------------------------------
def clone_crashed(db: Database) -> Database:
    """Deep-copy a crashed database so one crash image can be
    recovered independently under different restart modes."""
    import copy

    return copy.deepcopy(db)


def log_shape(db: Database) -> list[tuple]:
    """The log as a comparable sequence (identical recovery must
    append identical records at identical LSNs)."""
    return [(r.lsn, r.kind, r.txn_id, r.page_id, r.page_lsn,
             r.page_prev_lsn, r.prev_lsn)
            for r in db.log.all_records()]


def device_images(db: Database) -> dict[int, bytes]:
    """Byte image of every allocated page after flushing everything."""
    db.flush_everything()
    images: dict[int, bytes] = {}
    for page_id in range(db.allocated_pages()):
        raw = db.device.raw_image(page_id)
        if raw is not None:
            images[page_id] = bytes(raw)
    return images


def assert_identical_recovery(eager_db: Database,
                              on_demand_db: Database) -> None:
    """Both databases recovered the same crash image different ways:
    they must agree byte-for-byte and key-for-key."""
    assert log_shape(eager_db) == log_shape(on_demand_db)
    assert device_images(eager_db) == device_images(on_demand_db)
    for index_id in eager_db.indexes:
        eager_scan = dict(eager_db.tree(index_id).range_scan())
        lazy_scan = dict(on_demand_db.tree(index_id).range_scan())
        assert eager_scan == lazy_scan
