"""Integration tests: engine configuration modes and log retention."""

from repro.engine.database import Database
from tests.conftest import fast_config, key_of, value_of


def loaded(n=200, **overrides):
    db = Database(fast_config(**overrides))
    tree = db.create_index()
    txn = db.begin()
    for i in range(n):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    return db, tree


class TestUnpartitionedPri:
    """The engine with a single (non-partitioned) recovery index."""

    def test_recovery_works(self):
        db, tree = loaded(pri_partitioned=False)
        db.flush_everything()
        db.evict_everything()
        page, _n = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_bit_rot(victim, nbits=5)
        assert tree.lookup(key_of(0)) == value_of(0, 0)
        assert db.stats.get("single_page_recoveries") == 1

    def test_checkpoint_persist_and_reload(self):
        db, tree = loaded(pri_partitioned=False)
        db.checkpoint()
        recorded = {pid: db.pri.recorded_lsn(pid)
                    for pid in range(db.allocated_pages())
                    if db.pri.recorded_lsn(pid) is not None}
        assert recorded
        db.crash()
        db.restart()
        for pid, lsn in recorded.items():
            assert db.pri.recorded_lsn(pid) == lsn

    def test_crash_recovery(self):
        db, tree = loaded(pri_partitioned=False)
        txn = db.begin()
        tree.update(txn, key_of(0), b"loser")
        db.crash()
        db.restart()
        tree = db.tree(1)
        assert tree.lookup(key_of(0)) == value_of(0, 0)


class TestProofReadMode:
    def test_lost_write_caught_at_write_time(self):
        """Proof-reading turns a lost write into a write-time remap,
        before it can ever become a read-time failure (Section 2)."""
        db, tree = loaded(proof_read_writes=True)
        db.flush_everything()
        db.evict_everything()
        page, _n = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_lost_write(victim)
        txn = db.begin()
        tree.update(txn, key_of(0), b"proofed")
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        assert db.stats.get("proof_read_failures") >= 1
        # Caught at write time: the read path never sees a failure.
        assert tree.lookup(key_of(0)) == b"proofed"
        assert db.stats.get("single_page_recoveries") == 0


class TestLogRetention:
    def test_truncation_respects_backups(self):
        """Per-page backups advance the retention bound; recovery still
        works after the head is reclaimed."""
        from repro.core.backup import BackupPolicy

        db, tree = loaded(backup_policy=BackupPolicy(every_n_updates=8))
        db.flush_everything()
        db.evict_everything()
        # Heavy update traffic; copies keep backups fresh.
        for wave in range(1, 5):
            txn = db.begin()
            for i in range(200):
                tree.update(txn, key_of(i), value_of(i, wave))
            db.commit(txn)
            db.flush_everything()
        db.checkpoint()
        size_before = db.log.retained_bytes()
        freed = db.truncate_log()
        assert freed > 0
        assert db.log.retained_bytes() < size_before
        # Single-page recovery still works for every data page.
        db.evict_everything()
        page, _n = tree._descend(key_of(0), for_write=False)
        victim = page.page_id
        db.unfix(victim)
        db.evict_everything()
        db.device.inject_read_error(victim)
        assert tree.lookup(key_of(0)) == value_of(0, 4)

    def test_bound_blocks_on_stale_backups(self):
        """Without page backups, the oldest format record pins the log."""
        from repro.core.backup import BackupPolicy

        db, tree = loaded(backup_policy=BackupPolicy.disabled())
        db.flush_everything()
        db.checkpoint()
        bound = db.log_retention_bound()
        # The bound cannot pass the first page's formatting record,
        # which sits near the head of the log.
        from repro.wal.lsn import LOG_START

        assert bound < db.log.master_checkpoint_lsn
        assert bound <= LOG_START + 2000

    def test_active_txn_pins_log(self):
        db, tree = loaded()
        db.checkpoint()
        txn = db.begin()
        tree.update(txn, key_of(0), b"pinning")
        bound = db.log_retention_bound()
        assert bound <= txn.first_lsn
        db.commit(txn)

    def test_restart_after_truncation(self):
        from repro.core.backup import BackupPolicy

        db, tree = loaded(backup_policy=BackupPolicy(every_n_updates=8))
        for wave in range(1, 4):
            txn = db.begin()
            for i in range(200):
                tree.update(txn, key_of(i), value_of(i, wave))
            db.commit(txn)
            db.flush_everything()
        db.checkpoint()
        db.truncate_log()
        txn = db.begin()
        tree.update(txn, key_of(5), b"post-truncation")
        db.commit(txn)
        db.crash()
        db.restart()
        tree = db.tree(1)
        assert tree.lookup(key_of(5)) == b"post-truncation"
        assert tree.lookup(key_of(6)) == value_of(6, 3)
