"""Integration tests: heap files — the second storage structure.

Section 5.2: "the recovery techniques discussed below apply to any
storage structure."  These tests put heap pages through the same
failure/recovery machinery as B-tree nodes.
"""

import pytest

from repro.engine.database import Database
from repro.errors import KeyNotFound
from repro.heap.heapfile import RID
from tests.conftest import fast_config


@pytest.fixture
def db() -> Database:
    return Database(fast_config())


@pytest.fixture
def heap(db):
    return db.create_heap()


class TestBasicOperations:
    def test_insert_fetch(self, db, heap):
        txn = db.begin()
        rid = heap.insert(txn, b"hello heap")
        db.commit(txn)
        assert heap.fetch(rid) == b"hello heap"

    def test_rids_stable_and_ordered(self, db, heap):
        txn = db.begin()
        rids = [heap.insert(txn, b"r%04d" % i) for i in range(50)]
        db.commit(txn)
        assert len(set(rids)) == 50
        for i, rid in enumerate(rids):
            assert heap.fetch(rid) == b"r%04d" % i

    def test_update_in_place(self, db, heap):
        txn = db.begin()
        rid = heap.insert(txn, b"before")
        heap.update(txn, rid, b"after!")
        db.commit(txn)
        assert heap.fetch(rid) == b"after!"

    def test_delete_hides_record(self, db, heap):
        txn = db.begin()
        rid = heap.insert(txn, b"doomed")
        heap.delete(txn, rid)
        db.commit(txn)
        with pytest.raises(KeyNotFound):
            heap.fetch(rid)

    def test_fetch_bogus_rid(self, db, heap):
        txn = db.begin()
        heap.insert(txn, b"only")
        db.commit(txn)
        with pytest.raises(KeyNotFound):
            heap.fetch(RID(db.config.data_start, 99))

    def test_scan_in_rid_order(self, db, heap):
        txn = db.begin()
        for i in range(30):
            heap.insert(txn, b"p%03d" % i)
        db.commit(txn)
        scanned = heap.scan()
        assert [value for _rid, value in scanned] == [b"p%03d" % i
                                                      for i in range(30)]
        assert [rid for rid, _v in scanned] == sorted(r for r, _ in scanned)

    def test_grows_across_pages(self, db, heap):
        txn = db.begin()
        big = b"x" * 400
        for _ in range(40):
            heap.insert(txn, big)
        db.commit(txn)
        assert len(db.get_heap_pages(heap.heap_id)) > 1
        assert heap.count() == 40

    def test_vacuum_reclaims_ghost_space(self, db, heap):
        txn = db.begin()
        rids = [heap.insert(txn, b"y" * 200) for _ in range(10)]
        for rid in rids[:5]:
            heap.delete(txn, rid)
        db.commit(txn)
        reclaimed = heap.vacuum()
        assert reclaimed == 5
        assert heap.count() == 5

    def test_multiple_heaps_independent(self, db):
        a = db.create_heap()
        b = db.create_heap()
        txn = db.begin()
        ra = a.insert(txn, b"in-a")
        rb = b.insert(txn, b"in-b")
        db.commit(txn)
        assert a.fetch(ra) == b"in-a"
        assert b.fetch(rb) == b"in-b"
        assert a.count() == 1 and b.count() == 1


class TestTransactions:
    def test_abort_undoes_heap_ops(self, db, heap):
        txn = db.begin()
        keep = heap.insert(txn, b"keep")
        db.commit(txn)
        txn2 = db.begin()
        gone = heap.insert(txn2, b"gone")
        heap.update(txn2, keep, b"mutated")
        heap.delete(txn2, keep)
        db.abort(txn2)
        assert heap.fetch(keep) == b"keep"
        with pytest.raises(KeyNotFound):
            heap.fetch(gone)

    def test_crash_recovery_of_heap(self, db, heap):
        txn = db.begin()
        rids = [heap.insert(txn, b"durable-%d" % i) for i in range(20)]
        db.commit(txn)
        loser = db.begin()
        heap.insert(loser, b"vanishes")
        db.crash()
        db.restart()
        heap = db.heap(heap.heap_id)
        assert heap.count() == 20
        for i, rid in enumerate(rids):
            assert heap.fetch(rid) == b"durable-%d" % i


class TestSinglePageRecoveryOnHeap:
    def test_heap_page_recovers_like_any_other(self, db, heap):
        """The fourth failure class is storage-structure agnostic."""
        txn = db.begin()
        rids = [heap.insert(txn, b"record-%03d" % i) for i in range(40)]
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        victim = rids[0].page_id
        db.device.inject_bit_rot(victim, nbits=6)
        assert heap.fetch(rids[0]) == b"record-000"
        assert db.stats.get("single_page_recoveries") == 1

    def test_lost_write_on_heap_page(self, db, heap):
        txn = db.begin()
        rid = heap.insert(txn, b"v1")
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        db.device.inject_lost_write(rid.page_id)
        txn = db.begin()
        heap.update(txn, rid, b"v2")
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        assert heap.fetch(rid) == b"v2"
        assert db.stats.get("spf[stale-lsn]") == 1

    def test_rid_as_secondary_index_value(self, db, heap):
        """A B-tree mapping keys to heap RIDs — the classic layout —
        survives a failure of either structure's page."""
        tree = db.create_index()
        txn = db.begin()
        rid_by_key = {}
        for i in range(60):
            rid = heap.insert(txn, b"payload-%03d" % i)
            tree.insert(txn, b"key%03d" % i, rid.encode())
            rid_by_key[b"key%03d" % i] = rid
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        # Break one heap page and one index page.
        heap_victim = rid_by_key[b"key000"].page_id
        db.device.inject_read_error(heap_victim)
        rid = RID.decode(tree.lookup(b"key000"))
        assert heap.fetch(rid) == b"payload-000"
        assert db.stats.get("single_page_recoveries") >= 1
