"""The race-hunting stress battery for the concurrent engine.

Eight worker threads hammer one engine through the Session API —
shared-latch lookups, exclusive-latch writes, cross-thread group
commit — with corruption injected and checkpoints taken *while they
run*, then a mid-stress crash freezes in-flight transactions and
recovery must roll them back.  After every phase the
:class:`repro.workloads.fleet.ConcurrentOracle` invariants are
checked exactly:

* **committed-visible** — every committed key/value (serialized by
  commit LSN) is in the tree;
* **aborted-invisible** — nothing else is (aborted, conflicted, and
  crash-abandoned transactions left no trace);
* **btree-verify** — the Foster B-tree invariants hold.

Seeds: five per run, derived from ``STRESS_BASE_SEED`` (the CI stress
job runs the battery three times with distinct bases; the nightly
long-run variant sweeps ``STRESS_NIGHTLY_SEEDS`` seeds under the
``slow`` marker).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import Database
from repro.btree.verify import verify_tree
from repro.storage.faults import FaultKind
from repro.workloads.fleet import (
    ClientFleet,
    ConcurrentOracle,
    ThreadedFleetRunner,
)
from tests.conftest import fast_config, key_of, value_of

N_THREADS = 8
#: enough committed pages that the 24-frame pool must evict constantly
N_PRELOADED = 1200
KEY_SPACE = 1500

BASE_SEED = int(os.environ.get("STRESS_BASE_SEED", "0"))
SEEDS = [BASE_SEED + i for i in range(5)]


def stress_db(seed: int) -> tuple[Database, object, ConcurrentOracle]:
    """An engine sized to make threads contend: a small pool (constant
    eviction + fetch races) and a short commit window."""
    config = fast_config(
        capacity_pages=1024,
        buffer_capacity=24,
        commit_window_seconds=0.001,
        seed=seed,
        restart_mode="on_demand" if seed % 2 else "eager",
    )
    db = Database(config)
    tree = db.create_index()
    oracle = ConcurrentOracle()
    txn = db.begin()
    width = ThreadedFleetRunner.VALUE_WIDTH
    for i in range(N_PRELOADED):
        value = value_of(i, 0).ljust(width, b".")
        tree.insert(txn, key_of(i), value)
        oracle.seed(key_of(i), value)
    db.commit(txn)
    db.flush_everything()
    # Cover every page with a backup so mid-run corruption repairs
    # in place instead of escalating to a media failure.
    db.take_full_backup()
    return db, tree, oracle


def check_invariants(db: Database, tree, oracle: ConcurrentOracle,  # noqa: ANN001
                     context: str) -> None:
    """The oracle's three invariants, checked exactly."""
    db.finish_restart()
    db.finish_restore()
    tree = db.tree(tree.index_id)
    scan = dict(tree.range_scan())
    expected = oracle.expected_state()
    missing = sorted(k for k in expected if k not in scan)
    wrong = sorted(k for k in expected
                   if k in scan and scan[k] != expected[k])
    phantom = sorted(k for k in scan if k not in expected)
    assert not missing, (
        f"{context}: {len(missing)} committed keys lost, first {missing[0]!r}")
    assert not wrong, (
        f"{context}: {len(wrong)} committed keys wrong, first {wrong[0]!r}")
    assert not phantom, (
        f"{context}: {len(phantom)} uncommitted keys visible, "
        f"first {phantom[0]!r}")
    report = verify_tree(tree)
    assert report.ok, f"{context}: B-tree invariants violated: {report.problems}"


def run_battery(seed: int, actions_phase1: int = 150,
                actions_phase2: int = 120) -> dict:
    """One full battery run; returns tallies for the caller to assert
    scale on."""
    db, tree, oracle = stress_db(seed)
    fleet = ClientFleet(N_THREADS, seed, key_space=KEY_SPACE,
                        abort_fraction=0.15)

    # -- phase 1: live traffic + concurrent corruption + checkpoints --
    runner = ThreadedFleetRunner(db, tree, fleet, oracle,
                                 actions_per_client=actions_phase1)
    chaos_errors: list[BaseException] = []

    def inject_chaos() -> None:
        try:
            maintenance = db.session()
            for round_no in range(3):
                time.sleep(0.02)
                # Corrupt a flushed data page while workers are reading
                # and writing: the next fix detects and repairs it.
                victim = (db.config.data_start
                          + (seed * 7 + round_no * 13)
                          % max(1, db.allocated_pages()
                                - db.config.data_start))
                db.device.apply_fault(FaultKind.BIT_ROT, victim, nbits=5)
                maintenance.checkpoint()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            chaos_errors.append(exc)

    chaos = threading.Thread(target=inject_chaos, daemon=True)
    runner.start()
    chaos.start()
    runner.join(timeout=120)
    chaos.join(timeout=120)
    assert not chaos_errors, f"chaos thread raised: {chaos_errors[0]!r}"
    report1 = runner.report
    check_invariants(db, tree, oracle, f"seed={seed} post-traffic")

    # -- phase 2: mid-stress crash with transactions in flight --------
    runner2 = ThreadedFleetRunner(db, tree, fleet, oracle,
                                  actions_per_client=actions_phase2)
    runner2.start()
    # Let real work accumulate, then freeze everyone mid-transaction.
    deadline = time.monotonic() + 30
    while (runner2.report.committed < 50
           and time.monotonic() < deadline):
        time.sleep(0.005)
    runner2.abandon()
    runner2.join(timeout=120)
    report2 = runner2.report
    # Whatever abandon() froze mid-flight, guarantee a floor of
    # uncommitted loser transactions for the crash to strand: their
    # writes must be invisible after recovery.
    width = ThreadedFleetRunner.VALUE_WIDTH
    for i in range(3):
        lingering = db.session()
        lingering.begin()
        lingering.upsert(db.tree(tree.index_id), key_of(i),
                         (b"in-flight-%d" % i).ljust(width, b"."))
        lingering.forget()
    in_flight = len([t for t in db.tm.active.values() if not t.is_system])
    assert in_flight >= 3
    db.crash()
    db.restart()  # mode from config (alternates eager/on_demand by seed)

    # -- phase 3: recovery drains concurrently with live sessions -----
    # In on_demand mode the restart registry still holds pending redo
    # pages and losers here; fresh traffic (shared-latch lookups fixing
    # pending pages, writers colliding with loser locks) races a
    # budgeted background drainer until the registry completes.
    runner3 = ThreadedFleetRunner(db, db.tree(tree.index_id), fleet, oracle,
                                  actions_per_client=40)
    drainer_errors: list[BaseException] = []

    def drain_background() -> None:
        try:
            maintenance = db.session()
            while db.restart_pending or db.restore_pending:
                maintenance.drain(page_budget=4, loser_budget=1)
                time.sleep(0.002)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            drainer_errors.append(exc)

    drainer = threading.Thread(target=drain_background, daemon=True)
    runner3.start()
    drainer.start()
    runner3.join(timeout=120)
    drainer.join(timeout=120)
    assert not drainer_errors, f"drainer raised: {drainer_errors[0]!r}"
    report3 = runner3.report
    check_invariants(db, tree, oracle, f"seed={seed} post-crash")

    return {
        "transactions": (report1.transactions + report2.transactions
                         + report3.transactions),
        "committed": (report1.committed + report2.committed
                      + report3.committed),
        "conflicts": (report1.conflicts + report2.conflicts
                      + report3.conflicts),
        "lookups": report1.lookups + report2.lookups + report3.lookups,
        "ops": report1.ops + report2.ops + report3.ops,
        "abandoned": report2.abandoned,
        "in_flight_at_crash": in_flight,
        "group_commit_riders": db.stats.get("group_commit_riders"),
        "group_commit_leads": db.stats.get("group_commit_leads"),
        "buffer_evictions": db.stats.get("pages_evicted"),
        "pool_repairs": db.stats.get("page_failures_detected"),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_stress_battery(seed: int) -> None:
    """8 threads x >= 2000 ops x live corruption x a mid-stress crash:
    zero oracle violations."""
    tallies = run_battery(seed)
    # The battery must have actually exercised concurrency, not
    # degenerated into a serial run.
    assert tallies["ops"] >= 2000, tallies
    assert tallies["committed"] >= 400, tallies
    assert tallies["group_commit_riders"] > 0, (
        "no commit ever rode another thread's force", tallies)
    assert tallies["buffer_evictions"] > 0, tallies
    assert tallies["in_flight_at_crash"] >= 3, tallies


@pytest.mark.slow
@pytest.mark.parametrize(
    "seed", [9000 + i for i in range(
        int(os.environ.get("STRESS_NIGHTLY_SEEDS", "20")))])
def test_stress_battery_nightly(seed: int) -> None:
    """The nightly long-run variant: more seeds, more actions."""
    tallies = run_battery(seed, actions_phase1=300, actions_phase2=200)
    assert tallies["committed"] >= 800, tallies


# ----------------------------------------------------------------------
# Targeted race tests (pool-level)
# ----------------------------------------------------------------------
def test_concurrent_same_page_fix_fetches_once() -> None:
    """Two threads racing to fix the same absent page: the per-page
    load latch makes exactly one fetcher call win; the loser blocks and
    reuses the installed frame."""
    from repro.buffer.buffer_pool import BufferPool
    from repro.page.page import Page, PageType
    from repro.sim.clock import SimClock
    from repro.sim.iomodel import NULL_PROFILE
    from repro.sim.stats import Stats
    from repro.storage.device import StorageDevice
    from repro.storage.faults import FaultInjector
    from repro.wal.log_manager import LogManager

    clock, stats = SimClock(), Stats()
    device = StorageDevice("d", 4096, 64, clock, NULL_PROFILE, stats,
                           FaultInjector(seed=1))
    log = LogManager(clock, NULL_PROFILE, stats)
    fetches = []
    barrier = threading.Barrier(2)

    def slow_fetch(page_id: int) -> Page:
        fetches.append(page_id)
        time.sleep(0.05)  # hold the load latch long enough to race
        return Page.format(4096, page_id, PageType.BTREE_LEAF)

    pool = BufferPool(device, log, stats, capacity=8, fetcher=slow_fetch)
    pages = []

    def fixer() -> None:
        barrier.wait()
        pages.append(pool.fix(7))

    threads = [threading.Thread(target=fixer) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert fetches == [7], "both threads ran the fetcher"
    assert pages[0] is pages[1], "threads got different frames"
    assert pool.pin_count(7) == 2


def test_failed_concurrent_load_retries_cleanly() -> None:
    """A fetch that raises must withdraw its placeholder so waiting
    threads retry the load themselves instead of seeing a dead frame."""
    from repro.buffer.buffer_pool import BufferPool
    from repro.page.page import Page, PageType
    from repro.sim.clock import SimClock
    from repro.sim.iomodel import NULL_PROFILE
    from repro.sim.stats import Stats
    from repro.storage.device import StorageDevice
    from repro.storage.faults import FaultInjector
    from repro.wal.log_manager import LogManager

    clock, stats = SimClock(), Stats()
    device = StorageDevice("d", 4096, 64, clock, NULL_PROFILE, stats,
                           FaultInjector(seed=1))
    log = LogManager(clock, NULL_PROFILE, stats)
    calls = []

    def flaky_fetch(page_id: int) -> Page:
        calls.append(page_id)
        time.sleep(0.02)
        if len(calls) == 1:
            raise RuntimeError("transient read failure")
        return Page.format(4096, page_id, PageType.BTREE_LEAF)

    pool = BufferPool(device, log, stats, capacity=8, fetcher=flaky_fetch)
    results: list = []

    def fixer() -> None:
        try:
            results.append(pool.fix(3))
        except RuntimeError:
            results.append("failed")

    threads = [threading.Thread(target=fixer) for _ in range(2)]
    for t in threads:
        t.start()
        time.sleep(0.005)  # first thread loses the race deliberately
    for t in threads:
        t.join()
    assert "failed" in results
    real = [r for r in results if r != "failed"]
    assert len(real) == 1 and real[0].page_id == 3
    assert len(calls) == 2
    assert pool.resident(3)
