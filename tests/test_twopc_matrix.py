"""Two-phase commit crash matrix: every protocol point, both layers.

The engine layer is exercised directly (prepare / crash / restart /
resolve), the router layer through the commit hook failpoints.  The
matrix covers a crash:

* before any prepare               -> both branches abort (plain losers)
* after one participant prepared   -> presumed abort everywhere
* after all prepared, no decision  -> presumed abort (coordinator loss
                                      between prepare and decision)
* after the decision was forced    -> commit everywhere, across crashes
* after a partial phase two        -> the lagging shard still commits
* coordinator log loses unforced   -> the decision never existed
"""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import RecoveryError
from repro.shard.config import ShardConfig
from repro.shard.router import ShardRouter
from repro.shard.twopc import CoordinatorLog
from repro.txn.locks import LockConflict


def make_db(restart_mode="eager"):
    db = Database(EngineConfig(restart_mode=restart_mode))
    tree = db.create_index()
    return db, tree


def lookup_or_none(tree, key):
    from repro.errors import KeyNotFound
    try:
        return tree.lookup(key)
    except KeyNotFound:
        return None


# ----------------------------------------------------------------------
# Engine-level primitives
# ----------------------------------------------------------------------
class TestEnginePrepare:
    def test_prepared_txn_survives_crash_as_indoubt(self):
        db, tree = make_db()
        txn = db.begin()
        tree.insert(txn, b"k", b"v")
        db.prepare(txn, gtid=42)
        db.crash()
        report = db.restart()
        assert report.indoubt_gtids == [42]
        assert 42 in db.indoubt

    def test_indoubt_branch_holds_its_locks(self):
        db, tree = make_db()
        txn = db.begin()
        tree.insert(txn, b"k", b"v")
        db.prepare(txn, gtid=7)
        db.crash()
        db.restart()
        other = db.begin()
        with pytest.raises(LockConflict):
            db.locks.acquire(other.txn_id, b"k")
        db.abort(other)

    def test_resolve_commit_makes_effects_durable(self):
        db, tree = make_db()
        txn = db.begin()
        tree.insert(txn, b"k", b"v")
        db.prepare(txn, gtid=7)
        db.crash()
        db.restart()
        db.resolve_indoubt(7, commit=True)
        assert 7 not in db.indoubt
        db.crash()
        db.restart()
        assert lookup_or_none(db.tree(tree.index_id), b"k") == b"v"

    def test_resolve_abort_rolls_back(self):
        db, tree = make_db()
        txn = db.begin()
        tree.insert(txn, b"k", b"v")
        db.prepare(txn, gtid=7)
        db.crash()
        db.restart()
        db.resolve_indoubt(7, commit=False)
        assert lookup_or_none(db.tree(tree.index_id), b"k") is None

    def test_resolve_unknown_gtid_raises(self):
        db, _tree = make_db()
        with pytest.raises(RecoveryError):
            db.resolve_indoubt(999, commit=True)

    def test_indoubt_survives_checkpoint_and_second_crash(self):
        db, tree = make_db()
        txn = db.begin()
        tree.insert(txn, b"k", b"v")
        db.prepare(txn, gtid=13)
        db.crash()
        db.restart()
        db.checkpoint()
        db.crash()
        report = db.restart()
        assert report.indoubt_gtids == [13]
        db.resolve_indoubt(13, commit=True)
        assert lookup_or_none(db.tree(tree.index_id), b"k") == b"v"

    def test_live_prepared_branch_commit_and_abort(self):
        db, tree = make_db()
        t1 = db.begin()
        tree.insert(t1, b"a", b"1")
        db.prepare(t1, gtid=1)
        db.commit_prepared(t1)
        t2 = db.begin()
        tree.insert(t2, b"b", b"2")
        db.prepare(t2, gtid=2)
        db.abort_prepared(t2)
        assert lookup_or_none(tree, b"a") == b"1"
        assert lookup_or_none(tree, b"b") is None

    def test_on_demand_restart_registers_indoubt(self):
        db, tree = make_db(restart_mode="on_demand")
        txn = db.begin()
        tree.insert(txn, b"k", b"v")
        db.prepare(txn, gtid=5)
        db.crash()
        report = db.restart()
        assert report.indoubt_gtids == [5]
        db.finish_restart()
        # The in-doubt branch must not have been undone as a loser.
        db.resolve_indoubt(5, commit=True)
        assert lookup_or_none(db.tree(tree.index_id), b"k") == b"v"


# ----------------------------------------------------------------------
# Coordinator log semantics
# ----------------------------------------------------------------------
class TestCoordinatorLog:
    def test_presumed_abort_when_no_decision(self):
        log = CoordinatorLog()
        assert log.decision_of(123) == "abort"

    def test_forced_decision_survives_crash(self):
        log = CoordinatorLog()
        gtid = log.allocate_gtid()
        log.log_decision(gtid, "commit", (0, 1))
        log.crash()
        assert log.decision_of(gtid) == "commit"

    def test_unforced_decision_is_lost(self):
        log = CoordinatorLog()
        gtid = log.allocate_gtid()
        log.log_decision(gtid, "commit", (0, 1), force=False)
        log.crash()
        assert log.decision_of(gtid) == "abort"

    def test_gtid_counter_survives_crash(self):
        log = CoordinatorLog()
        first = log.allocate_gtid()
        log.crash()
        assert log.allocate_gtid() > first

    def test_bad_verdict_rejected(self):
        with pytest.raises(ValueError):
            CoordinatorLog().log_decision(1, "maybe", (0,))


# ----------------------------------------------------------------------
# Router-level crash matrix (inproc shards, commit-hook failpoints)
# ----------------------------------------------------------------------
class _Stop(Exception):
    pass


def make_router(n_shards=4):
    return ShardRouter(ShardConfig(n_shards=n_shards, transport="inproc"))


def cross_shard_keys(router, count):
    """Distinct keys guaranteed to live on different shards."""
    chosen, seen = [], set()
    i = 0
    while len(chosen) < count:
        key = b"key%06d" % i
        shard = router.shard_of(key)
        if shard not in seen:
            seen.add(shard)
            chosen.append(key)
        i += 1
    return chosen


def interrupted_commit(router, keys, stage, crash_shard=True):
    """Run a cross-shard commit and cut it at ``stage``; returns the
    gtid the commit allocated."""
    fired = []

    def hook(hook_stage, shard_id):
        if hook_stage == stage and not fired:
            fired.append(shard_id)
            if crash_shard and shard_id is not None:
                router.shards[shard_id].worker.execute(("crash",))
            raise _Stop()

    gtid = router.coordinator._next_gtid
    router.commit_hook = hook
    txn = router.txn()
    for i, key in enumerate(keys):
        txn.put(key, b"v%d" % i)
    with pytest.raises(_Stop):
        txn.commit()
    router.commit_hook = None
    assert fired, "failpoint never fired"
    return gtid


def recover_all(router):
    """Crash-and-reopen every shard, then settle leftovers from the
    decision log — the harness's finalize in miniature."""
    for i, shard in enumerate(router.shards):
        shard.worker.execute(("crash",))
        router._reopen(i)
    for decision in router.coordinator.durable_decisions():
        for i in decision.participants:
            router._call(i, "resolve", decision.gtid,
                         decision.verdict == "commit")
    for i in range(router.config.n_shards):
        assert router._call(i, "indoubt") == []
        router._call(i, "finish_restart")


class TestRouterCrashMatrix:
    def test_crash_before_any_prepare(self):
        router = make_router()
        k1, k2 = cross_shard_keys(router, 2)
        txn = router.txn()
        txn.put(k1, b"a")
        txn.put(k2, b"b")
        # No commit at all: both branches die with their shards.
        recover_all(router)
        assert router.get(k1) is None
        assert router.get(k2) is None
        router.close()

    def test_crash_after_one_prepare_presumed_abort(self):
        router = make_router()
        keys = cross_shard_keys(router, 2)
        gtid = interrupted_commit(router, keys, "after_prepare")
        assert router.coordinator.decision_of(gtid) == "abort"
        recover_all(router)
        for key in keys:
            assert router.get(key) is None
        router.close()

    def test_coordinator_loss_after_all_prepared(self):
        # All participants prepared, the decision never forced: the
        # coordinator "dies" between phases.  Presumed abort.
        router = make_router()
        keys = cross_shard_keys(router, 3)
        txn = router.txn()
        for i, key in enumerate(keys):
            txn.put(key, b"v%d" % i)
        gtid = router.coordinator.allocate_gtid()
        for idx in sorted(txn.branches):
            router._call(idx, "prepare", txn.xid, gtid)
        router.coordinator.crash()  # no decision was ever logged
        assert router.coordinator.decision_of(gtid) == "abort"
        recover_all(router)
        for key in keys:
            assert router.get(key) is None
        router.close()

    def test_crash_after_decision_logged_commits_everywhere(self):
        router = make_router()
        keys = cross_shard_keys(router, 3)
        gtid = interrupted_commit(router, keys, "after_decision",
                                  crash_shard=False)
        assert router.coordinator.decision_of(gtid) == "commit"
        recover_all(router)
        for i, key in enumerate(keys):
            assert router.get(key) == b"v%d" % i
        router.close()

    def test_crash_after_partial_commit_lagging_shard_catches_up(self):
        router = make_router()
        keys = cross_shard_keys(router, 3)
        gtid = interrupted_commit(router, keys, "after_commit")
        assert router.coordinator.decision_of(gtid) == "commit"
        recover_all(router)
        for i, key in enumerate(keys):
            assert router.get(key) == b"v%d" % i
        router.close()

    def test_prepare_refusal_aborts_whole_transaction(self):
        from repro.errors import TransactionAborted

        router = make_router()
        keys = cross_shard_keys(router, 2)
        txn = router.txn()
        for key in keys:
            txn.put(key, b"x")
        # Partition one participant right before commit: phase one
        # cannot complete, so the whole transaction aborts.
        victim = router.shard_of(keys[1])
        router.shards[victim].partitioned = True
        with pytest.raises(TransactionAborted):
            txn.commit()
        router.shards[victim].partitioned = False
        recover_all(router)
        for key in keys:
            assert router.get(key) is None
        router.close()

    def test_unavailable_participant_in_phase_two_gets_queued(self):
        router = make_router()
        keys = cross_shard_keys(router, 2)
        victim = router.shard_of(keys[1])

        def hook(stage, shard_id):
            # Sever the victim after the decision: its resolution
            # must queue and apply on reconnection.
            if stage == "after_decision":
                router.shards[victim].partitioned = True

        router.commit_hook = hook
        txn = router.txn()
        for key in keys:
            txn.put(key, b"q")
        txn.commit()  # succeeds: decision is durable, delivery queued
        router.commit_hook = None
        assert router._pending[victim]
        router.shards[victim].partitioned = False
        assert router.get(keys[1]) == b"q"  # flush happens on next call
        assert not router._pending[victim]
        router.close()

    def test_abort_during_partition_queues_and_releases_locks(self):
        # Regression: abort() used to swallow the partitioned branch
        # under a blanket except, leaving it holding its locks forever
        # after the heal.
        router = make_router()
        keys = cross_shard_keys(router, 2)
        txn = router.txn()
        for key in keys:
            txn.put(key, b"x")
        victim = router.shard_of(keys[1])
        router.shards[victim].partitioned = True
        txn.abort()  # must queue the unreachable branch's abort
        assert router._pending[victim]
        router.shards[victim].partitioned = False
        # The next command flushes the queued abort; the branch's lock
        # must be free for a new writer.
        txn2 = router.txn()
        txn2.put(keys[1], b"y")
        txn2.commit()
        assert router.get(keys[1]) == b"y"
        router.close()

    def test_single_shard_commit_during_partition_aborts_cleanly(self):
        from repro.errors import ShardUnavailableError

        # Regression: commit() used to mark the handle finished before
        # attempting the commit, so the facade's abort-on-error hit
        # "already finished" — masking the real failure — and the
        # partitioned branch leaked its locks.
        router = make_router()
        key = b"solo-key"
        idx = router.shard_of(key)
        txn = router.txn()
        txn.put(key, b"v")
        router.shards[idx].partitioned = True
        with pytest.raises(ShardUnavailableError):
            txn.commit()
        txn.abort()  # idempotent no-op, never "already finished"
        assert router._pending[idx]
        router.shards[idx].partitioned = False
        # Presumed abort: the commit record was never forced.
        assert router.get(key) is None
        txn2 = router.txn()
        txn2.put(key, b"w")  # the stranded branch's lock must be free
        txn2.commit()
        assert router.get(key) == b"w"
        router.close()

    def test_crash_that_eats_commit_reply_is_not_double_failed(self):
        from repro.errors import SystemFailure

        # Regression: a crash that ate the txn_commit reply made the
        # blind retry fail on the (gone) branch even though the commit
        # record was already durable.  The retry path must consult the
        # log and report success.
        router = make_router()
        key = b"retry-key"
        idx = router.shard_of(key)
        shard = router.shards[idx]
        real_call = shard.call

        def eat_reply(command):
            result = real_call(command)
            if command[0] == "txn_commit":
                shard.call = real_call
                shard.worker.execute(("crash",))
                raise SystemFailure("reply lost in crash")
            return result

        txn = router.txn()
        txn.put(key, b"v")
        shard.call = eat_reply
        txn.commit()  # the first attempt committed; only the reply died
        assert router.get(key) == b"v"
        router.close()

    def test_crash_that_eats_delete_reply_reports_truthfully(self):
        from repro.errors import SystemFailure

        # Regression: the blind retry re-executed the delete against
        # the already-deleted key and reported False for a delete that
        # durably removed the key.
        router = make_router()
        key = b"del-key"
        router.put(key, b"v")
        idx = router.shard_of(key)
        shard = router.shards[idx]
        real_call = shard.call

        def eat_reply(command):
            result = real_call(command)
            if command[0] == "delete":
                shard.call = real_call
                shard.worker.execute(("crash",))
                raise SystemFailure("reply lost in crash")
            return result

        shard.call = eat_reply
        assert router.delete(key) is True
        assert router.get(key) is None
        router.close()

    def test_shard_chaos_locks_drain_after_heal(self):
        # Fleet-wide lock-leak oracle in miniature: partition a shard
        # mid-transaction, abort, heal — every lock must drain.
        router = make_router()
        keys = cross_shard_keys(router, 3)
        txn = router.txn()
        for key in keys:
            txn.put(key, b"x")
        victim = router.shard_of(keys[2])
        router.shards[victim].partitioned = True
        txn.abort()
        router.shards[victim].partitioned = False
        for i in range(router.config.n_shards):
            assert router._call(i, "locks") == []
        router.close()

    def test_reopen_resolves_from_decision_log(self):
        router = make_router()
        keys = cross_shard_keys(router, 2)
        gtid = interrupted_commit(router, keys, "after_decision",
                                  crash_shard=False)
        # Crash one participant; merely touching it again must reopen
        # it and commit its in-doubt branch from the decision log.
        victim = router.shard_of(keys[0])
        router.shards[victim].worker.execute(("crash",))
        assert router.get(keys[0]) == b"v0"
        assert router.reopens == 1
        assert gtid not in router.shards[victim].worker.db.indoubt
        router.close()
