"""Copy-safe synchronization primitives for the concurrent engine.

The engine doubles as a *deterministic simulation substrate*: the
chaos harness deep-copies whole :class:`repro.engine.Database` objects
to recover one failure image under two modes, and ``threading`` locks
are not deep-copyable.  Every lock used inside the engine therefore
comes from this module: each primitive deep-copies (and pickles) to a
**fresh, unlocked instance**, which is the right semantics — a cloned
database has no live threads, so it has no lock holders.

Latch order (deadlock discipline, outermost first)::

    Database.latch  (engine read/write latch)
      -> LockManager mutex
      -> BufferPool mutex -> Frame latch
      -> registry mutexes (restart/restore)
      -> LogManager mutex / commit barrier
      -> leaf locks (device, PRI, log reader, clock, stats)

A thread never acquires a lock to the *left* of one it already holds.
Two refinements keep that true in practice:

* registry **undo** claims a loser under the registry mutex but runs
  the rollback (which fixes pages — pool mutex, frame latches) with
  the mutex *released*, because fix-path hooks acquire the registry
  mutex while holding a frame latch;
* the commit barrier is waited on while holding **no** other engine
  lock (sessions release the engine latch before forcing), so riders
  can never wedge a writer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class Mutex:
    """A reentrant lock that deep-copies to a fresh, unlocked one."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "Mutex":
        self._lock.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._lock.release()

    def __deepcopy__(self, memo: dict) -> "Mutex":  # noqa: ARG002
        return type(self)()

    def __reduce__(self) -> tuple:
        return (type(self), ())


class ConditionMutex(Mutex):
    """A :class:`Mutex` with an attached condition variable.

    Waiters must hold the mutex (``with barrier: barrier.wait()``),
    exactly like :class:`threading.Condition`; the two share one
    underlying lock so state checks and waits are atomic.
    """

    __slots__ = ("_cond",)

    def __init__(self) -> None:
        super().__init__()
        self._cond = threading.Condition(self._lock)

    def wait(self, timeout: float | None = None) -> bool:
        return self._cond.wait(timeout)

    def notify_all(self) -> None:
        self._cond.notify_all()


class ReadWriteLatch:
    """A shared/exclusive latch with writer preference.

    Readers run concurrently; a writer excludes everyone.  Writer
    preference (new readers queue behind a waiting writer) keeps a
    stream of readers from starving updates.  The latch is *reentrant
    for writers only*: the holding thread may nest ``exclusive()``
    blocks, and ``shared()`` inside its own exclusive block is a no-op
    downgrade.  Shared holds must not nest a new ``shared()`` or
    upgrade to ``exclusive()`` — that is a deadlock by design, as in
    any real latch implementation.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writer_depth",
                 "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # owning thread ident
        self._writer_depth = 0
        self._writers_waiting = 0

    def __deepcopy__(self, memo: dict) -> "ReadWriteLatch":  # noqa: ARG002
        return type(self)()

    def __reduce__(self) -> tuple:
        return (type(self), ())

    # -- shared (read) -------------------------------------------------
    def acquire_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Downgrade inside our own exclusive block: the
                # exclusive hold already grants read access.
                self._writer_depth += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_shared(self) -> None:
        with self._cond:
            if self._writer == threading.get_ident():
                self._writer_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def shared(self) -> Iterator[None]:
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    # -- exclusive (write) ---------------------------------------------
    def acquire_exclusive(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_exclusive(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("exclusive latch not held by this thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()

    # -- introspection (tests) -----------------------------------------
    @property
    def held_exclusive(self) -> bool:
        return self._writer is not None

    @property
    def active_readers(self) -> int:
        return self._readers
