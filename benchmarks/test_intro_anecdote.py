"""Introduction — the RAID-5 anecdote and the field-study fleet rates.

Two experiments from the paper's motivation:

1. **The anecdote**: "a disk started returning corrupted data for some
   sectors without actually failing the reads ... It has therefore
   been doing parity updates based on misread info so by now pulling
   the disk won't help a bit".  We reproduce the poisoning on a
   simulated RAID-5 array, then show the same fault under the SPF
   engine is caught at its first read and repaired from the log.
2. **Fleet availability**: latent-sector-error arrival rates from
   Bairavasundaram et al. (9.5 %/year of nearline disks) drive a fleet
   of single-device database nodes; with single-page failures as a
   supported class almost every incident is absorbed, without it each
   incident is a node outage.
"""

from __future__ import annotations

from benchmarks.common import key_of, leaf_of, print_table, value_of
from repro.baselines.media_only import traditional_config
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.clock import SimClock
from repro.sim.iomodel import NULL_PROFILE
from repro.sim.stats import Stats
from repro.storage.device import StorageDevice
from repro.storage.raid import Raid5Array
from repro.workloads.fleet import FleetModel, FleetOutcome


# ----------------------------------------------------------------------
# Part 1: the anecdote
# ----------------------------------------------------------------------
def run_anecdote_raid():
    """Silent corruption + read-modify-write poisons RAID-5 parity."""
    clock, stats = SimClock(), Stats()
    members = [StorageDevice(f"r{i}", 512, 64, clock, NULL_PROFILE, stats)
               for i in range(4)]
    array = Raid5Array(members)
    payload_a, payload_b = b"\x11" * 512, b"\x22" * 512
    array.write(0, payload_a)
    array.write(1, payload_b)
    clean_scrub = array.scrub_stripe(0)
    # The silent fault of the anecdote:
    _stripe, dev, row = array._locate(0)
    members[dev].inject_bit_rot(row, nbits=4)
    served = bytes(array.read(0))
    controller_noticed = False  # reads do not check parity (Section 2)
    # Parity updates based on misread info:
    array.write(0, b"\x33" * 512)
    poisoned_scrub = array.scrub_stripe(0)
    # "Pulling the disk won't help": reconstruction of the *healthy*
    # neighbour now regenerates garbage.
    rebuilt_b = array.reconstruct(1)
    return {
        "clean_scrub": clean_scrub,
        "silent_read_was_wrong": served != payload_a,
        "controller_noticed": controller_noticed,
        "scrub_after_poisoning": poisoned_scrub,
        "backup_path_destroyed": rebuilt_b != payload_b,
    }


def run_anecdote_spf():
    """The same silent fault under the SPF engine: caught at the very
    first read by the in-page checks / PageLSN cross-check, repaired
    from backup + per-page chain, quarantined."""
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=1024, buffer_capacity=64,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE))
    tree = db.create_index()
    txn = db.begin()
    for i in range(300):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    victim = leaf_of(db, tree)
    db.device.inject_bit_rot(victim, nbits=4)
    value = tree.lookup(key_of(0))
    return {
        "caught_at_first_read": db.stats.get("page_failures_detected") == 1,
        "repaired": db.stats.get("single_page_recoveries") == 1,
        "data_correct": value == value_of(0, 0),
        "quarantined": len(db.device.bad_blocks) == 1,
    }


def test_intro_anecdote(benchmark):
    def run():
        return run_anecdote_raid(), run_anecdote_spf()

    raid, spf = benchmark.pedantic(run, rounds=1, iterations=1)

    # The anecdote reproduces end to end...
    assert raid["clean_scrub"]
    assert raid["silent_read_was_wrong"]
    assert not raid["controller_noticed"]
    assert not raid["scrub_after_poisoning"]
    assert raid["backup_path_destroyed"]
    # ... and the paper's machinery prevents every step of it.
    assert all(spf.values())

    print_table(
        "Introduction: the RAID-5 anecdote vs the SPF engine",
        ["property", "RAID-5 (anecdote)", "SPF engine (this paper)"],
        [["silent corruption served to reader", "yes", "no (caught)"],
         ["fault detected at first occurrence", "no",
          "yes" if spf["caught_at_first_read"] else "no"],
         ["redundancy/backup path survives", "no (parity poisoned)",
          "yes (chain + backup)"],
         ["data recovered correctly", "no",
          "yes" if spf["data_correct"] else "no"],
         ["bad location quarantined", "no",
          "yes" if spf["quarantined"] else "no"]])


# ----------------------------------------------------------------------
# Part 2: fleet availability under field-study error rates
# ----------------------------------------------------------------------
def run_fleet(spf_enabled: bool, n_devices: int = 120):
    model = FleetModel(n_devices=n_devices, pages_per_device=200,
                       years=1.0, seed=17)
    faults = model.schedule()
    outcome = FleetOutcome(devices=n_devices)
    affected = sorted({f.device_index for f in faults})
    for device_index in affected:
        device_faults = [f for f in faults if f.device_index == device_index]
        if spf_enabled:
            db = Database(EngineConfig(
                page_size=4096, capacity_pages=512, buffer_capacity=64,
                device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
                backup_profile=NULL_PROFILE, single_device_node=True))
        else:
            db = Database(traditional_config(
                single_device_node=True,
                page_size=4096, capacity_pages=512, buffer_capacity=64,
                device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
                backup_profile=NULL_PROFILE))
        tree = db.create_index()
        txn = db.begin()
        for i in range(200):
            tree.insert(txn, key_of(i), value_of(i, 0))
        db.commit(txn)
        db.flush_everything()
        db.evict_everything()
        data_pages = [pid for pid in range(db.config.data_start,
                                           db.allocated_pages())]
        node_down = False
        for fault in device_faults:
            outcome.faults_injected += 1
            if node_down:
                continue
            victim = data_pages[fault.page_id % len(data_pages)]
            if fault.kind == "read-error":
                db.device.inject_read_error(victim)
            else:
                db.device.inject_bit_rot(victim, nbits=4)
            db.evict_everything()
            try:
                db.pool.fix(victim)
                db.pool.unfix(victim)
                outcome.recovered_locally += 1
            except Exception:  # noqa: BLE001 - media/system failure
                node_down = True
                outcome.system_failures += 1
                outcome.transactions_aborted += 1
    return outcome


def test_intro_fleet_availability(benchmark):
    def run():
        return run_fleet(True), run_fleet(False)

    with_spf, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_spf.faults_injected > 10

    # Every incident absorbed locally with SPF; every affected node
    # dies without it.
    assert with_spf.system_failures == 0
    assert with_spf.recovered_locally == with_spf.faults_injected
    assert without.system_failures > 0
    assert with_spf.availability > without.availability

    print_table(
        "Introduction: one year of latent sector errors over a 120-node "
        "fleet (rates from Bairavasundaram et al.)",
        ["engine", "faults", "recovered locally", "node outages",
         "fleet availability"],
        [["single-page failures supported", with_spf.faults_injected,
          with_spf.recovered_locally, with_spf.system_failures,
          f"{100 * with_spf.availability:.1f}%"],
         ["traditional (escalating)", without.faults_injected,
          without.recovered_locally, without.system_failures,
          f"{100 * without.availability:.1f}%"]])
