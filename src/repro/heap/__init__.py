"""Heap files: record storage addressed by RID.

The paper is explicit that "the recovery techniques discussed below
apply to any storage structure" (Section 5.2) — not only B-trees.  The
heap file is the second storage structure of this reproduction: records
live wherever space is found and are addressed by a stable RID
(page id, slot).  Heap pages flow through the same buffer pool, the
same per-page log chains, the same page recovery index, and the same
single-page recovery as B-tree nodes.
"""

from repro.heap.heapfile import RID, HeapFile

__all__ = ["HeapFile", "RID"]
