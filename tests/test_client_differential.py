"""Differential suite: every backend, same workload, same visible state.

The facade contract is that a :class:`SingleNodeClient` and a
:class:`ShardedClient` — at any shard count, on either transport — are
indistinguishable through the API.  The same deterministic fleet
workload is run against each backend and the full visible state
(``client.scan()``), the per-key model, and the commit/abort tallies
must match exactly.
"""

import pytest

import repro
from repro.workloads.fleet import ClientFleet, FacadeFleetRunner

SEED = 31
CLIENTS = 4
KEYS = 60
ACTIONS = 20


def run_backend(config):
    client = repro.connect(config)
    try:
        fleet = ClientFleet(n_clients=CLIENTS, seed=SEED, key_space=KEYS)
        runner = FacadeFleetRunner(client, fleet, ACTIONS)
        report = runner.run()
        state = dict(client.scan())
        assert state == runner.model, "backend diverged from its own model"
        return state, report
    finally:
        client.close()


@pytest.fixture(scope="module")
def baseline():
    return run_backend(None)  # one embedded engine


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_sharded_inproc_matches_single_node(baseline, n_shards):
    base_state, base_report = baseline
    state, report = run_backend(repro.ShardConfig(n_shards=n_shards))
    assert state == base_state
    assert (report.committed, report.aborted, report.ops) == \
        (base_report.committed, base_report.aborted, base_report.ops)


def test_sharded_process_matches_single_node(baseline):
    base_state, base_report = baseline
    state, report = run_backend(
        repro.ShardConfig(n_shards=2, transport="process"))
    assert state == base_state
    assert report.committed == base_report.committed


def test_sharded_survives_mid_workload_crashes_with_same_state(baseline):
    """Crash-and-reopen of shards between actions must not change the
    visible end state: committed effects are durable, per-shard restart
    is transparent through the facade."""
    base_state, _ = baseline
    client = repro.connect(repro.ShardConfig(n_shards=3))
    try:
        fleet = ClientFleet(n_clients=CLIENTS, seed=SEED, key_space=KEYS)
        runner = FacadeFleetRunner(client, fleet, ACTIONS)
        shard_cycle = 0
        for seq in range(ACTIONS):
            for client_id in range(fleet.n_clients):
                runner._execute(fleet.next_action(client_id))
            if seq % 5 == 4:  # crash a different shard every 5 rounds
                victim = shard_cycle % 3
                shard_cycle += 1
                client.router.shards[victim].worker.execute(("crash",))
        for i in range(3):
            try:
                client.router._call(i, "finish_restart")
            except repro.ReproError:
                pass
        state = dict(client.scan())
        assert state == runner.model
        assert state == base_state
        assert client.router.reopens >= 1
    finally:
        client.close()
