"""Unit tests: transactions, commit semantics (Figure 5), rollback, locks."""

import pytest

from repro.errors import DeadlockError, TransactionError
from repro.page.page import Page, PageType
from repro.page.slotted import SlottedPage
from repro.sim.clock import SimClock
from repro.sim.iomodel import NULL_PROFILE
from repro.sim.stats import Stats
from repro.txn.locks import LockConflict, LockManager
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction, TxnState
from repro.wal.log_manager import LogManager
from repro.wal.lsn import NULL_LSN
from repro.wal.ops import OpInsert
from repro.wal.records import LogRecordKind

PAGE_SIZE = 1024


class FakeUndoContext:
    """Minimal UndoContext over a dict of pages."""

    def __init__(self, pages: dict[int, Page]) -> None:
        self.pages = pages
        self.logical_calls: list[tuple[int, object, int]] = []

    def fix_for_undo(self, page_id: int) -> Page:
        return self.pages[page_id]

    def done_with_undo_page(self, page_id: int, lsn: int) -> None:
        pass

    def logical_compensate(self, txn, index_id, undo, undo_next_lsn):  # noqa: ANN001
        self.logical_calls.append((index_id, undo, undo_next_lsn))


@pytest.fixture
def setup():
    stats = Stats()
    log = LogManager(SimClock(), NULL_PROFILE, stats)
    tm = TransactionManager(log, stats)
    page = Page.format(PAGE_SIZE, 5, PageType.HEAP)
    SlottedPage(page).initialize()
    ctx = FakeUndoContext({5: page})
    return log, tm, page, ctx, stats


class TestCommitSemantics:
    def test_user_commit_forces_log(self, setup):
        log, tm, page, _ctx, stats = setup
        txn = tm.begin()
        tm.log_update(txn, page, 1, OpInsert(0, b"a", b"1"))
        forces_before = stats.get("log_forces")
        tm.commit(txn)
        assert stats.get("log_forces") == forces_before + 1
        assert log.durable_lsn == log.end_lsn

    def test_system_commit_does_not_force(self, setup):
        """Figure 5: system transactions commit without forcing."""
        log, tm, page, _ctx, stats = setup
        txn = tm.begin(system=True)
        tm.log_update(txn, page, 1, OpInsert(0, b"a", b"1"))
        forces_before = stats.get("log_forces")
        tm.commit(txn)
        assert stats.get("log_forces") == forces_before
        assert log.durable_lsn < log.end_lsn

    def test_user_commit_hardens_earlier_system_commits(self, setup):
        """System commit records are forced 'prior to (or with) the
        commit record of any dependent user transaction'."""
        log, tm, page, _ctx, _stats = setup
        sys_txn = tm.begin(system=True)
        tm.log_update(sys_txn, page, 1, OpInsert(0, b"a", b"1"))
        sys_commit = tm.commit(sys_txn)
        user = tm.begin()
        tm.log_update(user, page, 1, OpInsert(1, b"b", b"2"))
        tm.commit(user)
        assert log.durable_lsn > sys_commit

    def test_double_commit_rejected(self, setup):
        _log, tm, _page, _ctx, _stats = setup
        txn = tm.begin()
        tm.commit(txn)
        with pytest.raises(TransactionError):
            tm.commit(txn)

    def test_txn_ids_monotonic(self, setup):
        _log, tm, _page, _ctx, _stats = setup
        ids = [tm.begin().txn_id for _ in range(3)]
        assert ids == sorted(ids)
        tm.restore_txn_id_floor(100)
        assert tm.begin().txn_id == 101


class TestChains:
    def test_per_transaction_chain(self, setup):
        log, tm, page, _ctx, _stats = setup
        txn = tm.begin()
        l1 = tm.log_update(txn, page, 1, OpInsert(0, b"a", b"1"))
        l2 = tm.log_update(txn, page, 1, OpInsert(1, b"b", b"2"))
        commit = tm.commit(txn)
        assert log.record_at(commit).prev_lsn == l2
        assert log.record_at(l2).prev_lsn == l1
        assert log.record_at(l1).prev_lsn == NULL_LSN

    def test_per_page_chain(self, setup):
        """Section 5.1.4: each record points to the previous record for
        the same page, anchored by the PageLSN."""
        log, tm, page, _ctx, _stats = setup
        txn_a = tm.begin()
        txn_b = tm.begin()
        l1 = tm.log_update(txn_a, page, 1, OpInsert(0, b"a", b"1"))
        l2 = tm.log_update(txn_b, page, 1, OpInsert(1, b"b", b"2"))
        l3 = tm.log_update(txn_a, page, 1, OpInsert(2, b"c", b"3"))
        assert page.page_lsn == l3
        assert log.record_at(l3).page_prev_lsn == l2
        assert log.record_at(l2).page_prev_lsn == l1
        assert log.record_at(l1).page_prev_lsn == NULL_LSN

    def test_page_lsn_advances_with_each_update(self, setup):
        _log, tm, page, _ctx, _stats = setup
        txn = tm.begin()
        lsns = [tm.log_update(txn, page, 1, OpInsert(i, b"k%d" % i, b"v"))
                for i in range(3)]
        assert lsns == sorted(lsns)
        assert page.page_lsn == lsns[-1]


class TestRollback:
    def test_physical_rollback_restores_page(self, setup):
        _log, tm, page, ctx, _stats = setup
        txn = tm.begin()
        tm.log_update(txn, page, 1, OpInsert(0, b"a", b"1"))
        tm.log_update(txn, page, 1, OpInsert(1, b"b", b"2"))
        tm.abort(txn, ctx)
        assert SlottedPage(page).slot_count == 0
        assert txn.state == TxnState.ABORTED

    def test_rollback_writes_clrs(self, setup):
        log, tm, page, ctx, _stats = setup
        txn = tm.begin()
        tm.log_update(txn, page, 1, OpInsert(0, b"a", b"1"))
        tm.abort(txn, ctx)
        kinds = [r.kind for r in log.all_records()]
        assert kinds.count(LogRecordKind.COMPENSATION) == 1
        assert kinds[-1] == LogRecordKind.ABORT

    def test_clr_undo_next_skips_compensated_work(self, setup):
        log, tm, page, ctx, _stats = setup
        txn = tm.begin()
        l1 = tm.log_update(txn, page, 1, OpInsert(0, b"a", b"1"))
        l2 = tm.log_update(txn, page, 1, OpInsert(1, b"b", b"2"))
        tm.abort(txn, ctx)
        clrs = [r for r in log.all_records()
                if r.kind == LogRecordKind.COMPENSATION]
        assert clrs[0].undo_next_lsn == l1  # first CLR compensates l2
        assert clrs[1].undo_next_lsn == NULL_LSN

    def test_partial_rollback_is_restartable(self, setup):
        """Re-running rollback after a 'crash' mid-undo must not
        double-compensate (CLRs are never undone)."""
        _log, tm, page, ctx, _stats = setup
        txn = tm.begin()
        tm.log_update(txn, page, 1, OpInsert(0, b"a", b"1"))
        tm.log_update(txn, page, 1, OpInsert(1, b"b", b"2"))
        # First rollback attempt: undo only the most recent update.
        tm.rollback_work(txn, ctx, to_lsn=txn.first_lsn)
        assert SlottedPage(page).slot_count == 1
        # Resume to completion (as restart undo would).
        tm.rollback_work(txn, ctx)
        assert SlottedPage(page).slot_count == 0

    def test_logical_undo_routed_through_index(self, setup):
        from repro.wal.records import LogicalUndo, UndoAction

        _log, tm, page, ctx, _stats = setup
        txn = tm.begin()
        l1 = tm.log_update(txn, page, 1, OpInsert(0, b"a", b"1"),
                           undo=LogicalUndo(UndoAction.DELETE_KEY, b"a"))
        tm.abort(txn, ctx)
        assert len(ctx.logical_calls) == 1
        index_id, undo, undo_next = ctx.logical_calls[0]
        assert index_id == 1
        assert undo.key == b"a"
        assert undo_next == NULL_LSN  # the compensated record was first
        assert undo_next == tm.log.record_at(l1).prev_lsn


class TestLockManager:
    def test_acquire_release(self):
        locks = LockManager()
        locks.acquire(1, b"k")
        assert locks.holder_of(b"k") == 1
        locks.release_all(1)
        assert locks.holder_of(b"k") is None

    def test_reentrant_acquire(self):
        locks = LockManager()
        locks.acquire(1, b"k")
        locks.acquire(1, b"k")  # no error

    def test_conflict_raises(self):
        locks = LockManager()
        locks.acquire(1, b"k")
        with pytest.raises(LockConflict):
            locks.acquire(2, b"k")

    def test_deadlock_detected(self):
        locks = LockManager()
        locks.acquire(1, b"a")
        locks.acquire(2, b"b")
        with pytest.raises(LockConflict):
            locks.acquire(1, b"b")  # 1 waits for 2
        # Record the wait edge as a real block would, then close the cycle.
        locks._waits_for[1] = 2
        with pytest.raises(DeadlockError):
            locks.acquire(2, b"a")  # 2 waits for 1 -> cycle

    def test_locks_held_tracking(self):
        locks = LockManager()
        locks.acquire(1, b"x")
        locks.acquire(1, b"y")
        assert locks.locks_held(1) == {b"x", b"y"}
