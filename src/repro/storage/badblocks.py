"""Bad-block bookkeeping.

After single-page recovery, "the old, failed location can be
deallocated to the free space pool or registered in an appropriate data
structure to prevent future use (bad block list)" (Section 5.2.3).
Devices also use this list for write-time remapping ("bad block
mapping", Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BadBlockEntry:
    """One quarantined physical sector."""

    sector: int
    reason: str
    at_time: float


@dataclass
class BadBlockList:
    """Set of physical sectors that must never be used again."""

    _entries: dict[int, BadBlockEntry] = field(default_factory=dict)

    def add(self, sector: int, reason: str, at_time: float = 0.0) -> None:
        self._entries.setdefault(
            sector, BadBlockEntry(sector, reason, at_time))

    def __contains__(self, sector: int) -> bool:
        return sector in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[BadBlockEntry]:
        return sorted(self._entries.values(), key=lambda e: e.sector)

    def reasons(self) -> dict[str, int]:
        """Histogram of quarantine reasons (for reporting)."""
        hist: dict[str, int] = {}
        for entry in self._entries.values():
            hist[entry.reason] = hist.get(entry.reason, 0) + 1
        return hist
