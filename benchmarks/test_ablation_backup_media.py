"""Ablation — where the backup image lives.

Section 5.2.1: "a single, sequentially compressed backup image of an
entire database is less than ideal" for single-page recovery, because
fetching one page from archive media pays the archive's first-byte
latency.  Explicit page copies and in-log images sit on direct-access
media and make recovery's backup fetch cheap.

The sweep recovers the same page from each backup source and media
placement.
"""

from __future__ import annotations

from benchmarks.common import key_of, print_table, value_of
from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import ARCHIVE_PROFILE, HDD_PROFILE


def build(backup_profile):
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=2048, buffer_capacity=128,
        device_profile=HDD_PROFILE, log_profile=HDD_PROFILE,
        backup_profile=backup_profile,
        backup_policy=BackupPolicy.disabled()))
    tree = db.create_index()
    txn = db.begin()
    for i in range(400):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree


def victim_of(db, tree):
    page, _n = tree._descend(key_of(0), for_write=False)
    pid = page.page_id
    db.unfix(pid)
    db.evict_everything()
    return pid


def recover_once(db, tree, victim):
    db.device.inject_read_error(victim)
    t0 = db.clock.now
    assert tree.lookup(key_of(0)) == value_of(0, 0)
    return db.clock.now - t0


def run_source(label: str, profile, prepare):  # noqa: ANN001
    db, tree = build(profile)
    victim = victim_of(db, tree)
    prepare(db, tree, victim)
    db.flush_everything()
    db.evict_everything()
    seconds = recover_once(db, tree, victim)
    return [label, profile.name, seconds]


def test_ablation_backup_placement(benchmark):
    def sweep():
        rows = []
        # Full backup on direct-access disk vs archive media.
        rows.append(run_source(
            "full backup", HDD_PROFILE,
            lambda db, tree, v: db.take_full_backup()))
        rows.append(run_source(
            "full backup", ARCHIVE_PROFILE,
            lambda db, tree, v: db.take_full_backup()))
        # Explicit page copy (backup store on disk).
        def page_copy(db, tree, v):  # noqa: ANN001
            page = db.pool.fix(v)
            db.take_page_copy(page)
            db.pool.unfix(v)
        rows.append(run_source("page copy", HDD_PROFILE, page_copy))
        # In-log image (the log is always direct-access).
        rows.append(run_source(
            "in-log image", HDD_PROFILE,
            lambda db, tree, v: db.take_log_image(v)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_key = {(r[0], r[1]): r[2] for r in rows}

    disk_full = by_key[("full backup", "hdd")]
    tape_full = by_key[("full backup", "archive")]
    page_copy = by_key[("page copy", "hdd")]
    log_image = by_key[("in-log image", "hdd")]

    # The paper's point: archive placement is "less than ideal" —
    # here by orders of magnitude (one 30 s first-byte latency).
    assert tape_full > 50 * disk_full
    # Direct-access sources all keep recovery around/below a second.
    assert disk_full < 1.0 and page_copy < 1.0 and log_image < 1.0
    # And the archive path alone blows the "second or less" budget.
    assert tape_full > 1.0

    print_table(
        "Ablation: single-page recovery time by backup source and media",
        ["backup source", "backup media", "recovery sim s"],
        rows)
