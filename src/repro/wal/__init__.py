"""Write-ahead log: records, chains, segments, stable storage, readers.

The log buffer is **segmented**: fixed-size in-memory segments behind a
truncation-aware directory (:mod:`repro.wal.segments`), so point
lookups, range scans, truncation, and crash discard are all indexed —
never scans of the whole log.  A per-page **chain head index** kept
current on append makes every page's chain addressable directly.

The log implements the two chains the paper builds on:

* the **per-transaction chain** (Section 5.1.1), used for rollback;
* the **per-page chain** (Section 5.1.4), used for single-page
  recovery: every log record stores the PageLSN the page had *before*
  the update, so the chain can be walked backwards from the current
  PageLSN to any earlier point (e.g. the last page backup).

LSNs are byte offsets into the log, so log-volume accounting is real.
The log is stable storage (Section 5): once forced, records survive
crashes; unforced records are lost by ``LogManager.crash()``.
"""

from repro.wal.lsn import LOG_START, NULL_LSN
from repro.wal.log_manager import LogManager
from repro.wal.log_reader import LogReader
from repro.wal.segments import DEFAULT_SEGMENT_BYTES, LogSegment, SegmentDirectory
from repro.wal.ops import (
    OpDelete,
    OpInitSlotted,
    OpInsert,
    OpSetGhost,
    OpUpdateValue,
    OpWriteBytes,
    PageOp,
)
from repro.wal.records import (
    CheckpointData,
    LogRecord,
    LogRecordKind,
    LogicalUndo,
)

__all__ = [
    "LogManager",
    "LogReader",
    "LogSegment",
    "SegmentDirectory",
    "DEFAULT_SEGMENT_BYTES",
    "LogRecord",
    "LogRecordKind",
    "LogicalUndo",
    "CheckpointData",
    "PageOp",
    "OpInsert",
    "OpDelete",
    "OpUpdateValue",
    "OpSetGhost",
    "OpWriteBytes",
    "OpInitSlotted",
    "NULL_LSN",
    "LOG_START",
]
