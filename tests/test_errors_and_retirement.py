"""Coverage for the failure taxonomy (``repro/errors.py``) and the
backup-retirement gates (``retire_full_backups`` edge cases)."""

from __future__ import annotations

import pytest

from repro import errors
from repro.engine.database import Database
from repro.errors import (
    DeadlockError,
    DuplicateKey,
    FailureClass,
    KeyNotFound,
    MediaFailure,
    PageFailureKind,
    RecoveryError,
    ReproError,
    SinglePageFailure,
    StorageError,
    SystemFailure,
    TransactionAborted,
    TransactionError,
)
from tests.conftest import fast_config, key_of, value_of


# ----------------------------------------------------------------------
# The failure taxonomy
# ----------------------------------------------------------------------
class TestFailureTaxonomy:
    def test_four_failure_classes(self):
        assert {fc.value for fc in FailureClass} == {
            "transaction", "media", "system", "single-page"}

    def test_classes_attached_to_exceptions(self):
        assert TransactionError.failure_class is FailureClass.TRANSACTION
        assert (SinglePageFailure(1, PageFailureKind.CHECKSUM_MISMATCH)
                .failure_class is FailureClass.SINGLE_PAGE)
        assert MediaFailure("d0").failure_class is FailureClass.MEDIA
        assert SystemFailure().failure_class is FailureClass.SYSTEM

    def test_hierarchy_roots_at_reproerror(self):
        for exc_type in (TransactionAborted, DeadlockError, StorageError,
                         SinglePageFailure, MediaFailure, SystemFailure,
                         RecoveryError, KeyNotFound, DuplicateKey,
                         errors.ConfigError, errors.LogError,
                         errors.BufferPoolError, errors.BTreeError):
            assert issubclass(exc_type, ReproError)
        assert issubclass(DeadlockError, TransactionAborted)
        assert issubclass(SinglePageFailure, StorageError)
        assert issubclass(MediaFailure, StorageError)
        assert not issubclass(SystemFailure, StorageError)

    def test_transaction_aborted_carries_context(self):
        exc = TransactionAborted(42, "deadlock victim")
        assert exc.txn_id == 42
        assert exc.reason == "deadlock victim"
        assert "42" in str(exc) and "deadlock victim" in str(exc)

    def test_single_page_failure_message_and_fields(self):
        exc = SinglePageFailure(17, PageFailureKind.STALE_LSN, "lost write")
        assert exc.page_id == 17
        assert exc.kind is PageFailureKind.STALE_LSN
        assert "page 17" in str(exc)
        assert "stale-lsn" in str(exc)
        assert "lost write" in str(exc)
        bare = SinglePageFailure(3, PageFailureKind.BAD_MAGIC)
        assert bare.detail == ""
        assert str(bare).endswith("bad-magic")

    def test_media_failure_fields(self):
        exc = MediaFailure("db0", "head crash")
        assert exc.device_name == "db0"
        assert exc.reason == "head crash"
        assert "db0" in str(exc) and "head crash" in str(exc)

    def test_system_failure_reason(self):
        assert SystemFailure("power").reason == "power"
        assert "power" in str(SystemFailure("power"))

    def test_key_errors_carry_key(self):
        assert KeyNotFound(b"k").key == b"k"
        assert DuplicateKey(b"k").key == b"k"

    def test_detection_kinds_cover_the_stack(self):
        assert {kind.value for kind in PageFailureKind} == {
            "device-read-error", "checksum-mismatch", "bad-magic",
            "header-implausible", "wrong-page-id", "stale-lsn",
            "btree-invariant"}


# ----------------------------------------------------------------------
# retire_full_backups edges
# ----------------------------------------------------------------------
def loaded_db_with_traffic() -> tuple[Database, object]:
    db = Database(fast_config())
    tree = db.create_index()
    txn = db.begin()
    for i in range(120):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    return db, tree


def touch(db: Database, tree, version: int) -> None:  # noqa: ANN001
    txn = db.begin()
    for i in range(0, 120, 3):
        tree.update(txn, key_of(i), value_of(i, version))
    db.commit(txn)


class TestRetireFullBackups:
    def test_no_backups_present(self):
        db, _tree = loaded_db_with_traffic()
        assert db.retire_backups() == []

    def test_single_backup_never_retired(self):
        db, _tree = loaded_db_with_traffic()
        backup_id = db.take_full_backup()
        assert db.retire_backups() == []
        assert db.backup_store.has_full_backup(backup_id)

    def test_superseded_backup_retired_once_unreferenced(self):
        db, tree = loaded_db_with_traffic()
        b1 = db.take_full_backup()
        touch(db, tree, 1)
        b2 = db.take_full_backup()
        # b2's set_range_backup re-pointed the PRI at b2, so b1 is
        # neither newest nor referenced: it retires.
        assert db.retire_backups() == [b1]
        assert db.backup_store.full_backup_ids() == [b2]

    def test_watermark_not_reached_blocks_retirement(self):
        """The backup a pending on-demand restore reads from must
        survive until the completion watermark is recorded."""
        db, tree = loaded_db_with_traffic()
        b1 = db.take_full_backup()
        touch(db, tree, 1)
        db.device.fail_device("test")
        db._on_media_failure(MediaFailure(db.device.name, "test"))
        db.recover_media(b1, mode="on_demand")
        db.drain_restore(page_budget=2)
        assert db.restore_pending
        assert db.retire_backups() == []
        assert db.backup_store.has_full_backup(b1)
        # Completing the restore alone is not enough: the PRI still
        # references b1 (the restore re-pointed page backups at it).
        db.finish_restore()
        assert not db.restore_pending
        assert db.retire_backups() == []
        # A fresh backup re-points the PRI; b1 finally retires.
        b2 = db.take_full_backup()
        assert db.retire_backups() == [b1]
        assert db.backup_store.full_backup_ids() == [b2]

    def test_pri_reference_blocks_retirement(self):
        """A backup any page-recovery-index entry still references is
        pinned for single-page recovery, even when it is not the one a
        restore is running from and a newer backup exists."""
        db, tree = loaded_db_with_traffic()
        b1 = db.take_full_backup()
        touch(db, tree, 1)
        b2 = db.take_full_backup()
        # Restore from the *older* backup: the registry re-points the
        # PRI's page backups at b1 even though b2 is newer.
        db.device.fail_device("test")
        db._on_media_failure(MediaFailure(db.device.name, "test"))
        db.recover_media(b1, mode="eager")
        from repro.wal.records import BackupRefKind

        refs = {ref.value
                for partition in db.checkpointer._partitions()
                for ref in partition._refs
                if ref.kind == BackupRefKind.FULL_BACKUP}
        assert b1 in refs
        # No restore is pending, yet b1 must survive: the PRI would
        # hand single-page recovery a dangling reference otherwise.
        assert db.retire_backups() == []
        assert db.backup_store.has_full_backup(b1)
        # A fresh backup re-points every page; b1 and b2 both retire.
        b3 = db.take_full_backup()
        assert db.retire_backups() == [b1, b2]
        assert db.backup_store.full_backup_ids() == [b3]

    def test_interrupted_restore_pins_backup_across_crash(self):
        """A crash during a pending restore retains the backup the
        re-run will need (``_pending_restore_backup_id``)."""
        db, tree = loaded_db_with_traffic()
        b1 = db.take_full_backup()
        touch(db, tree, 1)
        db.device.fail_device("test")
        db._on_media_failure(MediaFailure(db.device.name, "test"))
        db.recover_media(b1, mode="on_demand")
        db.drain_restore(page_budget=2)
        db.crash()
        assert db._pending_restore_backup_id == b1
        assert db.retire_backups() == []
        db.recover_media(b1, mode="eager")
        assert db._pending_restore_backup_id is None

    def test_store_retire_unknown_backup_raises(self):
        db, _tree = loaded_db_with_traffic()
        with pytest.raises(RecoveryError):
            db.backup_store.retire_full_backup(999)
