"""Lock-manager behavior under real thread contention.

The lock manager never parks a thread: conflicts raise
:class:`LockConflict` (or :class:`DeadlockError` on a wait-for cycle)
and the caller retries, so cross-thread waits cannot deadlock inside
the manager itself.  These tests drive it from actual threads: two-way
conflict/deadlock shapes, releasing a transaction's locks from a
*different* thread than the one that acquired them, resolver races,
and retry fairness (every contender eventually acquires — no
starvation, no lost releases).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Database
from repro.errors import DeadlockError
from repro.txn.locks import LockConflict, LockManager
from tests.conftest import fast_config, key_of, value_of


# ----------------------------------------------------------------------
# Two-thread conflict and deadlock shapes
# ----------------------------------------------------------------------
def test_two_thread_cross_conflict_both_raise_not_hang() -> None:
    """T1 holds A wants B, T2 holds B wants A: with raise-style
    conflicts neither thread can block, so both surface LockConflict
    (no wait-for edge persists, hence no false deadlock victim)."""
    locks = LockManager()
    locks.acquire(1, b"A")
    locks.acquire(2, b"B")
    barrier = threading.Barrier(2)
    outcomes: dict[int, object] = {}

    def contend(txn_id: int, key: bytes) -> None:
        barrier.wait()
        try:
            locks.acquire(txn_id, key)
            outcomes[txn_id] = "acquired"
        except LockConflict as exc:
            outcomes[txn_id] = exc

    threads = [threading.Thread(target=contend, args=(1, b"B")),
               threading.Thread(target=contend, args=(2, b"A"))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5)
    assert all(isinstance(v, LockConflict) for v in outcomes.values()), outcomes
    # Holders unchanged: the failed requests left no residue.
    assert locks.holder_of(b"A") == 1
    assert locks.holder_of(b"B") == 2
    assert locks.locks_held(1) == {b"A"}
    assert locks.locks_held(2) == {b"B"}


def test_deadlock_detected_when_waiter_parks_via_resolver() -> None:
    """A cycle through the wait-for graph still names a victim: T2
    registers its wait (via a resolver that retries), T1 then closes
    the cycle and is chosen as the deadlock victim."""
    locks = LockManager()
    locks.acquire(1, b"A")
    locks.acquire(2, b"B")
    # Simulate T2 parked waiting for A (a persistent wait-for edge, as
    # a blocking lock manager would have).
    locks._waits_for[2] = 1
    with pytest.raises(DeadlockError):
        locks.acquire(1, b"B")  # 1 -> 2 -> 1 closes the cycle
    # The victim's transient edge is gone; the parked edge remains.
    assert locks._waits_for == {2: 1}


# ----------------------------------------------------------------------
# Release from another thread (abort-from-another-thread)
# ----------------------------------------------------------------------
def test_release_from_other_thread_unblocks_retrier() -> None:
    """A retrying contender on thread B acquires as soon as thread A
    aborts the holder — release_all is atomic, so B sees either the
    old holder or none, never a half-released state."""
    db = Database(fast_config())
    tree = db.create_index()
    holder_session = db.session()
    holder_session.begin()
    holder_session.upsert(tree, key_of(1), value_of(1, 1).ljust(24, b"."))
    holder_txn = holder_session.forget()  # walks away holding the lock

    acquired = threading.Event()
    attempts = [0]

    def retrier() -> None:
        session = db.session()
        while True:
            session.begin()
            try:
                session.upsert(tree, key_of(1),
                               value_of(1, 2).ljust(24, b"."))
                session.commit()
                acquired.set()
                return
            except LockConflict:
                attempts[0] += 1
                session.abort()
                time.sleep(0.001)

    thread = threading.Thread(target=retrier, daemon=True)
    thread.start()
    time.sleep(0.03)  # let the retrier collide with the held lock
    assert not acquired.is_set()
    assert attempts[0] > 0, "retrier never actually conflicted"
    # Abort the abandoned transaction from this (different) thread.
    db.abort(holder_txn)
    thread.join(5)
    assert acquired.is_set()
    assert tree.lookup(key_of(1)) == value_of(1, 2).ljust(24, b".")


def test_conflict_resolver_invoked_under_contention() -> None:
    """The resolver (instant restart's lazy-undo hook) runs inside the
    manager's mutex: concurrent acquirers see either the loser holding
    the key or the post-resolution state, never a torn map."""
    locks = LockManager()
    locks.acquire(99, b"hot")  # the "pending loser"
    resolved = []

    def resolver(holder: int) -> bool:
        if holder != 99:
            return False
        resolved.append(threading.get_ident())
        locks.release_all(99)
        return True

    locks.conflict_resolver = resolver
    winners: list[int] = []
    losers: list[int] = []

    def contend(txn_id: int) -> None:
        try:
            locks.acquire(txn_id, b"hot")
            winners.append(txn_id)
        except LockConflict:
            losers.append(txn_id)

    threads = [threading.Thread(target=contend, args=(i,))
               for i in range(1, 7)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5)
    # Exactly one thread resolved the loser and exactly one owns the
    # key; everyone else conflicted against the new owner.
    assert len(resolved) == 1
    assert len(winners) == 1
    assert locks.holder_of(b"hot") == winners[0]
    assert len(losers) == 5


# ----------------------------------------------------------------------
# Fairness: retrying waiters all make progress
# ----------------------------------------------------------------------
def test_retrying_waiters_all_eventually_acquire() -> None:
    """N threads hammer one key with acquire-work-release cycles; with
    atomic release and raise-style conflicts every thread completes
    its quota (no starvation, no lost wakeup, no lost release)."""
    locks = LockManager()
    n_threads, rounds = 8, 25
    done = [0] * n_threads
    errors: list[BaseException] = []

    def worker(txn_id: int) -> None:
        try:
            for _ in range(rounds):
                while True:
                    try:
                        locks.acquire(txn_id, b"gold")
                        break
                    except LockConflict:
                        time.sleep(0)  # yield; retry
                assert locks.holder_of(b"gold") == txn_id
                locks.release_all(txn_id)
                done[txn_id - 1] += 1
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i + 1,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors, errors
    assert done == [rounds] * n_threads
    assert locks.holder_of(b"gold") is None
