"""Online shard rebalancing: routing table, slot moves, cutover replay.

The move protocol reuses the recovery machinery end to end: the slot
snapshot travels through the verified full-backup path, the catch-up
delta is read off the source's log (committed records only — presumed
abort for the rest), and the cutover's commit point is a forced epoch
record in the same coordinator log that 2PC decisions live in.
"""

import pytest

from repro.errors import (
    ConfigError,
    ShardUnavailableError,
    TransactionAborted,
    WrongShardError,
)
from repro.shard.config import ShardConfig
from repro.shard.router import ShardRouter
from repro.shard.routing import RoutingTable, slot_of
from repro.shard.rpc import marshal_error, unmarshal_error
from repro.shard.twopc import CoordinatorLog


def make_router(n_shards=4, n_slots=64):
    return ShardRouter(ShardConfig(n_shards=n_shards, n_slots=n_slots,
                                   transport="inproc"))


def keys_in_slot(router, slot, count):
    """``count`` distinct keys hashing into ``slot``."""
    chosen = []
    i = 0
    while len(chosen) < count:
        key = b"key%06d" % i
        if router.slot_of(key) == slot:
            chosen.append(key)
        i += 1
    return chosen


def populated_slot(router, min_keys=3):
    """A slot with ``min_keys`` keys written through the router;
    returns ``(slot, keys)``."""
    slot = 0
    keys = keys_in_slot(router, slot, min_keys)
    for i, key in enumerate(keys):
        router.put(key, b"v%d" % i)
    return slot, keys


# ----------------------------------------------------------------------
# Routing table
# ----------------------------------------------------------------------
class TestRoutingTable:
    def test_initial_assignment_matches_legacy_partitioner(self):
        # 4 | 64, so slot routing must equal the old crc32 % n map.
        import zlib
        table = RoutingTable(64, 4)
        for i in range(200):
            key = b"key%06d" % i
            assert table.shard_for(key) == zlib.crc32(key) % 4

    def test_move_bumps_epoch_and_reassigns(self):
        table = RoutingTable(16, 4)
        assert table.epoch == 0
        assert table.owner_of(5) == 1
        assert table.move(5, 3) == 1
        assert table.owner_of(5) == 3
        assert 5 in table.slots_of(3)
        assert 5 not in table.slots_of(1)

    def test_slots_partition_the_slot_space(self):
        table = RoutingTable(16, 3)
        table.move(4, 2)
        all_slots = [s for shard in range(3) for s in table.slots_of(shard)]
        assert sorted(all_slots) == list(range(16))

    def test_out_of_range_rejected(self):
        table = RoutingTable(16, 4)
        with pytest.raises(ConfigError):
            table.move(16, 0)
        with pytest.raises(ConfigError):
            table.move(0, 4)

    def test_fewer_slots_than_shards_rejected(self):
        with pytest.raises(ConfigError):
            RoutingTable(2, 3)
        with pytest.raises(ConfigError):
            ShardConfig(n_shards=3, n_slots=2)

    def test_apply_epochs_replays_in_order(self):
        log = CoordinatorLog()
        log.log_epoch(1, 5, 1, 3)
        log.log_epoch(2, 5, 3, 0)
        log.log_epoch(3, 9, 1, 2)
        table = RoutingTable(16, 4)
        # Shuffled input: replay must sort by epoch.
        records = list(log.durable_epochs())
        assert table.apply_epochs(reversed(records)) == 3
        assert table.owner_of(5) == 0
        assert table.owner_of(9) == 2

    def test_apply_epochs_rejects_gaps(self):
        log = CoordinatorLog()
        log.log_epoch(2, 5, 1, 3)  # epoch 1 is missing
        with pytest.raises(ConfigError):
            RoutingTable(16, 4).apply_epochs(log.durable_epochs())


# ----------------------------------------------------------------------
# Epoch records in the coordinator log
# ----------------------------------------------------------------------
class TestEpochLog:
    def test_epochs_and_decisions_do_not_mix(self):
        log = CoordinatorLog()
        gtid = log.allocate_gtid()
        log.log_decision(gtid, "commit", (0, 1))
        log.log_epoch(1, 5, 0, 1)
        assert log.decision_of(gtid) == "commit"
        assert [d.gtid for d in log.durable_decisions()] == [gtid]
        assert [e.epoch for e in log.durable_epochs()] == [1]

    def test_unforced_epoch_dies_with_the_coordinator(self):
        log = CoordinatorLog()
        log.log_epoch(1, 5, 0, 1, force=False)
        log.crash()
        assert log.durable_epochs() == []


# ----------------------------------------------------------------------
# Worker-side slot ownership
# ----------------------------------------------------------------------
class TestWorkerOwnership:
    def test_foreign_key_refused_with_typed_redirect(self):
        router = make_router()
        key = b"key000000"
        slot = router.slot_of(key)
        idx = router.shard_of(key)
        other = (idx + 1) % router.config.n_shards
        worker = router.shards[other].worker
        with pytest.raises(WrongShardError) as info:
            worker.execute(("get", key))
        assert info.value.slot == slot
        with pytest.raises(WrongShardError):
            worker.execute(("put", key, b"v"))
        router.close()

    def test_scan_filters_unowned_leftovers(self):
        router = make_router()
        key = b"key000000"
        idx = router.shard_of(key)
        router.put(key, b"v")
        # Revoke the slot from its owner without deleting the key: the
        # stale resident must vanish from the worker's scans.
        router.shards[idx].call(("set_slots", router.config.n_slots, ()))
        assert router.shards[idx].call(("scan", b"", None)) == []
        router.close()

    def test_worker_without_assignment_owns_everything(self):
        from repro.engine.config import EngineConfig
        from repro.shard.worker import ShardWorker

        worker = ShardWorker(0, EngineConfig())
        worker.execute(("put", b"any", b"v"))
        assert worker.execute(("get", b"any")) == b"v"

    def test_wrong_shard_error_survives_rpc_marshalling(self):
        original = WrongShardError("shard 1 does not own slot 9",
                                   shard=1, slot=9)
        name, message = marshal_error(original)
        rebuilt = unmarshal_error(name, message)
        assert isinstance(rebuilt, WrongShardError)
        assert "slot 9" in str(rebuilt)


# ----------------------------------------------------------------------
# The move protocol
# ----------------------------------------------------------------------
class TestMoveSlot:
    def test_basic_move_preserves_data_and_reroutes(self):
        router = make_router()
        slot, keys = populated_slot(router)
        src = router.routing.owner_of(slot)
        dst = (src + 1) % router.config.n_shards
        epoch = router.move_slot(slot, dst)
        assert epoch == 1
        assert router.routing.owner_of(slot) == dst
        assert router.shard_of(keys[0]) == dst
        for i, key in enumerate(keys):
            assert router.get(key) == b"v%d" % i
        # The destination actually holds the keys...
        dst_keys = {k for k, _ in router.shards[dst].call(("scan", b"", None))}
        assert set(keys) <= dst_keys
        # ...and the source physically dropped its leftovers.
        src_physical = {k for k, _ in
                        router.shards[src].worker._tree.range_scan(b"", None)}
        assert not (set(keys) & src_physical)
        router.close()

    def test_move_is_durably_logged_as_an_epoch_record(self):
        router = make_router()
        slot, _keys = populated_slot(router)
        src = router.routing.owner_of(slot)
        dst = (src + 2) % router.config.n_shards
        router.move_slot(slot, dst)
        [record] = router.coordinator.durable_epochs()
        assert (record.epoch, record.slot, record.src, record.dst) == \
            (1, slot, src, dst)
        router.close()

    def test_noop_move_to_current_owner(self):
        router = make_router()
        slot = 7
        src = router.routing.owner_of(slot)
        assert router.move_slot(slot, src) == 0
        assert router.coordinator.durable_epochs() == []
        router.close()

    def test_delta_carries_traffic_between_snapshot_and_cutover(self):
        router = make_router()
        slot, keys = populated_slot(router, min_keys=4)
        dst = (router.routing.owner_of(slot) + 1) % router.config.n_shards

        def traffic():
            # The snapshot is already installed on the destination;
            # the source keeps serving.  These must survive the move.
            router.put(keys[0], b"rewritten")
            router.put(b"key-brand-new" if router.slot_of(
                b"key-brand-new") == slot else keys[1], b"fresh")
            router.delete(keys[2])

        router.move_slot(slot, dst, copy_hook=traffic)
        assert router.get(keys[0]) == b"rewritten"
        assert router.get(keys[2]) is None
        assert router.get(keys[3]) == b"v3"
        router.close()

    def test_scan_is_identical_across_a_move(self):
        router = make_router()
        for i in range(40):
            router.put(b"key%06d" % i, b"v%d" % i)
        before = router.scan()
        slot = router.slot_of(b"key000000")
        dst = (router.routing.owner_of(slot) + 1) % router.config.n_shards
        router.move_slot(slot, dst)
        assert router.scan() == before
        router.close()

    def test_move_resolves_indoubt_branches_first(self):
        from tests.test_twopc_matrix import (
            cross_shard_keys,
            interrupted_commit,
        )

        router = make_router()
        keys = cross_shard_keys(router, 2)
        # Decision forced, phase two never ran: both branches sit
        # prepared, holding their locks.
        interrupted_commit(router, keys, "after_decision",
                           crash_shard=False)
        slot = router.slot_of(keys[0])
        src = router.routing.owner_of(slot)
        dst = (src + 1) % router.config.n_shards
        router.move_slot(slot, dst)
        # The in-doubt branch was resolved (commit) before the export,
        # so its effect crossed over with the slot.
        assert router.get(keys[0]) == b"v0"
        assert router.routing.owner_of(slot) == dst
        router.close()

    def test_open_transaction_on_moving_slot_is_force_aborted(self):
        router = make_router()
        slot, keys = populated_slot(router)
        dst = (router.routing.owner_of(slot) + 1) % router.config.n_shards
        txn = router.txn()
        txn.put(keys[0], b"straddler")
        router.move_slot(slot, dst)
        with pytest.raises(TransactionAborted):
            txn.put(keys[1], b"more")
        with pytest.raises(TransactionAborted):
            txn.commit()
        # The aborted branch's locks are gone and its write never
        # landed: the moved slot serves the pre-move value.
        assert router.get(keys[0]) == b"v0"
        router.put(keys[0], b"after")
        assert router.get(keys[0]) == b"after"
        router.close()

    def test_unrelated_open_transaction_survives_the_move(self):
        router = make_router()
        slot, _keys = populated_slot(router)
        dst = (router.routing.owner_of(slot) + 1) % router.config.n_shards
        bystander = keys_in_slot(router, slot + 1, 1)[0]
        txn = router.txn()
        txn.put(bystander, b"unscathed")
        router.move_slot(slot, dst)
        txn.commit()
        assert router.get(bystander) == b"unscathed"
        router.close()

    def test_move_to_crashed_destination_reopens_on_demand(self):
        router = make_router()
        slot, keys = populated_slot(router)
        dst = (router.routing.owner_of(slot) + 1) % router.config.n_shards
        router.shards[dst].worker.execute(("crash",))
        router.move_slot(slot, dst)
        assert router.reopens >= 1
        assert router.get(keys[0]) == b"v0"
        router.close()

    def test_move_with_partitioned_source_is_refused(self):
        router = make_router()
        slot, keys = populated_slot(router)
        src = router.routing.owner_of(slot)
        dst = (src + 1) % router.config.n_shards
        router.shards[src].partitioned = True
        with pytest.raises(ShardUnavailableError):
            router.move_slot(slot, dst)
        # Nothing moved: no epoch, ownership unchanged, data intact.
        assert router.coordinator.durable_epochs() == []
        assert router.routing.owner_of(slot) == src
        router.shards[src].partitioned = False
        assert router.get(keys[0]) == b"v0"
        router.close()

    def test_out_of_range_move_rejected(self):
        router = make_router()
        with pytest.raises(ConfigError):
            router.move_slot(router.config.n_slots, 0)
        with pytest.raises(ConfigError):
            router.move_slot(0, router.config.n_shards)
        router.close()


# ----------------------------------------------------------------------
# Cutover recovery and the redirect race
# ----------------------------------------------------------------------
class TestCutoverRecovery:
    def test_new_router_replays_epochs_from_the_coordinator_log(self):
        router = make_router()
        slot, _keys = populated_slot(router)
        dst = (router.routing.owner_of(slot) + 1) % router.config.n_shards
        router.move_slot(slot, dst)
        other = (router.routing.owner_of(slot + 1) + 2) \
            % router.config.n_shards
        router.move_slot(slot + 1, other)
        assignments = router.routing.assignments()
        log = router.coordinator
        router.close()
        # A successor router handed the durable coordinator log must
        # adopt the cutover history, not the fleet-creation map.
        successor = ShardRouter(
            ShardConfig(n_shards=4, transport="inproc"), coordinator=log)
        assert successor.routing.epoch == 2
        assert successor.routing.assignments() == assignments
        successor.close()

    def test_racing_command_is_redirected_after_resync(self):
        router = make_router()
        key = b"key000000"
        slot = router.slot_of(key)
        idx = router.shard_of(key)
        router.put(key, b"v")
        # Simulate a worker whose slot view lags the routing table (a
        # command racing the cutover): it must refuse, the router must
        # resync it and serve from the table's owner.
        stale = tuple(s for s in router.routing.slots_of(idx) if s != slot)
        router.shards[idx].call(("set_slots", router.config.n_slots, stale))
        assert router.get(key) == b"v"
        assert slot in router.shards[idx].call(("owned_slots",))
        router.close()


# ----------------------------------------------------------------------
# Client facade passthrough
# ----------------------------------------------------------------------
class TestClientRebalance:
    def test_rebalance_slot_through_the_facade(self):
        import repro

        client = repro.connect(ShardConfig(n_shards=4, transport="inproc"))
        client.put(b"key000000", b"v")
        slot = client.router.slot_of(b"key000000")
        src = client.slot_assignments()[slot]
        dst = (src + 1) % 4
        assert client.rebalance_slot(slot, dst) == 1
        assert client.slot_assignments()[slot] == dst
        assert client.get(b"key000000") == b"v"
        client.close()
