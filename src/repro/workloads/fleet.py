"""Fleet-scale failure model and the multi-client chaos workload.

Bairavasundaram et al. [2] observed that 9.5 % of nearline (SATA)
disks develop at least one latent sector error per year, often several;
[3] adds silent corruption in the storage stack.  :class:`FleetModel`
turns those annual rates into deterministic per-device fault schedules
so availability experiments can compare engines under realistic error
arrival patterns.

:class:`ClientFleet` is the workload side of the chaos simulation: a
fleet of clients, each with its *own* seeded RNG stream and cursor, so
client ``c``'s ``k``-th action is a pure function of ``(fleet seed,
c, k)`` — independent of how the scheduler interleaves the clients,
of failures, and of which other events a shrunk schedule retains.
That independence is what makes greedy event-deletion shrinking sound:
removing one event never perturbs the actions the surviving events
perform.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

#: Annual probability that a nearline disk develops >= 1 latent sector
#: error (Bairavasundaram et al., SIGMETRICS 2007).
NEARLINE_LSE_ANNUAL_RATE = 0.095
#: Enterprise disks fared better in the same study.
ENTERPRISE_LSE_ANNUAL_RATE = 0.019

SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class ScheduledFault:
    """One fault at one simulated time on one device."""

    time: float
    device_index: int
    page_id: int
    kind: str  # "read-error" | "bit-rot" | "lost-write"


@dataclass
class FleetOutcome:
    """Aggregate result of a fleet availability experiment."""

    devices: int = 0
    faults_injected: int = 0
    recovered_locally: int = 0
    media_failures: int = 0
    system_failures: int = 0
    total_downtime_seconds: float = 0.0
    transactions_aborted: int = 0

    @property
    def availability(self) -> float:
        """Fraction of device-years without a media/system outage."""
        if self.devices == 0:
            return 1.0
        return 1.0 - (self.media_failures + self.system_failures) / self.devices


class FleetModel:
    """Generates fault schedules for a fleet of devices."""

    def __init__(self, n_devices: int, pages_per_device: int,
                 years: float = 1.0,
                 annual_lse_rate: float = NEARLINE_LSE_ANNUAL_RATE,
                 errors_per_incident: float = 3.0,
                 silent_fraction: float = 0.3,
                 seed: int = 7) -> None:
        self.n_devices = n_devices
        self.pages_per_device = pages_per_device
        self.years = years
        self.annual_lse_rate = annual_lse_rate
        self.errors_per_incident = errors_per_incident
        self.silent_fraction = silent_fraction
        self.seed = seed

    def schedule(self) -> list[ScheduledFault]:
        """Deterministic fault schedule for the whole fleet.

        Each device suffers an "incident" with the annual probability;
        an incident produces a geometric number of page faults (the
        study found errors cluster heavily), a fraction of them silent.
        """
        rng = random.Random(self.seed)
        faults: list[ScheduledFault] = []
        horizon = self.years * SECONDS_PER_YEAR
        p_incident = 1.0 - math.pow(1.0 - self.annual_lse_rate, self.years)
        for device in range(self.n_devices):
            if rng.random() >= p_incident:
                continue
            at = rng.random() * horizon
            n_errors = 1 + min(int(rng.expovariate(
                1.0 / max(self.errors_per_incident - 1, 0.1))), 50)
            for _ in range(n_errors):
                page = rng.randrange(self.pages_per_device)
                if rng.random() < self.silent_fraction:
                    kind = "lost-write" if rng.random() < 0.5 else "bit-rot"
                else:
                    kind = "read-error"
                faults.append(ScheduledFault(at, device, page, kind))
                at += rng.random() * 3600  # clustered within hours
        faults.sort(key=lambda f: f.time)
        return faults


# ----------------------------------------------------------------------
# Multi-client chaos workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClientAction:
    """One complete transaction intent emitted by one fleet client.

    ``ops`` is a list of ``(verb, key_index, payload)`` intents; the
    executor interprets them against current database state (an
    ``update`` of an absent key becomes an insert, a ``delete`` of an
    absent key becomes a lookup), so the *stream* itself never depends
    on state.  ``fate`` is ``"commit"`` or ``"abort"`` — aborts
    exercise the transaction failure class deliberately.
    """

    client: int
    seq: int
    fate: str
    ops: tuple[tuple[str, int, bytes], ...]


class ClientFleet:
    """A resumable fleet of workload clients with independent seeded
    RNG streams.

    Each client owns a ``random.Random`` seeded from ``(seed,
    client)`` and a cursor counting the actions it has emitted.  The
    fleet is *resumable*: it lives outside the database engine, so a
    crash/restore cycle does not disturb any client's stream — the
    interrupted action is simply accounted by the caller (as a loser or
    an uncertain commit) and the stream continues.
    """

    #: intent verbs and their relative weights
    VERBS = (("update", 5), ("insert", 2), ("lookup", 2),
             ("delete", 1))

    def __init__(self, n_clients: int, seed: int, key_space: int,
                 max_ops_per_txn: int = 4, abort_fraction: float = 0.1) -> None:
        if n_clients <= 0:
            raise ValueError("need at least one client")
        if key_space <= 0:
            raise ValueError("need a positive key space")
        self.n_clients = n_clients
        self.seed = seed
        self.key_space = key_space
        self.max_ops_per_txn = max_ops_per_txn
        self.abort_fraction = abort_fraction
        self._rngs = [random.Random(f"fleet/{seed}/{client}")
                      for client in range(n_clients)]
        self._cursors = [0] * n_clients
        self._verb_pool = [verb for verb, weight in self.VERBS
                           for _ in range(weight)]

    def next_action(self, client: int) -> ClientAction:
        """Emit client ``client``'s next action and advance its cursor."""
        rng = self._rngs[client]
        seq = self._cursors[client]
        self._cursors[client] = seq + 1
        n_ops = rng.randrange(1, self.max_ops_per_txn + 1)
        ops = []
        for _ in range(n_ops):
            verb = rng.choice(self._verb_pool)
            key_index = rng.randrange(self.key_space)
            payload = b"c%d.%d.%d" % (client, seq, rng.randrange(1_000_000))
            ops.append((verb, key_index, payload))
        fate = "abort" if rng.random() < self.abort_fraction else "commit"
        return ClientAction(client, seq, fate, tuple(ops))

    def actions_emitted(self, client: int) -> int:
        return self._cursors[client]
