"""I/O cost profiles for simulated storage devices.

A profile models a device with a fixed per-operation access latency
(seek + rotation for disks, controller latency for flash) plus a
streaming bandwidth.  The paper's Section 6 uses exactly this kind of
first-order model: "restoring a backup with 100 GB of data at 100 MB/s
requires 1,000 s"; "dozens of I/Os ... pure I/O time should perhaps be
1 s".

Profiles are deliberately simple and explicit; experiments that need a
different device simply construct their own :class:`IOProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOProfile:
    """First-order cost model of a storage device.

    Attributes:
        name: human-readable profile name.
        read_latency: seconds of fixed cost per random read.
        write_latency: seconds of fixed cost per random write.
        bandwidth: streaming throughput in bytes per second.
        sequential_factor: multiplier (< 1) applied to per-operation
            latency when an access is sequential with respect to the
            previous one, modelling elevator-friendly access patterns.
    """

    name: str
    read_latency: float
    write_latency: float
    bandwidth: float
    sequential_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.read_latency < 0 or self.write_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.sequential_factor <= 1.0:
            raise ValueError("sequential_factor must be in [0, 1]")

    def read_cost(self, nbytes: int, sequential: bool = False) -> float:
        """Seconds needed to read ``nbytes`` in one operation."""
        latency = self.read_latency
        if sequential:
            latency *= self.sequential_factor
        return latency + nbytes / self.bandwidth

    def write_cost(self, nbytes: int, sequential: bool = False) -> float:
        """Seconds needed to write ``nbytes`` in one operation."""
        latency = self.write_latency
        if sequential:
            latency *= self.sequential_factor
        return latency + nbytes / self.bandwidth


#: A nearline (SATA) magnetic disk: ~8 ms random access, 100 MB/s.
#: The 100 MB/s figure matches the paper's backup-restore arithmetic.
HDD_PROFILE = IOProfile(
    name="hdd",
    read_latency=0.008,
    write_latency=0.008,
    bandwidth=100 * 1024 * 1024,
    sequential_factor=0.05,
)

#: A modern (for 2012) enterprise disk: 200 MB/s streaming, used by the
#: paper for the 2 TB restore example.
HDD_2012_PROFILE = IOProfile(
    name="hdd-2012",
    read_latency=0.006,
    write_latency=0.006,
    bandwidth=200 * 1024 * 1024,
    sequential_factor=0.05,
)

#: Flash / SSD storage: fast random reads, slower writes, high bandwidth.
FLASH_PROFILE = IOProfile(
    name="flash",
    read_latency=0.0001,
    write_latency=0.0005,
    bandwidth=500 * 1024 * 1024,
    sequential_factor=1.0,
)

#: Archive media (e.g. tape or cold object storage): enormous first-byte
#: latency.  The paper notes a sequentially compressed whole-database
#: backup is "less than ideal" for single-page recovery; this profile
#: quantifies why.
ARCHIVE_PROFILE = IOProfile(
    name="archive",
    read_latency=30.0,
    write_latency=30.0,
    bandwidth=150 * 1024 * 1024,
    sequential_factor=0.0,
)

#: In-memory "device", effectively free I/O; used by unit tests that do
#: not care about timing.
NULL_PROFILE = IOProfile(
    name="null",
    read_latency=0.0,
    write_latency=0.0,
    bandwidth=float(1 << 60),
    sequential_factor=1.0,
)
