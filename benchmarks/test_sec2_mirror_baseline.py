"""Section 2 — the only prior automatic page repair: database mirroring.

SQL Server's mirror-based repair freezes the failed page "until the
mirror has applied the entire stream of log records", and "completely
fails to exploit the per-page log chain already present in the ...
recovery log".

The sweep grows the outstanding log volume between failures and
compares, for the *same* failed page:

* mirror repair: records applied to the mirror (the whole stream);
* single-page recovery: records applied (the victim's chain only).

Mirror work grows linearly with total log volume; single-page recovery
grows only with the victim's share of it.
"""

from __future__ import annotations

from benchmarks.common import key_of, print_table, value_of
from repro.baselines.mirror_repair import LogShippingMirror
from repro.core.backup import BackupPolicy
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.iomodel import HDD_PROFILE, NULL_PROFILE

N_KEYS = 1200


def build():
    db = Database(EngineConfig(
        page_size=4096, capacity_pages=4096, buffer_capacity=256,
        device_profile=NULL_PROFILE, log_profile=NULL_PROFILE,
        backup_profile=NULL_PROFILE,
        backup_policy=BackupPolicy.disabled()))
    tree = db.create_index()
    txn = db.begin()
    for i in range(N_KEYS):
        tree.insert(txn, key_of(i), value_of(i, 0))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    return db, tree


def run_volume(total_updates: int):
    db, tree = build()
    # Fresh page copies so both competitors start from "backup current".
    for pid in range(db.config.data_start, db.allocated_pages()):
        page = db.pool.fix(pid)
        if page.page_type.name.startswith("BTREE"):
            db.take_page_copy(page)
        db.pool.unfix(pid)
    db.flush_everything()
    db.evict_everything()
    mirror = LogShippingMirror(db.log, db.clock, HDD_PROFILE, db.stats,
                               db.config.page_size)
    images = {pid: db.device.raw_image(pid)
              for pid in range(db.allocated_pages())
              if db.device.raw_image(pid) is not None}
    mirror.seed_from_images(images, db.log.end_lsn)
    page, _n = tree._descend(key_of(0), for_write=False)
    victim = page.page_id
    db.unfix(victim)
    db.evict_everything()
    # Spread updates evenly over the whole key range (stride walk).
    txn = db.begin()
    for v in range(total_updates):
        i = (v * 997) % N_KEYS
        tree.update(txn, key_of(i), value_of(i, v + 1))
    db.commit(txn)
    db.flush_everything()
    db.evict_everything()
    # Competitor A: mirror repair.
    t0 = db.clock.now
    _page, mirror_result = mirror.repair_page(victim)
    mirror_seconds = db.clock.now - t0
    # Competitor B: single-page recovery of the same page.
    db.device.inject_read_error(victim)
    tree.lookup(key_of(0))
    spf_result = db.single_page.history[-1]
    return {
        "updates": total_updates,
        "mirror_records": mirror_result.records_applied_to_mirror,
        "mirror_pages": mirror_result.mirror_pages_written,
        "mirror_seconds": mirror_seconds,
        "spf_records": spf_result.records_applied,
        "spf_ios": spf_result.total_random_ios,
    }


def test_sec2_mirror_vs_single_page(benchmark):
    def run():
        return [run_volume(n) for n in (200, 1000, 4000)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for r in results:
        # The mirror applies (at least) the whole update stream; the
        # chain walk applies only the victim's share.
        assert r["mirror_records"] >= r["updates"]
        assert r["spf_records"] < r["mirror_records"] / 5
    # Mirror work grows linearly with log volume...
    mirror_growth = results[-1]["mirror_records"] / results[0]["mirror_records"]
    assert mirror_growth > 10
    # ... single-page recovery grows with the victim's share only.
    spf_growth = (results[-1]["spf_records"] + 1) / (results[0]["spf_records"] + 1)
    assert spf_growth < mirror_growth

    print_table(
        "Section 2: mirror-based repair vs single-page recovery "
        "(same failed page)",
        ["updates since sync", "mirror: records applied",
         "mirror: pages written", "mirror: sim s",
         "SPF: records applied", "SPF: random I/Os"],
        [[r["updates"], r["mirror_records"], r["mirror_pages"],
          r["mirror_seconds"], r["spf_records"], r["spf_ios"]]
         for r in results])


def test_sec2_bench_mirror_catch_up(benchmark):
    """Wall time of mirror catch-up over a 1000-update stream."""
    def setup():
        db, tree = build()
        mirror = LogShippingMirror(db.log, db.clock, NULL_PROFILE, db.stats,
                                   db.config.page_size)
        images = {pid: db.device.raw_image(pid)
                  for pid in range(db.allocated_pages())
                  if db.device.raw_image(pid) is not None}
        mirror.seed_from_images(images, db.log.end_lsn)
        txn = db.begin()
        for v in range(1000):
            tree.update(txn, key_of(v % N_KEYS), value_of(v, v))
        db.commit(txn)
        return (mirror,), {}

    applied, _written = benchmark.pedantic(
        lambda mirror: mirror.catch_up(), setup=setup, rounds=3)
    assert applied >= 1000
