"""Backup-image sources for single-page recovery (Section 5.2.1).

Four sources, matching the paper:

1. **Full database backup** — "the same type of archive copy as
   required after a media failure"; for single-page recovery it should
   live on direct-access media (fetching one page from a sequentially
   compressed archive is charged accordingly — that is the point of
   the paper's "less than ideal" remark).
2. **Explicit page copies** — "a conservative policy might take such a
   copy after every 100 updates of a data page"; copies are written to
   a backup area, and a new copy never overwrites the old one ("it is
   not a good idea to overwrite an existing backup page, because the
   backup and recovery functionality are lost if this write operation
   fails") — the old copy is freed only after the new one is durable,
   using the old location remembered in the page recovery index.
3. **In-log full page images** — a (compressed) copy of the page in
   the recovery log.
4. **Formatting log records** — for a freshly allocated page, the
   format record *is* the backup.

Retained pre-move images from page migration (wear levelling,
defragmentation) are page copies taken at migration time, so they fall
out of source 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BackupRetired, RecoveryError, StorageError
from repro.page.page import Page
from repro.sim.clock import SimClock
from repro.sim.iomodel import IOProfile
from repro.sim.stats import Stats
from repro.wal.log_reader import LogReader
from repro.wal.records import (
    BackupRef,
    BackupRefKind,
    LogRecordKind,
    compress_image,
    decompress_image,
)


@dataclass
class BackupPolicy:
    """When to take a fresh page copy (Section 6).

    "Fast single-page recovery can be ensured with a page backup after
    a number of updates or after a period since the last page backup."
    """

    every_n_updates: int | None = None
    max_age_seconds: float | None = None

    def due(self, update_count: int, age_seconds: float) -> bool:
        if self.every_n_updates is not None and update_count >= self.every_n_updates:
            return True
        if self.max_age_seconds is not None and age_seconds >= self.max_age_seconds:
            return True
        return False

    @classmethod
    def disabled(cls) -> "BackupPolicy":
        return cls(None, None)


class BackupStore:
    """Holds full backups and explicit page copies on a backup medium.

    The backup medium has its own I/O profile; experiments switch it
    between direct-access disk and archive media to reproduce the
    paper's point about backup placement.
    """

    def __init__(self, clock: SimClock, profile: IOProfile, stats: Stats,
                 page_size: int) -> None:
        self.clock = clock
        self.profile = profile
        self.stats = stats
        self.page_size = page_size
        self._full_backups: dict[int, dict[int, bytes]] = {}
        self._full_backup_lsns: dict[int, dict[int, int]] = {}
        self._full_backup_checkpoints: dict[int, int] = {}
        self._next_backup_id = 1
        self._retired_backup_ids: set[int] = set()
        self._page_copies: dict[int, tuple[bytes, int]] = {}
        self._next_copy_location = 1
        self._freed_locations: list[int] = []
        #: fault injection: the next N page-copy writes fail after the
        #: I/O was charged but before the copy becomes durable (a
        #: backup-media write error mid-copy)
        self._copy_write_failures = 0

    # ------------------------------------------------------------------
    # Full database backups
    # ------------------------------------------------------------------
    def store_full_backup(self, images: dict[int, bytes],
                          page_lsns: dict[int, int],
                          checkpoint_lsn: int | None = None) -> int:
        """Store a full backup; returns the backup id.

        Charged as one long sequential write of the whole image set —
        the paper's restore arithmetic in reverse.  ``checkpoint_lsn``
        is the CHECKPOINT_END the backup was taken under; media
        recovery seeds its loser set from that record's active-
        transaction table, since a loser whose records all precede the
        backup never appears in the tail scan.
        """
        total = sum(len(img) for img in images.values())
        self.clock.advance(self.profile.write_cost(total, sequential=True))
        backup_id = self._next_backup_id
        self._next_backup_id += 1
        self._full_backups[backup_id] = dict(images)
        self._full_backup_lsns[backup_id] = dict(page_lsns)
        if checkpoint_lsn is not None:
            self._full_backup_checkpoints[backup_id] = checkpoint_lsn
        self.stats.bump("full_backups_taken")
        return backup_id

    def full_backup_checkpoint_lsn(self, backup_id: int) -> int | None:
        return self._full_backup_checkpoints.get(backup_id)

    def _require_full_backup(self, backup_id: int) -> dict[int, bytes]:
        """The image set of a retained full backup, or a crisp error.

        A ``BackupRef`` captured before :meth:`retire_full_backup` ran
        — e.g. by an in-flight repair — dangles afterwards; it must
        surface as :class:`BackupRetired`, never a raw ``KeyError``.
        """
        images = self._full_backups.get(backup_id)
        if images is None:
            if backup_id in self._retired_backup_ids:
                raise BackupRetired(
                    f"full backup {backup_id} was retired; the reference "
                    f"dangles")
            raise RecoveryError(f"no full backup {backup_id}")
        return images

    def fetch_from_full_backup(self, backup_id: int, page_id: int) -> tuple[bytes, int]:
        """One page from a full backup (random read on backup media)."""
        images = self._require_full_backup(backup_id)
        image = images.get(page_id)
        if image is None:
            raise RecoveryError(
                f"page {page_id} not in full backup {backup_id}")
        self.clock.advance(self.profile.read_cost(self.page_size))
        self.stats.bump("backup_page_fetches")
        return image, self._full_backup_lsns[backup_id][page_id]

    def restore_full_backup(self, backup_id: int) -> dict[int, bytes]:
        """The whole backup (media recovery); one sequential read."""
        images = self._require_full_backup(backup_id)
        total = sum(len(img) for img in images.values())
        self.clock.advance(self.profile.read_cost(total, sequential=True))
        self.stats.bump("full_backups_restored")
        return dict(images)

    def full_backup_lsns(self, backup_id: int) -> dict[int, int]:
        self._require_full_backup(backup_id)
        return dict(self._full_backup_lsns[backup_id])

    def full_backup_ids(self) -> list[int]:
        """Ids of every full backup still retained, oldest first."""
        return sorted(self._full_backups)

    def has_full_backup(self, backup_id: int) -> bool:
        return backup_id in self._full_backups

    def retire_full_backup(self, backup_id: int) -> None:
        """Drop a superseded full backup from the backup medium.

        Retirement is *gated* by the engine (see
        :meth:`repro.engine.checkpointer.Checkpointer.
        retire_full_backups`): a backup that a pending on-demand
        restore — or any page-recovery-index entry — still references
        must never be retired.
        """
        if backup_id not in self._full_backups:
            raise RecoveryError(f"no full backup {backup_id} to retire")
        del self._full_backups[backup_id]
        del self._full_backup_lsns[backup_id]
        self._full_backup_checkpoints.pop(backup_id, None)
        self._retired_backup_ids.add(backup_id)
        self.stats.bump("full_backups_retired")

    # ------------------------------------------------------------------
    # Explicit page copies
    # ------------------------------------------------------------------
    def store_page_copy(self, image: bytes, page_lsn: int) -> int:
        """Write a page copy to a *fresh* location; returns the location.

        Never overwrites an existing copy; freeing the superseded copy
        is a separate step (:meth:`free_page_copy`) performed after
        this write completed.
        """
        location = self._next_copy_location
        self._next_copy_location += 1
        self.clock.advance(self.profile.write_cost(len(image)))
        if self._copy_write_failures > 0:
            # The write was attempted (and charged) but never became
            # durable; the fresh location is burned, the old copy —
            # which this write deliberately did not touch — survives.
            self._copy_write_failures -= 1
            self.stats.bump("page_copy_write_failures")
            raise StorageError(
                f"backup medium: write of page copy to location "
                f"{location} failed")
        self._page_copies[location] = (bytes(image), page_lsn)
        self.stats.bump("page_copies_taken")
        return location

    def inject_copy_write_failures(self, count: int = 1) -> None:
        """The next ``count`` page-copy writes fail mid-copy."""
        self._copy_write_failures += count

    def fetch_page_copy(self, location: int) -> tuple[bytes, int]:
        try:
            image, lsn = self._page_copies[location]
        except KeyError:
            if location in self._freed_locations:
                raise BackupRetired(
                    f"page copy at location {location} was freed; the "
                    f"reference dangles") from None
            raise RecoveryError(f"no page copy at location {location}") from None
        self.clock.advance(self.profile.read_cost(len(image)))
        self.stats.bump("backup_page_fetches")
        return image, lsn

    def free_page_copy(self, location: int) -> None:
        """Release a superseded copy (the old-backup field of Figure 7
        exists exactly to make this possible)."""
        if location in self._page_copies:
            del self._page_copies[location]
            self._freed_locations.append(location)
            self.stats.bump("page_copies_freed")

    def free_if_page_copy(self, ref: BackupRef | None) -> None:
        if ref is not None and ref.kind == BackupRefKind.PAGE_COPY:
            self.free_page_copy(ref.value)

    @property
    def live_page_copies(self) -> int:
        return len(self._page_copies)

    def copies_bytes(self) -> int:
        return sum(len(img) for img, _lsn in self._page_copies.values())


def fetch_backup_image(ref: BackupRef, page_id: int, page_size: int,
                       store: BackupStore, log_reader: LogReader) -> tuple[Page, int]:
    """Materialize the backup image a :class:`BackupRef` points to.

    Returns ``(page, backup_page_lsn)``; the chain walk replays log
    records *newer* than ``backup_page_lsn`` onto the page (Figure 9).
    """
    if ref.kind == BackupRefKind.PAGE_COPY:
        image, lsn = store.fetch_page_copy(ref.value)
        return Page(page_size, image), lsn
    if ref.kind == BackupRefKind.FULL_BACKUP:
        image, lsn = store.fetch_from_full_backup(ref.value, page_id)
        return Page(page_size, image), lsn
    if ref.kind == BackupRefKind.LOG_IMAGE:
        record = log_reader.read(ref.value)
        if record.kind != LogRecordKind.FULL_PAGE_IMAGE or record.image is None:
            raise RecoveryError(
                f"LSN {ref.value} is not a full page image record")
        image = decompress_image(record.image)
        page = Page(page_size, image)
        # The image is current as of the recorded PageLSN, or — for
        # images whose PageLSN could only be assigned after the record
        # itself was appended (checkpoint-written recovery-index pages)
        # — as of the image record's own LSN.
        as_of = record.page_lsn if record.page_lsn else record.lsn
        if page.page_lsn != as_of:
            page.page_lsn = as_of
        return page, as_of
    if ref.kind == BackupRefKind.FORMAT_RECORD:
        record = log_reader.read(ref.value)
        if record.kind != LogRecordKind.FORMAT_PAGE or record.op is None:
            raise RecoveryError(
                f"LSN {ref.value} is not a page formatting record")
        page = Page.format(page_size, page_id)
        record.op.apply_redo(page)
        page.page_lsn = record.lsn
        return page, record.lsn
    raise RecoveryError(f"page {page_id} has no usable backup ({ref.kind.name})")


def make_log_image_payload(page: Page) -> bytes:
    """Compressed image for a FULL_PAGE_IMAGE record."""
    return compress_image(page.data)
